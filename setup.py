"""Setuptools entry point (kept for editable installs without the wheel package)."""
from setuptools import setup

setup()
