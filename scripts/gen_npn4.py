#!/usr/bin/env python
"""Generate the precomputed NPN-class AIG structure library (npn4.py).

Offline tool: enumerates small AND-inverter structures over four inputs
with a cost-bounded dynamic program (complement edges are free, so every
discovered function immediately covers its negation), then completes any
canonical class the DP missed by memoized Shannon mux decomposition.  The
result — one compact near-size-optimal structure per NPN class of 4-input
functions — is written to ``src/repro/netlist/opt/npn4.py`` and committed;
the rewriting pass and LUT mapper load it at import time.

Run from the repo root::

    PYTHONPATH=src python scripts/gen_npn4.py

Literal encoding inside a library entry (shared with ``opt.cut._build4``):
slot 0 is const-false, slots 1-4 are the structure's formal inputs
``v0..v3``, slot ``5+i`` is the i-th AND node of the entry; a literal is
``2*slot + complement``.  Each entry is ``(root_lit, ((l0, l1), ...))``
keyed by the class's canonical truth table.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.netlist.opt.cut import npn_canonical  # noqa: E402

ONES = 0xFFFF
#: Elementary truth tables of the four formal variables.
VAR_TT = (0xAAAA, 0xCCCC, 0xF0F0, 0xFF00)
#: Bit positions where variable i is 0 (for cofactoring).
COF_MASK = (0x5555, 0x3333, 0x0F0F, 0x00FF)
#: DP cost cap (AND nodes per tree); classes needing more fall through to
#: the Shannon completion below.
COST_CAP = 13

# Global hash-consed structure store.  Lit encoding: slot 0 = const,
# slots 1-4 = vars, slot 5+i = NODES[i]; lit = 2*slot + neg.
NODES: list[tuple[int, int]] = []
NODE_INDEX: dict[tuple[int, int], int] = {}

# tt -> (cost, lit): cheapest known structure computing tt.
BEST: dict[int, tuple[int, int]] = {}


def node_lit(l0: int, l1: int) -> int:
    key = (l0, l1) if l0 <= l1 else (l1, l0)
    idx = NODE_INDEX.get(key)
    if idx is None:
        idx = len(NODES)
        NODES.append(key)
        NODE_INDEX[key] = idx
    return 2 * (5 + idx)


def add(tt: int, cost: int, lit: int) -> bool:
    cur = BEST.get(tt)
    if cur is None or cost < cur[0]:
        BEST[tt] = (cost, lit)
        return True
    return False


def seed() -> None:
    add(0, 0, 0)
    add(ONES, 0, 1)
    for i, tt in enumerate(VAR_TT):
        add(tt, 0, 2 * (i + 1))
        add(tt ^ ONES, 0, 2 * (i + 1) + 1)


def dp_rounds(classes: set[int]) -> None:
    by_cost: dict[int, list[tuple[int, int]]] = {
        0: [(tt, lit) for tt, (c, lit) in BEST.items() if c == 0]}
    for cost in range(1, COST_CAP + 1):
        t0 = time.time()
        fresh: list[tuple[int, int]] = []
        for ca in range((cost - 1) // 2 + 1):
            cb = cost - 1 - ca
            ea, eb = by_cost.get(ca, ()), by_cost.get(cb, ())
            for ia, (ta, la) in enumerate(ea):
                start = ia if ca == cb else 0
                for tb, lb in eb[start:]:
                    tt = ta & tb
                    cur = BEST.get(tt)
                    if cur is not None and cur[0] <= cost:
                        continue
                    lit = node_lit(la, lb)
                    add(tt, cost, lit)
                    add(tt ^ ONES, cost, lit ^ 1)
                    fresh.append((tt, lit))
                    fresh.append((tt ^ ONES, lit ^ 1))
        by_cost[cost] = fresh
        covered = sum(1 for c in classes if c in BEST)
        print(f"cost {cost}: +{len(fresh)} functions, {len(BEST)} total, "
              f"{covered}/{len(classes)} classes, {time.time() - t0:.1f}s")
        if covered == len(classes):
            break


def cofactor(tt: int, var: int, val: int) -> int:
    mask = COF_MASK[var]
    shift = 1 << var
    half = ((tt >> shift) if val else tt) & mask
    return half | (half << shift)


def shannon(tt: int) -> tuple[int, int]:
    """Best-variable Shannon decomposition; memoizes through BEST."""
    hit = BEST.get(tt)
    if hit is not None:
        return hit
    choices = []
    for var in range(4):
        lo = cofactor(tt, var, 0)
        hi = cofactor(tt, var, 1)
        if lo == hi:
            continue
        c0, l0 = shannon(lo)
        c1, l1 = shannon(hi)
        choices.append((c0 + c1 + 3, var, l0, l1))
    cost, var, l0, l1 = min(choices)
    vlit = 2 * (var + 1)
    a = node_lit(vlit, l1)
    b = node_lit(vlit ^ 1, l0)
    out = node_lit(a ^ 1, b ^ 1) ^ 1
    add(tt, cost, out)
    add(tt ^ ONES, cost, out ^ 1)
    return BEST[tt]


def extract(lit: int) -> tuple[int, tuple[tuple[int, int], ...]]:
    """Self-contained (root_lit, nodes) entry for a global structure lit."""
    used: set[int] = set()
    stack = [lit >> 1]
    while stack:
        slot = stack.pop()
        if slot < 5 or slot in used:
            continue
        used.add(slot)
        l0, l1 = NODES[slot - 5]
        stack.append(l0 >> 1)
        stack.append(l1 >> 1)
    order = sorted(used)
    remap = {slot: 5 + i for i, slot in enumerate(order)}

    def rl(gl: int) -> int:
        slot = gl >> 1
        return 2 * remap.get(slot, slot) + (gl & 1)

    nodes = tuple((rl(NODES[slot - 5][0]), rl(NODES[slot - 5][1]))
                  for slot in order)
    return rl(lit), nodes


def evaluate(root: int, nodes: tuple[tuple[int, int], ...]) -> int:
    vals = [0, *VAR_TT]
    for l0, l1 in nodes:
        a = vals[l0 >> 1] ^ (ONES if l0 & 1 else 0)
        b = vals[l1 >> 1] ^ (ONES if l1 & 1 else 0)
        vals.append(a & b)
    return vals[root >> 1] ^ (ONES if root & 1 else 0)


def main() -> None:
    t0 = time.time()
    classes = {npn_canonical(tt) for tt in range(1 << 16)}
    print(f"{len(classes)} NPN classes ({time.time() - t0:.1f}s)")

    seed()
    dp_rounds(classes)
    missing = sorted(c for c in classes if c not in BEST)
    if missing:
        print(f"Shannon completion for {len(missing)} classes")
        for tt in missing:
            shannon(tt)

    entries = {}
    sizes = []
    for canon in sorted(classes):
        _, lit = BEST[canon]
        root, nodes = extract(lit)
        assert evaluate(root, nodes) == canon, hex(canon)
        entries[canon] = (root, nodes)
        sizes.append(len(nodes))
    print(f"library: {len(entries)} entries, max {max(sizes)} nodes, "
          f"avg {sum(sizes) / len(sizes):.2f}")

    out_path = (Path(__file__).resolve().parent.parent
                / "src" / "repro" / "netlist" / "opt" / "npn4.py")
    lines = [
        '"""Size-optimal AIG structures for the NPN classes of 4-input '
        'functions.',
        "",
        "Generated by ``scripts/gen_npn4.py`` — do not edit by hand.",
        "",
        "Each entry maps a class's canonical truth table (see",
        "``repro.netlist.opt.cut.npn_canon``) to ``(root_lit, nodes)``:",
        "``nodes`` is a tuple of AND fanin-literal pairs, where literal",
        "``2*slot + neg`` references slot 0 (const-false), slots 1-4 (the",
        "structure's formal inputs ``v0..v3``) or slot ``5+i`` (the i-th",
        'node of the entry).  ``root_lit`` is the structure\'s output."""',
        "",
        "NPN4_LIBRARY = {",
    ]
    for canon, (root, nodes) in sorted(entries.items()):
        body = ", ".join(f"({a}, {b})" for a, b in nodes)
        if len(nodes) == 1:
            body += ","
        line = f"    0x{canon:04X}: ({root}, ({body})),"
        if len(line) <= 79:
            lines.append(line)
        else:
            lines.append(f"    0x{canon:04X}: ({root}, (")
            chunk = "        "
            for a, b in nodes:
                piece = f"({a}, {b}), "
                if len(chunk) + len(piece) > 78:
                    lines.append(chunk.rstrip())
                    chunk = "        "
                chunk += piece
            lines.append(chunk.rstrip())
            lines.append("    )),")
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n")
    print(f"wrote {out_path} ({time.time() - t0:.1f}s total)")


if __name__ == "__main__":
    main()
