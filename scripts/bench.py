#!/usr/bin/env python
"""Benchmark the elaborate → optimize → simulate pipeline.

Generates parameterized adder / mux-tree / counter / ALU designs, measures

* elaboration wall time,
* optimization wall time and gate/depth reduction,
* simulation throughput (cycles/second) before and after optimization,

and writes the results to ``BENCH_opt.json`` to seed the performance
trajectory across PRs.  ``--smoke`` shrinks the design sizes and cycle
counts so CI can run the script in seconds.

Usage::

    PYTHONPATH=src python scripts/bench.py [--smoke] [--out BENCH_opt.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time

from repro import __version__
from repro.netlist import elaborate, simulate_sequence, simulate_vectors
from repro.netlist.opt import optimize
from repro.netlist.sat import check_equivalence


def adder_design(width: int) -> tuple[str, str, list[str]]:
    src = f"""
module adder #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b, input cin,
  output [W:0] sum
);
  assign sum = a + b + cin;
endmodule
"""
    return "adder", src, ["a", "b", "cin"]


def muxtree_design(width: int) -> tuple[str, str, list[str]]:
    src = f"""
module muxtree #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b, input [W-1:0] c, input [W-1:0] d,
  input [1:0] sel,
  output reg [W-1:0] y
);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
  end
endmodule
"""
    return "muxtree", src, ["a", "b", "c", "d", "sel"]


def counter_design(width: int) -> tuple[str, str, list[str]]:
    src = f"""
module counter #(parameter W = {width}) (
  input clk, input rst, input en, input [W-1:0] load, input do_load,
  output reg [W-1:0] q
);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else if (do_load) q <= load;
    else if (en) q <= q + 1;
  end
endmodule
"""
    return "counter", src, ["clk", "rst", "en", "load", "do_load"]


def alu_design(width: int) -> tuple[str, str, list[str]]:
    # The redundant subexpressions (a + b twice, a - b vs the comparator's
    # internal borrow chain) are deliberate: they exercise structural
    # hashing the way real datapaths with shared operands do.
    src = f"""
module alu #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b, input [2:0] op,
  output reg [W-1:0] y
);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = (a + b) + 1;
      3'd2: y = a - b;
      3'd3: y = (a - b) - 1;
      3'd4: y = a & b;
      3'd5: y = a | b;
      3'd6: y = a ^ b;
      default: y = (a < b) ? a : b;
    endcase
  end
endmodule
"""
    return "alu", src, ["a", "b", "op"]


DESIGNS = [adder_design, muxtree_design, counter_design, alu_design]


def input_widths(netlist) -> dict[str, int]:
    widths: dict[str, int] = {}
    for name in netlist.input_names():
        base = name.split("[")[0]
        widths[base] = widths.get(base, 0) + 1
    return widths


def random_vectors(netlist, cycles: int, rng: random.Random):
    widths = input_widths(netlist)
    return [
        {name: rng.getrandbits(width) for name, width in widths.items()}
        for _ in range(cycles)
    ]


def throughput(netlist, vectors) -> float:
    start = time.perf_counter()
    simulate_sequence(netlist, vectors)
    elapsed = time.perf_counter() - start
    return len(vectors) / elapsed if elapsed > 0 else float("inf")


def bench_design(factory, width: int, cycles: int, check: bool,
                 rng: random.Random) -> dict:
    name, src, _ = factory(width)
    start = time.perf_counter()
    netlist = elaborate(src, top=name)
    elaborate_s = time.perf_counter() - start

    start = time.perf_counter()
    result = optimize(netlist)
    optimize_s = time.perf_counter() - start

    vectors = random_vectors(netlist, cycles, rng)
    row = {
        "design": name,
        "width": width,
        "elaborate_seconds": elaborate_s,
        "optimize_seconds": optimize_s,
        "gates_before": result.gates_before,
        "gates_after": result.gates_after,
        "levels_before": result.levels_before,
        "levels_after": result.levels_after,
        "reduction": result.reduction,
        "sim_cycles": cycles,
        "sim_cycles_per_second_before": throughput(netlist, vectors),
        "sim_cycles_per_second_after": throughput(result.netlist, vectors),
    }
    # Cross-check while we are here: the optimized netlist must agree with
    # the original on the benchmark stimulus.
    state_b: dict = {}
    state_a: dict = {}
    for vector in vectors[: min(len(vectors), 50)]:
        out_b, state_b = simulate_vectors(netlist, vector, state_b)
        out_a, state_a = simulate_vectors(result.netlist, vector, state_a)
        if out_b != out_a:
            raise AssertionError(f"{name}: optimized netlist diverged")
    if check:
        verdict = check_equivalence(netlist, result.netlist)
        row["equivalence_proven"] = verdict.equivalent
        if not verdict.equivalent:
            raise AssertionError(f"{name}: equivalence refuted")
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes and cycle counts (CI mode)")
    parser.add_argument("--width", type=int, default=None,
                        help="override the design bit width")
    parser.add_argument("--cycles", type=int, default=None,
                        help="override the simulated cycle count")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the SAT equivalence cross-check")
    parser.add_argument("--out", default="BENCH_opt.json",
                        help="output path (default: BENCH_opt.json)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="stimulus RNG seed")
    args = parser.parse_args()

    width = args.width or (8 if args.smoke else 16)
    cycles = args.cycles or (200 if args.smoke else 2000)
    rng = random.Random(args.seed)

    rows = []
    for factory in DESIGNS:
        row = bench_design(factory, width, cycles, not args.no_check, rng)
        rows.append(row)
        print(
            f"{row['design']:<10} W={row['width']:<3} "
            f"gates {row['gates_before']:>5} -> {row['gates_after']:<5} "
            f"({row['reduction']:.1%}) "
            f"levels {row['levels_before']:>3} -> {row['levels_after']:<3} "
            f"elab {row['elaborate_seconds'] * 1e3:7.1f} ms  "
            f"sim {row['sim_cycles_per_second_before']:8.0f} -> "
            f"{row['sim_cycles_per_second_after']:8.0f} cyc/s"
        )

    report = {
        "version": __version__,
        "python": platform.python_version(),
        "mode": "smoke" if args.smoke else "full",
        "width": width,
        "cycles": cycles,
        "results": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
