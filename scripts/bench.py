#!/usr/bin/env python
"""Benchmark the elaborate → optimize → simulate → verify pipeline.

Generates parameterized adder / mux-tree / counter / ALU designs, measures

* elaboration wall time,
* optimization wall time and gate/depth reduction,
* simulation throughput (cycles/second) before and after optimization,
* simulation-engine throughput: the per-gate interpreter vs the compiled
  straight-line engine vs the compiled engine with 1–256 stimulus patterns
  packed per net (``repro.netlist.sim``),
* equivalence-checker encodings: the shared hash-consed AIG miter vs the
  legacy gate-level Tseitin encoding — CNF size, hash-proven root pairs,
  end-to-end time — plus FRAIG gate-count deltas,
* SAT-solver and CEC-pipeline split: the staged equivalence pipeline
  (simulation refutation check, auto miter sweeping, structure-aware
  encoding, CNF preprocessing, seeded flat-array CDCL — the ``new``
  rows) against the legacy configuration (reference solver, plain
  Tseitin encoding, nothing else — the ``old`` rows) on miters that
  hash-proving cannot short-circuit: the cross-implementation
  multiplier CEC (array carry-save vs shift-and-add, with a hard
  solve-speedup floor), a deliberately-broken multiplier whose
  counterexample must be caught by the pre-solve simulation check at
  zero conflicts and replay through the simulator, a
  ``cec_preprocessed_certified`` row that pushes a preprocessed UNSAT
  proof through the independent DRAT checker, and a SAT-bound FRAIG
  sweep of the ALU,
* synthesis QoR: DAG-aware rewriting (pre/post AND counts per design,
  with an enforced gate-reduction floor on the W=16 ALU and a pre- vs
  post-rewrite FRAIG timing guard) and the priority-cut k-LUT mapper at
  k=4 and k=6 (LUT count, mapped depth, depth-target guard), every
  rewritten graph and every mapped netlist CEC-proven — the mapped ones
  after a full emit → re-elaborate round trip (``BENCH_map.json``),
* the verification service end-to-end (``repro.server``): a synthetic
  mixed batch (self-CECs, cross-implementation proofs, refutations,
  option variants plus repeat submissions) driven through a live daemon
  measuring jobs/sec and p50/p99 latency, a 1-vs-4 worker scaling row,
  a repeat-submission row pitting the two-tier result cache against a
  cold solve, and a guard that partitioned CEC (``jobs=4``) agrees with
  the serial engine on both an equivalent and a refuted miter,

and writes the results to ``BENCH_opt.json`` / ``BENCH_sim.json`` /
``BENCH_aig.json`` / ``BENCH_sat.json`` / ``BENCH_map.json`` /
``BENCH_server.json`` to seed
the performance trajectory across PRs.  The whole run executes under a live
:class:`repro.obs.Tracer`: every row carries a ``trace`` dict of
top-level span totals (elaborate / optimize / cec / fraig / sim.compile
seconds as the engines themselves reported them), the combined Chrome
trace-event timeline lands in ``BENCH_trace.json`` (load it in Perfetto
or ``chrome://tracing``), and the SAT tier re-runs the ALU FRAIG sweep
with tracing on vs off and fails if the enabled-tracer overhead exceeds
5%.  Every CEC tier runs *certified*: the solvers log DRAT proofs that
the independent RUP checker (``repro.netlist.sat.proof``) re-verifies,
any rejected or missing proof fails the run, the SAT tier re-runs the
FRAIG sweep with in-memory proof logging on vs off (interleaved,
best-of-N) and fails if logging costs more than 15%, and a separate
``alu_fraig_certified`` row re-checks every UNSAT merge proof from the
sweep.  ``--history FILE`` appends one compact JSONL summary row
(version, git revision, headline numbers) per run; ``--compare``
additionally warns on >20% direction-aware headline regressions against
the previous history row.  Compiled results are bit-checked against the
per-gate interpreter and the AST-level reference ``Interpreter`` while
benchmarking; the script exits non-zero if the compiled engine is ever
slower than the interpreted baseline, if the AIG-level miter CNF is ever
larger than the gate-level encoding, if FRAIG ever increases a design's
live AND count, if the two solvers ever disagree on a verdict, or if the
new solver's throughput regresses below the reference baseline.  ``--smoke``
shrinks the design sizes and cycle counts so CI can run the script in
seconds.

Usage::

    PYTHONPATH=src python scripts/bench.py [--smoke]
        [--out BENCH_opt.json] [--sim-out BENCH_sim.json]
        [--aig-out BENCH_aig.json] [--sat-out BENCH_sat.json]
        [--map-out BENCH_map.json] [--server-out BENCH_server.json]
        [--trace-out BENCH_trace.json]
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import datetime
import json
import os
import platform
import random
import subprocess
import sys
import tempfile
import threading
import time

from repro import __version__
from repro.netlist import (
    CompiledSim,
    Interpreter,
    compile_netlist,
    elaborate,
    from_netlist,
    simulate_sequence,
    simulate_vectors,
)
from repro.netlist import to_netlist
from repro.netlist.emit import netlist_to_verilog
from repro.netlist.opt import (
    FraigStats,
    MapStats,
    RewriteStats,
    fraig_sweep,
    map_aig,
    optimize,
    rewrite_aig,
)
from repro.netlist.sat import (
    ProofLog,
    ReferenceSolver,
    Solver,
    check_equivalence,
)
from repro.netlist.sim import input_word_widths
from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
    write_chrome_trace,
)
from repro.server import ServerClient, run_daemon


def _trace_mark() -> int:
    """Bookmark into the ambient tracer's record list (0 when disabled)."""
    return len(getattr(get_tracer(), "records", ()))


def _row_trace(mark: int) -> dict:
    """Top-level span totals (seconds) recorded since ``mark``.

    Aggregates depth-0 spans — elaborate / optimize / cec / fraig /
    sim.compile as the engines themselves reported them — so every
    benchmark row carries the pipeline-phase timings alongside the
    stopwatch numbers the guards compare.
    """
    records = getattr(get_tracer(), "records", ())
    totals: dict[str, float] = {}
    for record in records[mark:]:
        if record.duration is not None and record.depth == 0:
            totals[record.name] = totals.get(record.name, 0.0) \
                + record.duration
    return totals


class BenchTier:
    """Shared scaffolding for one benchmark tier.

    Every tier wraps its actual workload in the same three motions:
    collect result rows, collect regression-guard failures, and write a
    ``{version, python, ..., results}`` report JSON.  Centralising those
    here keeps the tier runners (opt / sim / aig / sat / server) down to
    workload + guards instead of each carrying its own copy.
    """

    def __init__(self) -> None:
        self.rows: list[dict] = []
        self.failures: list[str] = []

    def add(self, row: dict) -> dict:
        self.rows.append(row)
        return row

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def guard(self, ok: bool, message: str) -> None:
        """Record a regression failure unless ``ok`` holds."""
        if not ok:
            self.fail(message)

    def report(self, out_path: str, **meta) -> dict:
        """Write the standard report skeleton; returns the report dict."""
        report = {"version": __version__,
                  "python": platform.python_version(),
                  **meta,
                  "results": self.rows}
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out_path}")
        return report


def adder_design(width: int) -> tuple[str, str, list[str]]:
    src = f"""
module adder #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b, input cin,
  output [W:0] sum
);
  assign sum = a + b + cin;
endmodule
"""
    return "adder", src, ["a", "b", "cin"]


def muxtree_design(width: int) -> tuple[str, str, list[str]]:
    src = f"""
module muxtree #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b, input [W-1:0] c, input [W-1:0] d,
  input [1:0] sel,
  output reg [W-1:0] y
);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
  end
endmodule
"""
    return "muxtree", src, ["a", "b", "c", "d", "sel"]


def counter_design(width: int) -> tuple[str, str, list[str]]:
    src = f"""
module counter #(parameter W = {width}) (
  input clk, input rst, input en, input [W-1:0] load, input do_load,
  output reg [W-1:0] q
);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else if (do_load) q <= load;
    else if (en) q <= q + 1;
  end
endmodule
"""
    return "counter", src, ["clk", "rst", "en", "load", "do_load"]


def alu_design(width: int) -> tuple[str, str, list[str]]:
    # The redundant subexpressions (a + b twice, a - b vs the comparator's
    # internal borrow chain) are deliberate: they exercise structural
    # hashing the way real datapaths with shared operands do.
    src = f"""
module alu #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b, input [2:0] op,
  output reg [W-1:0] y
);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = (a + b) + 1;
      3'd2: y = a - b;
      3'd3: y = (a - b) - 1;
      3'd4: y = a & b;
      3'd5: y = a | b;
      3'd6: y = a ^ b;
      default: y = (a < b) ? a : b;
    endcase
  end
endmodule
"""
    return "alu", src, ["a", "b", "op"]


def multiplier_design(width: int) -> tuple[str, str, list[str]]:
    # A carry-save array multiplier: each partial-product row feeds a 3:2
    # compressor (XOR sum / majority carry) and only the final row pays a
    # ripple add.  Structurally disjoint from the shift-and-add lowering
    # the frontend uses for `*`, so a miter against shift_add_multiplier
    # cannot be discharged by hash-proving — it is the solver benchmark.
    src = f"""
module multiplier #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b,
  output reg [2*W-1:0] p
);
  reg [2*W-1:0] aw;
  reg [2*W-1:0] row;
  reg [2*W-1:0] s;
  reg [2*W-1:0] c;
  reg [2*W-1:0] t;
  integer i;
  always @(*) begin
    aw = a;
    s = 0;
    c = 0;
    for (i = 0; i < W; i = i + 1) begin
      row = b[i] ? (aw << i) : 0;
      t = s ^ row ^ c;
      c = ((s & row) | (s & c) | (row & c)) << 1;
      s = t;
    end
    p = s + c;
  end
endmodule
"""
    return "multiplier", src, ["a", "b"]


def shift_add_multiplier_design(width: int) -> tuple[str, str, list[str]]:
    # `*` bit-blasts through repro.netlist.bitblast.v_mul: one AND-gated
    # partial product and a full ripple add per multiplier bit.
    src = f"""
module shift_add_multiplier #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  assign p = a * b;
endmodule
"""
    return "shift_add_multiplier", src, ["a", "b"]


# Cross-implementation multiplier proofs are exponential-ish in width for
# any CDCL solver; cap the multipliers in the generic benchmark tiers so
# the full run stays minutes, not hours (the SAT tier picks its own
# widths).  The gate-level encoding comparison gets a tighter cap still:
# without the shared AIG's hash-merging even the miter of two *identical*
# multiplier copies is a hard proof (that contrast is the point of the
# row, but seconds of it suffice).
multiplier_design.max_bench_width = 8
shift_add_multiplier_design.max_bench_width = 8
multiplier_design.max_gate_cec_width = 5
shift_add_multiplier_design.max_gate_cec_width = 5

DESIGNS = [adder_design, muxtree_design, counter_design, alu_design,
           multiplier_design, shift_add_multiplier_design]


def design_width(factory, width: int) -> int:
    return min(width, getattr(factory, "max_bench_width", width))


def random_vectors(netlist, cycles: int, rng: random.Random):
    widths = input_word_widths(netlist)
    return [
        {name: rng.getrandbits(width) for name, width in widths.items()}
        for _ in range(cycles)
    ]


def throughput(netlist, vectors) -> float:
    start = time.perf_counter()
    simulate_sequence(netlist, vectors)
    elapsed = time.perf_counter() - start
    return len(vectors) / elapsed if elapsed > 0 else float("inf")


def bench_design(factory, width: int, cycles: int, check: bool,
                 rng: random.Random) -> dict:
    name, src, _ = factory(width)
    mark = _trace_mark()
    start = time.perf_counter()
    netlist = elaborate(src, top=name)
    elaborate_s = time.perf_counter() - start

    start = time.perf_counter()
    result = optimize(netlist)
    optimize_s = time.perf_counter() - start

    vectors = random_vectors(netlist, cycles, rng)
    row = {
        "design": name,
        "width": width,
        "elaborate_seconds": elaborate_s,
        "optimize_seconds": optimize_s,
        "gates_before": result.gates_before,
        "gates_after": result.gates_after,
        "levels_before": result.levels_before,
        "levels_after": result.levels_after,
        "reduction": result.reduction,
        "sim_cycles": cycles,
        "sim_cycles_per_second_before": throughput(netlist, vectors),
        "sim_cycles_per_second_after": throughput(result.netlist, vectors),
    }
    # Cross-check while we are here: the optimized netlist must agree with
    # the original on the benchmark stimulus.
    state_b: dict = {}
    state_a: dict = {}
    for vector in vectors[: min(len(vectors), 50)]:
        out_b, state_b = simulate_vectors(netlist, vector, state_b)
        out_a, state_a = simulate_vectors(result.netlist, vector, state_a)
        if out_b != out_a:
            raise AssertionError(f"{name}: optimized netlist diverged")
    if check:
        verdict = check_equivalence(netlist, result.netlist)
        row["equivalence_proven"] = verdict.equivalent
        if not verdict.equivalent:
            raise AssertionError(f"{name}: equivalence refuted")
    row["trace"] = _row_trace(mark)
    return row


#: Pattern counts exercised by the packed (bit-parallel) benchmark.
PACK_WIDTHS = [1, 16, 64, 256]


def bench_sim(factory, width: int, cycles: int,
              rng: random.Random) -> dict:
    """Interpreted vs compiled vs compiled+packed throughput on one design."""
    name, src, _ = factory(width)
    mark = _trace_mark()
    netlist = elaborate(src, top=name)
    vectors = random_vectors(netlist, cycles, rng)

    start = time.perf_counter()
    interp_outputs = simulate_sequence(netlist, vectors, engine="interp")
    interp_s = time.perf_counter() - start

    start = time.perf_counter()
    compiled = compile_netlist(netlist)
    compile_s = time.perf_counter() - start

    sim = CompiledSim(compiled)
    start = time.perf_counter()
    compiled_outputs = sim.run_batch(vectors)
    compiled_s = time.perf_counter() - start

    # Bit-match both oracles: the per-gate interpreter over the full run and
    # the AST-level reference interpreter over a prefix (it is the slowest
    # engine by far).
    if compiled_outputs != interp_outputs:
        raise AssertionError(f"{name}: compiled engine diverged from "
                             f"per-gate interpreter")
    oracle_cycles = min(cycles, 64)
    oracle = Interpreter(src, top=name)
    if oracle.run(vectors[:oracle_cycles]) != \
            compiled_outputs[:oracle_cycles]:
        raise AssertionError(f"{name}: compiled engine diverged from the "
                             f"AST interpreter oracle")

    interp_cps = cycles / interp_s if interp_s > 0 else float("inf")
    compiled_cps = cycles / compiled_s if compiled_s > 0 else float("inf")
    row = {
        "design": name,
        "width": width,
        "cycles": cycles,
        "gates": netlist.num_gates,
        "compile_seconds": compile_s,
        "cycles_per_second_interp": interp_cps,
        "cycles_per_second_compiled": compiled_cps,
        "speedup_compiled": compiled_cps / interp_cps,
        "oracle_match": True,
        "packed": [],
    }

    pack_cycles = max(8, cycles // 8)
    for lanes in PACK_WIDTHS:
        sequences = [random_vectors(netlist, pack_cycles, rng)
                     for _ in range(lanes)]
        packed_sim = CompiledSim(compiled)
        start = time.perf_counter()
        packed_outputs = packed_sim.run_parallel(sequences)
        packed_s = time.perf_counter() - start
        # Lane 0 must bit-match a solo sequential run of the same stimulus.
        if packed_outputs[0] != CompiledSim(compiled).run_batch(sequences[0]):
            raise AssertionError(
                f"{name}: packed lane diverged at {lanes} lanes")
        total = lanes * pack_cycles
        packed_cps = total / packed_s if packed_s > 0 else float("inf")
        row["packed"].append({
            "lanes": lanes,
            "lane_cycles": pack_cycles,
            "cycles_per_second": packed_cps,
            "speedup": packed_cps / interp_cps,
        })
    row["trace"] = _row_trace(mark)
    return row


def _cec_record(before, after, encoding: str) -> dict:
    # Every CEC tier run is certified: the solver logs a DRAT proof and
    # the independent RUP checker re-verifies each UNSAT verdict.  An
    # unchecked (or failed) proof is a hard benchmark failure, not a
    # performance regression.
    start = time.perf_counter()
    verdict = check_equivalence(before, after, encoding=encoding,
                                certify=True)
    total = time.perf_counter() - start
    if not verdict.equivalent:
        raise AssertionError(f"{before.name}: equivalence refuted "
                             f"({encoding} encoding)")
    if verdict.proof_checked is False:
        raise AssertionError(
            f"{before.name}: DRAT proof rejected by the independent "
            f"checker ({encoding} encoding)")
    return {
        "cnf_vars": verdict.cnf_vars,
        "cnf_clauses": verdict.cnf_clauses,
        "hash_proven": verdict.hash_proven,
        "compared": verdict.compared,
        "encode_seconds": verdict.encode_seconds,
        "solve_seconds": verdict.solve_seconds,
        "total_seconds": total,
        "proof_checked": verdict.proof_checked,
        "proof_clauses": verdict.proof_clauses,
        "proof_bytes": verdict.proof_bytes,
        "proof_check_seconds": verdict.proof_check_seconds,
    }


def bench_aig(factory, width: int) -> dict:
    """AIG-vs-gate miter encodings plus FRAIG deltas on one design."""
    name, src, _ = factory(width)
    mark = _trace_mark()
    netlist = elaborate(src, top=name)
    optimized = optimize(netlist).netlist

    row = {
        "design": name,
        "width": width,
        "gates": netlist.num_gates,
        "aig_ands": from_netlist(netlist).num_ands,
        # Miter of the elaborated design against its optimized self: the
        # checker's production workload.
        "opt_cec_gate": _cec_record(netlist, optimized, "gate"),
        "opt_cec_aig": _cec_record(netlist, optimized, "aig"),
        # Self-CEC: both cones are identical, so the AIG miter should
        # hash-merge everything and emit (near-)zero clauses.
        "self_cec_gate": _cec_record(netlist, netlist, "gate"),
        "self_cec_aig": _cec_record(netlist, netlist, "aig"),
    }

    # Bypass FraigPass's never-worse guard and measure the raw sweep+raise
    # result: the guard would otherwise mask a raising regression by
    # silently returning the input netlist, making the CI check on
    # gates_after vacuous.
    stats = FraigStats()
    raw = to_netlist(fraig_sweep(from_netlist(netlist), stats=stats))
    row["fraig"] = {
        "gates_before": netlist.num_gates,
        "gates_after": raw.num_gates,
        "ands_before": stats.ands_before,
        "ands_after": stats.ands_after,
        "sat_checks": stats.sat_checks,
        "proven": stats.proven,
        "refuted": stats.refuted,
        "rounds": stats.rounds,
        "solver": stats.solver.to_dict(),
    }
    row["trace"] = _row_trace(mark)
    return row


def run_aig_bench(width: int, out_path: str) -> tuple[list[str], dict]:
    """Run the encoding comparison; returns (regressions, report)."""
    tier = BenchTier()
    for factory in DESIGNS:
        w = design_width(factory, width)
        w = min(w, getattr(factory, "max_gate_cec_width", w))
        row = tier.add(bench_aig(factory, w))
        gate_c = row["opt_cec_gate"]["cnf_clauses"]
        aig_c = row["opt_cec_aig"]["cnf_clauses"]
        fraig = row["fraig"]
        print(
            f"{row['design']:<10} W={row['width']:<3} "
            f"miter CNF {gate_c:>6} -> {aig_c:<6} clauses "
            f"(hash {row['opt_cec_aig']['hash_proven']}"
            f"/{row['opt_cec_aig']['compared']})  "
            f"cec {row['opt_cec_gate']['total_seconds'] * 1e3:7.1f} -> "
            f"{row['opt_cec_aig']['total_seconds'] * 1e3:7.1f} ms  "
            f"fraig {fraig['gates_before']:>5} -> {fraig['gates_after']:<5}"
        )
        tier.guard(
            aig_c <= gate_c,
            f"{row['design']}: AIG miter CNF larger than gate-level "
            f"({aig_c} > {gate_c})")
        tier.guard(
            row["self_cec_aig"]["cnf_clauses"]
            <= row["self_cec_gate"]["cnf_clauses"],
            f"{row['design']}: AIG self-CEC CNF larger than gate-level")
        # Guard the sweep on its own metric: merges can only shrink the
        # live AND cone.  Gate counts after raising are recorded but not
        # enforced — re-deriving XOR/MUX idioms from a merged AIG can
        # legitimately cost gates (the optimizer's FraigPass has a
        # never-worse guard for that).
        tier.guard(
            fraig["ands_after"] <= fraig["ands_before"],
            f"{row['design']}: fraig increased the live AND count "
            f"({fraig['ands_before']} -> {fraig['ands_after']})")

    report = tier.report(out_path, width=width)
    return tier.failures, report


#: The enforced rewrite-reduction floor on the W=16 ALU: DAG-aware
#: rewriting must shave at least this fraction of the AND nodes left
#: after simplify/strash/balance.
REWRITE_ALU_FLOOR = 0.05

#: Timer-noise allowance for the pre- vs post-rewrite FRAIG timing
#: guard (best-of-3 each side).
FRAIG_REWRITE_SLACK = 1.10


def _fraig_best_seconds(aig, runs: int = 3) -> tuple[float, int]:
    """Best-of-``runs`` FRAIG sweep wall time plus the final AND count."""
    best = float("inf")
    ands = aig.num_ands
    for _ in range(runs):
        start = time.perf_counter()
        swept = fraig_sweep(aig, stats=FraigStats())
        best = min(best, time.perf_counter() - start)
        ands = swept.num_ands
    return best, ands


def bench_map(factory, width: int, fraig_timing: bool = False) -> dict:
    """Rewrite QoR + k-LUT mapping row for one design."""
    name, src, _ = factory(width)
    mark = _trace_mark()
    netlist = elaborate(src, top=name)
    base = optimize(netlist,
                    passes=("simplify", "strash", "balance")).netlist
    aig = from_netlist(base)
    ands_before = aig.num_ands

    stats = RewriteStats()
    start = time.perf_counter()
    rewritten = rewrite_aig(aig, stats=stats)
    rewrite_seconds = time.perf_counter() - start
    ands_after = rewritten.num_ands
    rewrite_cec = check_equivalence(base, to_netlist(rewritten))

    row = {
        "design": name,
        "width": width,
        "ands_baseline": ands_before,
        "ands_rewritten": ands_after,
        "rewrite_reduction": (1.0 - ands_after / ands_before
                              if ands_before else 0.0),
        "rewrite_seconds": rewrite_seconds,
        "rewrite_sweeps": stats.sweeps,
        "rewrite_replacements": stats.replacements,
        "rewrite_cec_equivalent": rewrite_cec.equivalent,
        "map": {},
    }
    for k in (4, 6):
        mstats = MapStats()
        start = time.perf_counter()
        result = map_aig(rewritten, k=k, stats=mstats)
        map_seconds = time.perf_counter() - start
        # Emit -> re-elaborate -> CEC: the mapped LUT cover must survive
        # the Verilog round trip and stay equivalent to the *unoptimized*
        # source design.
        reloaded = elaborate(netlist_to_verilog(result.to_netlist()),
                             top=netlist.name)
        map_cec = check_equivalence(netlist, reloaded)
        row["map"][f"k{k}"] = {
            "lut_count": result.lut_count,
            "depth": result.depth,
            "depth_target": mstats.depth_target,
            "depth_fallback": mstats.depth_fallback,
            "map_seconds": map_seconds,
            "cec_equivalent": map_cec.equivalent,
        }
    if fraig_timing:
        # Downstream cost check: SAT sweeping the rewritten (smaller)
        # graph must not be slower than sweeping the baseline.
        pre_s, pre_ands = _fraig_best_seconds(aig)
        post_s, post_ands = _fraig_best_seconds(rewritten)
        row["fraig_pre_rewrite_seconds"] = pre_s
        row["fraig_post_rewrite_seconds"] = post_s
        row["fraig_pre_rewrite_ands"] = pre_ands
        row["fraig_post_rewrite_ands"] = post_ands
    row["trace"] = _row_trace(mark)
    return row


def run_map_bench(width: int, out_path: str) -> tuple[list[str], dict]:
    """Rewrite + k-LUT mapping QoR tier; returns (regressions, report).

    Every design goes simplify/strash/balance -> rewrite (CEC-proven),
    then through the priority-cut mapper at k=4 and k=6; each LUT cover
    is emitted as Verilog, re-elaborated and CEC-proven against the
    unoptimized source.  The ALU row always runs at W >= 16 and carries
    the two enforced guards: the rewrite gate-reduction floor
    (``REWRITE_ALU_FLOOR``) and the pre- vs post-rewrite FRAIG timing
    comparison (rewriting first must not slow the sweep down).
    """
    tier = BenchTier()
    for factory in DESIGNS:
        w = design_width(factory, width)
        w = min(w, getattr(factory, "max_gate_cec_width", w))
        is_alu = factory is alu_design
        if is_alu:
            # The acceptance floor is stated on the W=16 ALU, so the map
            # tier pins that row there even in smoke mode (rewrite plus
            # both mappings finish in well under a second).
            w = max(w, 16)
        row = tier.add(bench_map(factory, w, fraig_timing=is_alu))
        k4, k6 = row["map"]["k4"], row["map"]["k6"]
        print(
            f"{row['design']:<10} W={row['width']:<3} "
            f"rewrite {row['ands_baseline']:>5} -> "
            f"{row['ands_rewritten']:<5} ands "
            f"({row['rewrite_reduction']:6.1%})  "
            f"k4 {k4['lut_count']:>4} luts d={k4['depth']:<3} "
            f"k6 {k6['lut_count']:>4} luts d={k6['depth']:<3}"
        )
        tier.guard(
            row["rewrite_cec_equivalent"],
            f"{row['design']}: rewritten AIG not equivalent")
        tier.guard(
            row["ands_rewritten"] <= row["ands_baseline"],
            f"{row['design']}: rewrite grew the AIG "
            f"({row['ands_baseline']} -> {row['ands_rewritten']})")
        for label, entry in row["map"].items():
            tier.guard(
                entry["cec_equivalent"],
                f"{row['design']}: {label} mapped netlist not "
                f"equivalent after the emit round trip")
            tier.guard(
                entry["depth"] <= entry["depth_target"],
                f"{row['design']}: {label} mapping exceeded its depth "
                f"target ({entry['depth']} > {entry['depth_target']})")
        if is_alu:
            tier.guard(
                row["rewrite_reduction"] >= REWRITE_ALU_FLOOR,
                f"alu: rewrite reduction {row['rewrite_reduction']:.1%} "
                f"below the {REWRITE_ALU_FLOOR:.0%} floor")
            pre_s = row["fraig_pre_rewrite_seconds"]
            post_s = row["fraig_post_rewrite_seconds"]
            tier.guard(
                post_s <= pre_s * FRAIG_REWRITE_SLACK,
                f"alu: FRAIG after rewrite slower than before "
                f"({post_s * 1e3:.1f} ms > {pre_s * 1e3:.1f} ms)")
    report = tier.report(out_path, width=width)
    return tier.failures, report


def buggy_multiplier_design(width: int) -> tuple[str, str, list[str]]:
    """A shift-add multiplier with an off-by-one: the SAT-side workload.

    The miter against the array multiplier is satisfiable, so this row
    exercises counterexample extraction and the simulator replay that
    confirms it.
    """
    src = f"""
module shift_add_multiplier #(parameter W = {width}) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  assign p = a * b + 1;
endmodule
"""
    return "shift_add_multiplier", src, ["a", "b"]


#: Starting signature patterns for the SAT-tier FRAIG workload: starved
#: low so candidate classes are large and the sweep is solver-bound
#: rather than simulation-bound.
FRAIG_BENCH_PATTERNS = 8

#: The pre-pipeline configuration the "old" rows measure: reference
#: solver, plain Tseitin encoding, no CNF preprocessing, no miter
#: sweeping, and no simulation refutation check (``sim_patterns=0``
#: also disables phase/activity seeding).  The "new" rows run the
#: default staged pipeline, so the split captures the whole PR, not
#: just the engine swap.
LEGACY_CEC_KWARGS = dict(preprocess=False, sweep=False, structural=False,
                         sim_patterns=0)

SOLVER_ENGINES = (("new", Solver, {}),
                  ("old", ReferenceSolver, LEGACY_CEC_KWARGS))


def _solver_record(verdict, total_seconds: float) -> dict:
    stats = verdict.solver_stats
    solve_s = verdict.solve_seconds
    return {
        "equivalent": verdict.equivalent,
        "cnf_vars": verdict.cnf_vars,
        "cnf_clauses": verdict.cnf_clauses,
        "hash_proven": verdict.hash_proven,
        "sweep_proven": verdict.sweep_proven,
        "refuted_by_simulation": verdict.refuted_by_simulation,
        "encode_seconds": verdict.encode_seconds,
        "solve_seconds": solve_s,
        "sweep_seconds": verdict.sweep_seconds,
        "total_seconds": total_seconds,
        "decisions": stats.decisions,
        "conflicts": stats.conflicts,
        "propagations": stats.propagations,
        "props_per_second": stats.propagations / solve_s if solve_s else 0.0,
        "restarts": stats.restarts,
        "learned_clauses": stats.learned_clauses,
        "reduced_clauses": stats.reduced_clauses,
        "vivified": stats.vivified,
        "gc_runs": stats.gc_runs,
        "preprocessor": verdict.preprocessor,
        "proof_checked": verdict.proof_checked,
        "proof_clauses": verdict.proof_clauses,
        "proof_bytes": verdict.proof_bytes,
        "proof_check_seconds": verdict.proof_check_seconds,
    }


def _cec_both_engines(before, after) -> dict:
    # Certified on both engines: each solver logs DRAT, the shared
    # checker re-verifies.  proof_checked is None on SAT verdicts
    # (nothing to certify) and False only when a proof was rejected.
    engines = {}
    for label, factory, kwargs in SOLVER_ENGINES:
        start = time.perf_counter()
        verdict = check_equivalence(before, after, solver_factory=factory,
                                    certify=True, **kwargs)
        engines[label] = _solver_record(verdict,
                                        time.perf_counter() - start)
        engines[label]["counterexample_confirmed"] = bool(
            verdict.counterexample and verdict.counterexample.diff)
    return engines


def run_sat_bench(smoke: bool, out_path: str) -> tuple[list[str], dict]:
    """Old-vs-new solver split on non-hash-provable workloads.

    Returns (regressions, report); writes ``BENCH_sat.json``.
    """
    tier = BenchTier()
    mult_w = 5 if smoke else 6
    fraig_w = 8 if smoke else 16

    name_a, src_a, _ = multiplier_design(mult_w)
    name_s, src_s, _ = shift_add_multiplier_design(mult_w)
    array_mult = elaborate(src_a, top=name_a)
    shift_mult = elaborate(src_s, top=name_s)

    # -- structural multiplier miter: UNSAT proof ---------------------------
    mark = _trace_mark()
    engines = _cec_both_engines(array_mult, shift_mult)
    for label, rec in engines.items():
        if not rec["equivalent"]:
            tier.fail(
                f"multiplier_cec: {label} solver refuted an equivalence")
        elif rec["proof_checked"] is not True:
            tier.fail(
                f"multiplier_cec: {label} solver's UNSAT verdict was not "
                f"certified by the independent DRAT checker")
    new, old = engines["new"], engines["old"]
    # The pipeline may move solve effort into the sweep, so the honest
    # denominator is solve + sweep.
    new_search = new["solve_seconds"] + new["sweep_seconds"]
    row = {
        "workload": "multiplier_cec",
        "width": mult_w,
        "expected": "equivalent",
        "new": new,
        "old": old,
        "solve_speedup": old["solve_seconds"] / new_search
        if new_search else 0.0,
        "throughput_ratio": new["props_per_second"] / old["props_per_second"]
        if old["props_per_second"] else 0.0,
        "trace": _row_trace(mark),
    }
    tier.add(row)
    print(
        f"sat multiplier_cec  W={mult_w:<3} "
        f"conflicts {old['conflicts']:>6} -> {new['conflicts']:<6} "
        f"solve+sweep {old['solve_seconds'] * 1e3:8.1f} -> "
        f"{new_search * 1e3:<8.1f} ms "
        f"({row['solve_speedup']:.2f}x)"
    )
    pp = new["preprocessor"] or {}
    print(
        f"sat multiplier_cec  W={mult_w:<3} "
        f"preprocessor {pp.get('subsumed', 0)} subsumed, "
        f"{pp.get('eliminated_vars', 0)} eliminated, "
        f"{new['vivified']} vivified  "
        f"proof {new['proof_clauses']:>6} DRAT clauses "
        f"checked in {new['proof_check_seconds'] * 1e3:8.1f} ms"
    )
    # Hard floor on the pipeline win (the PR's target is >=2x; the floor
    # leaves room for CI jitter).  Smoke widths are too small for the
    # pipeline to amortize, so there the bar is only parity.
    speedup_floor = 1.0 if smoke else 1.5
    if row["solve_speedup"] < speedup_floor:
        tier.fail(
            f"multiplier_cec: staged-pipeline solve speedup "
            f"{row['solve_speedup']:.2f}x is below the "
            f"{speedup_floor:.1f}x floor "
            f"({old['solve_seconds'] * 1e3:.1f} -> "
            f"{new_search * 1e3:.1f} ms)")

    # -- broken multiplier miter: SAT + simulator-confirmed cex -------------
    name_b, src_b, _ = buggy_multiplier_design(mult_w)
    mark = _trace_mark()
    buggy_mult = elaborate(src_b, top=name_b)
    engines = _cec_both_engines(array_mult, buggy_mult)
    for label, rec in engines.items():
        if rec["equivalent"]:
            tier.fail(
                f"multiplier_cec_refuted: {label} solver proved a broken "
                f"multiplier equivalent")
        elif not rec["counterexample_confirmed"]:
            tier.fail(
                f"multiplier_cec_refuted: {label} solver returned an "
                f"unconfirmed counterexample")
    # Easy-SAT guard: a broken multiplier disagrees on most assignments,
    # so the simulation refutation check must catch it before the solver
    # pays any start-up or search cost at all.
    if not engines["new"]["refuted_by_simulation"] or \
            engines["new"]["conflicts"] != 0:
        tier.fail(
            "multiplier_cec_refuted: the easy counterexample was not "
            "caught by the pre-solve simulation check "
            f"(conflicts={engines['new']['conflicts']})")
    row = {
        "workload": "multiplier_cec_refuted",
        "width": mult_w,
        "expected": "refuted",
        "new": engines["new"],
        "old": engines["old"],
        "trace": _row_trace(mark),
    }
    tier.add(row)
    print(
        f"sat multiplier_cex  W={mult_w:<3} "
        f"refuted+replayed on both engines  "
        f"total {engines['old']['total_seconds'] * 1e3:8.1f} -> "
        f"{engines['new']['total_seconds'] * 1e3:<8.1f} ms "
        f"(new: simulation, 0 conflicts)"
    )

    # -- preprocessed certified proof: UNSAT through the full DRAT chain ----
    # A dedicated row that pins down the certification story: the CNF
    # preprocessor (subsumption + elimination) and the in-search
    # vivifier both write into the same proof log the solver extends,
    # and the independent RUP checker verifies the combined proof
    # against the *original* miter CNF.  Sweeping is off so the
    # top-level solver (not the sweep's) produces the UNSAT core.
    mark = _trace_mark()
    start = time.perf_counter()
    verdict = check_equivalence(array_mult, shift_mult, certify=True,
                                sweep=False)
    rec = _solver_record(verdict, time.perf_counter() - start)
    tier.add({
        "workload": "cec_preprocessed_certified",
        "width": mult_w,
        "expected": "equivalent",
        "new": rec,
        "trace": _row_trace(mark),
    })
    pp = rec["preprocessor"] or {}
    if not rec["equivalent"]:
        tier.fail(
            "cec_preprocessed_certified: refuted a true equivalence")
    elif rec["proof_checked"] is not True:
        tier.fail(
            "cec_preprocessed_certified: the preprocessed UNSAT proof "
            "was not certified by the independent DRAT checker")
    if not pp or (pp.get("subsumed", 0) + pp.get("strengthened", 0)
                  + pp.get("eliminated_vars", 0)) == 0:
        tier.fail(
            "cec_preprocessed_certified: the preprocessor did no work — "
            "the row no longer exercises preprocessing under certify")
    print(
        f"sat cec_certified   W={mult_w:<3} "
        f"preprocessor {pp.get('subsumed', 0)} subsumed, "
        f"{pp.get('eliminated_vars', 0)} eliminated, "
        f"{rec['vivified']} vivified  "
        f"proof {rec['proof_clauses']:>6} clauses "
        f"checked in {rec['proof_check_seconds'] * 1e3:8.1f} ms"
    )

    # -- SAT-bound FRAIG sweep of the ALU -----------------------------------
    name, src, _ = alu_design(fraig_w)
    mark = _trace_mark()
    alu = elaborate(src, top=name)
    alu_aig = from_netlist(alu)
    fraig_rec: dict[str, dict] = {}
    for label, factory, _ in SOLVER_ENGINES:
        stats = FraigStats()
        start = time.perf_counter()
        swept = fraig_sweep(alu_aig, patterns=FRAIG_BENCH_PATTERNS,
                            stats=stats, solver_factory=factory)
        seconds = time.perf_counter() - start
        verdict = check_equivalence(alu, to_netlist(swept))
        if not verdict.equivalent:
            tier.fail(
                f"alu_fraig: sweep with the {label} solver broke the ALU")
        fraig_rec[label] = {
            "seconds": seconds,
            "sat_checks": stats.sat_checks,
            "proven": stats.proven,
            "refuted": stats.refuted,
            "rounds": stats.rounds,
            "ands_before": stats.ands_before,
            "ands_after": stats.ands_after,
            "equivalence_proven": verdict.equivalent,
            "solver": stats.solver.to_dict(),
        }
    speedup = fraig_rec["old"]["seconds"] / fraig_rec["new"]["seconds"] \
        if fraig_rec["new"]["seconds"] else 0.0
    row = {
        "workload": "alu_fraig",
        "width": fraig_w,
        "patterns": FRAIG_BENCH_PATTERNS,
        "new": fraig_rec["new"],
        "old": fraig_rec["old"],
        "speedup": speedup,
        "trace": _row_trace(mark),
    }
    tier.add(row)
    print(
        f"sat alu_fraig       W={fraig_w:<3} "
        f"checks {fraig_rec['new']['sat_checks']:>5}  "
        f"sweep {fraig_rec['old']['seconds'] * 1e3:8.1f} -> "
        f"{fraig_rec['new']['seconds'] * 1e3:<8.1f} ms "
        f"({speedup:.2f}x)"
    )
    if speedup < 1.0:
        tier.fail(
            f"alu_fraig: new-solver sweep slower than the reference "
            f"baseline ({speedup:.2f}x)")

    # -- tracer overhead on the same sweep ----------------------------------
    # Observability must be effectively free.  Re-run the new-solver sweep
    # with a live tracer and with tracing disabled — interleaved so machine
    # load drift hits both sides equally, best-of-N each (min is the
    # standard jitter filter) — and fail if enabling the tracer costs more
    # than 5%.
    def _sweep_once() -> float:
        start = time.perf_counter()
        fraig_sweep(alu_aig, patterns=FRAIG_BENCH_PATTERNS,
                    stats=FraigStats())
        return time.perf_counter() - start

    reps = 5
    traced_s = plain_s = float("inf")
    for _ in range(reps):
        with use_tracer(Tracer()):
            traced_s = min(traced_s, _sweep_once())
        with use_tracer(NULL_TRACER):
            plain_s = min(plain_s, _sweep_once())
    overhead = traced_s / plain_s - 1.0 if plain_s else 0.0
    row["tracer_overhead"] = {
        "traced_seconds": traced_s,
        "untraced_seconds": plain_s,
        "overhead": overhead,
        "repeats": reps,
    }
    print(
        f"sat alu_fraig       W={fraig_w:<3} "
        f"tracer {plain_s * 1e3:8.1f} -> {traced_s * 1e3:<8.1f} ms "
        f"({overhead:+.1%} overhead, best of {reps})"
    )
    if overhead > 0.05:
        tier.fail(
            f"alu_fraig: tracer-enabled sweep overhead {overhead:.1%} "
            f"exceeds the 5% budget "
            f"({plain_s * 1e3:.1f} -> {traced_s * 1e3:.1f} ms)")

    # -- proof-logging overhead on the same sweep ---------------------------
    # Emitting DRAT while searching must stay cheap.  Re-run the sweep
    # with every solver streaming to an in-memory ProofLog vs not logging
    # at all — interleaved, best-of-N, tracing off — and fail if logging
    # costs more than 15%.  (With logging *disabled* the solver's only
    # extra work is one ``is not None`` test per conflict; any measurable
    # cost there would already trip the 5% tracer guard above, whose
    # baseline runs with proof logging off.)
    def _proof_solver(num_vars=0, clauses=()) -> Solver:
        solver = Solver(num_vars, clauses)
        solver.set_proof(ProofLog())
        return solver

    def _sweep_logged() -> float:
        start = time.perf_counter()
        fraig_sweep(alu_aig, patterns=FRAIG_BENCH_PATTERNS,
                    stats=FraigStats(), solver_factory=_proof_solver)
        return time.perf_counter() - start

    logged_s = unlogged_s = float("inf")
    with use_tracer(NULL_TRACER):
        for _ in range(reps):
            logged_s = min(logged_s, _sweep_logged())
            unlogged_s = min(unlogged_s, _sweep_once())
    proof_overhead = logged_s / unlogged_s - 1.0 if unlogged_s else 0.0
    row["proof_overhead"] = {
        "logged_seconds": logged_s,
        "unlogged_seconds": unlogged_s,
        "overhead": proof_overhead,
        "repeats": reps,
    }
    print(
        f"sat alu_fraig       W={fraig_w:<3} "
        f"proof log {unlogged_s * 1e3:8.1f} -> {logged_s * 1e3:<8.1f} ms "
        f"({proof_overhead:+.1%} overhead, best of {reps})"
    )
    if proof_overhead > 0.15:
        tier.fail(
            f"alu_fraig: proof-logging sweep overhead {proof_overhead:.1%} "
            f"exceeds the 15% budget "
            f"({unlogged_s * 1e3:.1f} -> {logged_s * 1e3:.1f} ms)")

    # -- certified FRAIG sweep ----------------------------------------------
    # A separate measurement so per-proof RUP checking never skews the
    # old-vs-new speedup rows above: every UNSAT merge proof from the
    # sweep is re-verified by the independent checker.
    stats = FraigStats()
    start = time.perf_counter()
    fraig_sweep(alu_aig, patterns=FRAIG_BENCH_PATTERNS, stats=stats,
                certify=True)
    certified_s = time.perf_counter() - start
    row = {
        "workload": "alu_fraig_certified",
        "width": fraig_w,
        "patterns": FRAIG_BENCH_PATTERNS,
        "seconds": certified_s,
        "proven": stats.proven,
        "refuted": stats.refuted,
        "proofs_checked": stats.proofs_checked,
        "proofs_failed": stats.proofs_failed,
        "proof_clauses": stats.proof_clauses,
        "proof_bytes": stats.proof_bytes,
        "proof_check_seconds": stats.proof_check_seconds,
    }
    tier.add(row)
    print(
        f"sat alu_fraig       W={fraig_w:<3} "
        f"certified {stats.proofs_checked}/{stats.proven} merge proofs "
        f"({stats.proof_clauses} DRAT clauses) "
        f"checked in {stats.proof_check_seconds * 1e3:8.1f} ms"
    )
    if stats.proofs_failed:
        tier.fail(
            f"alu_fraig_certified: {stats.proofs_failed} merge proofs "
            f"rejected by the independent DRAT checker")
    elif stats.proofs_checked != stats.proven:
        tier.fail(
            f"alu_fraig_certified: only {stats.proofs_checked} of "
            f"{stats.proven} proven merges were certified")

    report = tier.report(out_path, mode="smoke" if smoke else "full",
                         multiplier_width=mult_w, fraig_width=fraig_w)
    return tier.failures, report


@contextlib.contextmanager
def _daemon_client(workers: int, cache_dir):
    """Run a ``VerifyDaemon`` on an ephemeral port in a background thread."""
    box: dict = {}
    started = threading.Event()

    def _serve() -> None:
        def _ready(daemon) -> None:
            box["daemon"] = daemon
            started.set()

        asyncio.run(run_daemon(port=0, workers=workers,
                               cache_dir=cache_dir, ready=_ready))

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("verification daemon failed to start")
    client = ServerClient(port=box["daemon"].port)
    client.ping()
    try:
        yield client
    finally:
        with contextlib.suppress(Exception):
            client.shutdown()
        thread.join(timeout=120)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of an unsorted list."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def _server_workload(smoke: bool) -> tuple[list[tuple], int]:
    """The synthetic mixed batch: ``([(label, before, after, options)],
    unique_count)``.

    Self-CECs across every design and width (hash-proven, fast),
    cross-implementation multiplier proofs (solver-bound), broken-miter
    refutations (counterexample extraction), and certified /
    no-preprocess option variants — then repeat-submissions pad the
    batch to the target size so the daemon's alias and dedup caching
    sees realistic duplicate traffic.  Labels starting with ``buggy``
    must come back refuted; everything else equivalent.
    """
    widths = (2, 3) if smoke else (2, 3, 4, 5)
    unique: list[tuple] = []
    for factory in DESIGNS:
        for w in widths:
            name, src, _ = factory(w)
            unique.append((f"self_{name}_w{w}", src, src, {}))
    for w in widths:
        _, src_a, _ = multiplier_design(w)
        _, src_s, _ = shift_add_multiplier_design(w)
        _, src_b, _ = buggy_multiplier_design(w)
        unique.append((f"xmul_w{w}", src_a, src_s, {}))
        unique.append((f"buggy_w{w}", src_a, src_b, {}))
    _, src_a, _ = multiplier_design(widths[-1])
    _, src_s, _ = shift_add_multiplier_design(widths[-1])
    unique.append((f"xmul_cert_w{widths[-1]}", src_a, src_s,
                   {"certify": True}))
    unique.append((f"xmul_nopre_w{widths[-1]}", src_a, src_s,
                   {"preprocess": False}))
    target = 32 if smoke else 108
    jobs = list(unique)
    index = 0
    while len(jobs) < target:
        label, before, after, options = unique[index % len(unique)]
        jobs.append((f"{label}_repeat{index}", before, after, options))
        index += 1
    return jobs, len(unique)


def _drive_batch(client: ServerClient,
                 jobs: list[tuple]) -> tuple[float, list[dict]]:
    """Submit every job, wait for all; returns (wall seconds, records)."""
    start = time.perf_counter()
    ids = [client.submit(before, after, options or None)["id"]
           for _, before, after, options in jobs]
    records = [client.wait(job_id, timeout=600.0) for job_id in ids]
    return time.perf_counter() - start, records


def run_server_bench(smoke: bool, out_path: str) -> tuple[list[str], dict]:
    """Daemon end-to-end: throughput, latency, scaling, caching, parity.

    Returns (regressions, report); writes ``BENCH_server.json``.
    """
    tier = BenchTier()
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)
    jobs, num_unique = _server_workload(smoke)

    # -- mixed batch: jobs/sec + latency percentiles ------------------------
    with tempfile.TemporaryDirectory(prefix="cec-cache-") as cache_dir:
        with _daemon_client(workers, cache_dir) as client:
            elapsed, records = _drive_batch(client, jobs)
            status = client.status()
    latencies = []
    for (label, _, _, _), record in zip(jobs, records):
        tier.guard(record["status"] == "done",
                   f"server_mixed: job {label} ended "
                   f"{record['status']}: {record.get('error')}")
        if record["status"] != "done":
            continue
        expected = not label.startswith("buggy")
        got = record["equivalence"]["equivalent"]
        tier.guard(got == expected,
                   f"server_mixed: {label} verdict {got}, "
                   f"expected {expected}")
        latencies.append(record["finished"] - record["submitted"])
    p50 = _percentile(latencies, 0.50) if latencies else 0.0
    p99 = _percentile(latencies, 0.99) if latencies else 0.0
    row = tier.add({
        "workload": "server_mixed",
        "jobs": len(jobs),
        "unique_jobs": num_unique,
        "workers": workers,
        "seconds": elapsed,
        "jobs_per_second": len(jobs) / elapsed if elapsed else 0.0,
        "latency_p50_seconds": p50,
        "latency_p99_seconds": p99,
        "alias_hits": status["alias_hits"],
        "dedup_hits": status["dedup_hits"],
    })
    print(
        f"server mixed_batch   {row['jobs']:>4} jobs "
        f"({num_unique} unique, {workers} workers)  "
        f"{row['jobs_per_second']:7.1f} jobs/s  "
        f"p50 {p50 * 1e3:7.1f} ms  p99 {p99 * 1e3:8.1f} ms"
    )

    # -- worker scaling: same unique workload at 1 vs 4 workers -------------
    # No result cache and no duplicate submissions, so every job pays a
    # real solve and the ratio measures pool parallelism alone.  The 2x
    # floor is only meaningful with >=4 real cores; below that (or in
    # smoke mode) the row still lands for trend tracking, unenforced.
    scaling_jobs = jobs[:num_unique]
    throughput = {}
    for count in (1, 4):
        with _daemon_client(count, None) as client:
            elapsed, _ = _drive_batch(client, scaling_jobs)
        throughput[count] = len(scaling_jobs) / elapsed if elapsed else 0.0
    speedup = throughput[4] / throughput[1] if throughput[1] else 0.0
    enforced = not smoke and cpus >= 4
    tier.add({
        "workload": "server_worker_scaling",
        "jobs": len(scaling_jobs),
        "cpu_count": cpus,
        "jobs_per_second_1": throughput[1],
        "jobs_per_second_4": throughput[4],
        "speedup": speedup,
        "floor": 2.0 if enforced else None,
    })
    print(
        f"server scaling       {len(scaling_jobs):>4} jobs  "
        f"{throughput[1]:7.1f} -> {throughput[4]:7.1f} jobs/s "
        f"(1 -> 4 workers, {speedup:.2f}x, {cpus} cores)"
    )
    tier.guard(
        not enforced or speedup >= 2.0,
        f"server_worker_scaling: 4-worker throughput only {speedup:.2f}x "
        f"of 1-worker on {cpus} cores (floor 2.0x)")

    # -- repeat submission: cached result vs cold solve ---------------------
    cache_w = 4 if smoke else 6
    _, src_a, _ = multiplier_design(cache_w)
    _, src_s, _ = shift_add_multiplier_design(cache_w)
    with tempfile.TemporaryDirectory(prefix="cec-cache-") as cache_dir:
        with _daemon_client(workers, cache_dir) as client:
            start = time.perf_counter()
            cold_rec = client.verify(src_a, src_s)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            warm_rec = client.verify(src_a, src_s)
            warm = time.perf_counter() - start
            # A comment-only variant misses the daemon's source-alias map
            # but must still hit the on-disk content-hash cache.
            variant_rec = client.verify(
                src_a + "\n// resubmitted by another client\n", src_s)
    tier.guard(not cold_rec["cache_hit"],
               "server_cache_repeat: cold run was served from cache")
    tier.guard(warm_rec["cache_hit"],
               "server_cache_repeat: identical resubmission missed "
               "the cache")
    tier.guard(variant_rec["cache_hit"],
               "server_cache_repeat: comment-only source variant missed "
               "the content-hash disk cache")
    ratio = cold / warm if warm else 0.0
    tier.add({
        "workload": "server_cache_repeat",
        "width": cache_w,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": ratio,
        "content_hash_hit": bool(variant_rec["cache_hit"]),
    })
    print(
        f"server cache_repeat  W={cache_w:<3} "
        f"cold {cold * 1e3:8.1f} -> warm {warm * 1e3:6.1f} ms "
        f"({ratio:.0f}x, content-hash hit: "
        f"{bool(variant_rec['cache_hit'])})"
    )
    tier.guard(ratio >= 10.0,
               f"server_cache_repeat: cached result only {ratio:.1f}x "
               f"faster than the cold solve (floor 10x)")

    # -- partitioned CEC must agree with the serial engine ------------------
    guard_w = 4 if smoke else 5
    _, src_a, _ = multiplier_design(guard_w)
    array_mult = elaborate(src_a, top="multiplier")
    verdict_rows = []
    for expected, factory in (("equivalent", shift_add_multiplier_design),
                              ("refuted", buggy_multiplier_design)):
        name, src, _ = factory(guard_w)
        after = elaborate(src, top=name)
        serial = check_equivalence(array_mult, after)
        parallel = check_equivalence(array_mult, after, jobs=4)
        tier.guard(
            serial.equivalent == parallel.equivalent,
            f"server_parallel_verdict: jobs=4 disagrees with serial on "
            f"the {expected} miter ({parallel.equivalent} vs "
            f"{serial.equivalent})")
        tier.guard(
            serial.equivalent == (expected == "equivalent"),
            f"server_parallel_verdict: serial verdict on the {expected} "
            f"miter is wrong")
        if expected == "equivalent":
            # The UNSAT side must actually exercise the partitioned
            # path, not fall back to one shard.
            tier.guard(
                parallel.partitions >= 2,
                f"server_parallel_verdict: jobs=4 ran "
                f"{parallel.partitions} partitions — the parallel path "
                f"never engaged")
        verdict_rows.append({
            "expected": expected,
            "serial_equivalent": serial.equivalent,
            "parallel_equivalent": parallel.equivalent,
            "partitions": parallel.partitions,
        })
    tier.add({
        "workload": "server_parallel_verdict",
        "width": guard_w,
        "jobs_option": 4,
        "pairs": verdict_rows,
    })
    print(
        f"server verdict_guard W={guard_w:<3} "
        f"serial == jobs=4 on both miters "
        f"({verdict_rows[0]['partitions']} partitions)"
    )

    report = tier.report(out_path, mode="smoke" if smoke else "full",
                         cpu_count=cpus, workers=workers)
    return tier.failures, report


def _git_rev() -> str:
    repo_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=repo_dir,
            check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


#: Keys in a history row's ``headline`` dict where a *larger* value is
#: better; everything else (milliseconds, gate counts) is lower-better.
_HIGHER_BETTER = ("per_second", "speedup", "reduction", "ratio")


def _history_row(mode: str, opt_rows: list[dict], sim_rows: list[dict],
                 aig_report: dict, sat_report: dict,
                 server_report: dict, map_report: dict) -> dict:
    """One compact JSONL row summarising a whole benchmark run."""
    sat_rows = {r["workload"]: r for r in sat_report["results"]}
    map_rows = {r["design"]: r for r in map_report["results"]}
    alu_map = map_rows["alu"]
    server_rows = {r["workload"]: r for r in server_report["results"]}
    mult = sat_rows["multiplier_cec"]
    refuted = sat_rows["multiplier_cec_refuted"]
    pre_cert = sat_rows["cec_preprocessed_certified"]
    fraig = sat_rows["alu_fraig"]
    cert = sat_rows["alu_fraig_certified"]
    aig_rows = aig_report["results"]
    return {
        "version": __version__,
        "git_rev": _git_rev(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "mode": mode,
        "headline": {
            "opt_gates_after": sum(r["gates_after"] for r in opt_rows),
            "opt_mean_reduction": sum(r["reduction"] for r in opt_rows)
            / len(opt_rows),
            "sim_compiled_cycles_per_second": max(
                r["cycles_per_second_compiled"] for r in sim_rows),
            "cec_aig_total_ms": sum(
                r["opt_cec_aig"]["total_seconds"] for r in aig_rows) * 1e3,
            "sat_solve_speedup": mult["solve_speedup"],
            "sat_props_per_second": mult["new"]["props_per_second"],
            "cec_refuted_ms": refuted["new"]["total_seconds"] * 1e3,
            "cec_preprocessed_certified_ms":
                pre_cert["new"]["total_seconds"] * 1e3,
            "fraig_sweep_ms": fraig["new"]["seconds"] * 1e3,
            "proof_clauses": mult["new"]["proof_clauses"]
            + cert["proof_clauses"],
            "proof_check_ms": (mult["new"]["proof_check_seconds"]
                               + cert["proof_check_seconds"]) * 1e3,
            "server_jobs_per_second":
                server_rows["server_mixed"]["jobs_per_second"],
            "server_cache_speedup":
                server_rows["server_cache_repeat"]["speedup"],
            "rewrite_alu_reduction": alu_map["rewrite_reduction"],
            "map_lut4_total": sum(
                r["map"]["k4"]["lut_count"]
                for r in map_report["results"]),
            "map_alu_lut4_depth": alu_map["map"]["k4"]["depth"],
        },
    }


def _compare_history(previous: dict, current: dict) -> list[str]:
    """Direction-aware >20% regressions of ``current`` vs ``previous``."""
    warnings = []
    prev_head = previous.get("headline", {})
    for key, value in current["headline"].items():
        base = prev_head.get(key)
        if not isinstance(base, (int, float)) or base == 0 \
                or not isinstance(value, (int, float)):
            continue
        higher_better = key.endswith(_HIGHER_BETTER)
        change = value / base - 1.0
        regressed = change < -0.20 if higher_better else change > 0.20
        if regressed:
            warnings.append(
                f"{key}: {base:.4g} -> {value:.4g} ({change:+.1%}) vs "
                f"{previous.get('git_rev', '?')} "
                f"({previous.get('timestamp', '?')})")
    return warnings


def append_history(path: str, row: dict, compare: bool) -> None:
    """Append ``row`` to the JSONL history; optionally warn vs the last row.

    Comparison warnings go to stderr but never fail the run — machine
    drift across history entries is informational, unlike the in-run
    interleaved guards.
    """
    previous = None
    if compare:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = [ln for ln in handle if ln.strip()]
            if lines:
                previous = json.loads(lines[-1])
        except FileNotFoundError:
            pass
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: cannot compare against {path}: {exc}",
                  file=sys.stderr)
    if previous is not None:
        mismatch = previous.get("mode") != row["mode"]
        if mismatch:
            print(f"warning: comparing a {row['mode']} run against a "
                  f"{previous.get('mode')} history row", file=sys.stderr)
        for warning in _compare_history(previous, row):
            print(f"warning: regression vs previous run — {warning}",
                  file=sys.stderr)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    print(f"appended history row to {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes and cycle counts (CI mode)")
    parser.add_argument("--width", type=int, default=None,
                        help="override the design bit width")
    parser.add_argument("--cycles", type=int, default=None,
                        help="override the simulated cycle count")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the SAT equivalence cross-check")
    parser.add_argument("--out", default="BENCH_opt.json",
                        help="output path (default: BENCH_opt.json)")
    parser.add_argument("--sim-out", default="BENCH_sim.json",
                        help="engine-comparison output path "
                             "(default: BENCH_sim.json)")
    parser.add_argument("--aig-out", default="BENCH_aig.json",
                        help="miter-encoding comparison output path "
                             "(default: BENCH_aig.json)")
    parser.add_argument("--sat-out", default="BENCH_sat.json",
                        help="solver old-vs-new comparison output path "
                             "(default: BENCH_sat.json)")
    parser.add_argument("--map-out", default="BENCH_map.json",
                        help="rewrite + LUT-mapping QoR tier output path "
                             "(default: BENCH_map.json)")
    parser.add_argument("--server-out", default="BENCH_server.json",
                        help="verification-daemon tier output path "
                             "(default: BENCH_server.json)")
    parser.add_argument("--trace-out", default="BENCH_trace.json",
                        help="Chrome trace-event timeline of the whole run "
                             "(default: BENCH_trace.json)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="stimulus RNG seed")
    parser.add_argument("--history", metavar="FILE", default=None,
                        help="append a compact per-run summary row to this "
                             "JSONL file (e.g. BENCH_history.jsonl)")
    parser.add_argument("--compare", action="store_true",
                        help="warn on >20%% headline regressions against "
                             "the previous --history row")
    args = parser.parse_args()
    if args.compare and not args.history:
        parser.error("--compare requires --history FILE")

    width = args.width or (8 if args.smoke else 16)
    cycles = args.cycles or (200 if args.smoke else 2000)
    rng = random.Random(args.seed)

    # The whole run executes under a live tracer: engine spans feed the
    # per-row "trace" dicts and the Chrome trace-event timeline.  A script
    # owns its process, so install without bothering to restore.
    tracer = Tracer()
    set_tracer(tracer)

    opt_tier = BenchTier()
    for factory in DESIGNS:
        row = opt_tier.add(
            bench_design(factory, design_width(factory, width), cycles,
                         not args.no_check, rng))
        print(
            f"{row['design']:<10} W={row['width']:<3} "
            f"gates {row['gates_before']:>5} -> {row['gates_after']:<5} "
            f"({row['reduction']:.1%}) "
            f"levels {row['levels_before']:>3} -> {row['levels_after']:<3} "
            f"elab {row['elaborate_seconds'] * 1e3:7.1f} ms  "
            f"sim {row['sim_cycles_per_second_before']:8.0f} -> "
            f"{row['sim_cycles_per_second_after']:8.0f} cyc/s"
        )

    mode = "smoke" if args.smoke else "full"
    report = opt_tier.report(args.out, mode=mode, width=width,
                             cycles=cycles)

    print()
    sim_tier = BenchTier()
    for factory in DESIGNS:
        row = sim_tier.add(
            bench_sim(factory, design_width(factory, width), cycles, rng))
        best = max(entry["cycles_per_second"] for entry in row["packed"])
        print(
            f"{row['design']:<10} W={row['width']:<3} "
            f"gates {row['gates']:>5}  "
            f"interp {row['cycles_per_second_interp']:9.0f}  "
            f"compiled {row['cycles_per_second_compiled']:9.0f} "
            f"({row['speedup_compiled']:6.1f}x)  "
            f"packed {best:10.0f} cyc/s "
            f"({best / row['cycles_per_second_interp']:7.1f}x)"
        )

    sim_report = sim_tier.report(args.sim_out, mode=mode, width=width,
                                 cycles=cycles, pack_widths=PACK_WIDTHS)
    sim_rows = sim_report["results"]

    print()
    failures, aig_report = run_aig_bench(width, args.aig_out)

    print()
    sat_failures, sat_report = run_sat_bench(args.smoke, args.sat_out)
    failures += sat_failures

    print()
    map_failures, map_report = run_map_bench(width, args.map_out)
    failures += map_failures

    print()
    server_failures, server_report = run_server_bench(args.smoke,
                                                      args.server_out)
    failures += server_failures

    write_chrome_trace(tracer, args.trace_out)
    print(f"wrote {args.trace_out} "
          f"({len(tracer.records)} events)")

    if args.history:
        append_history(args.history,
                       _history_row(mode, report["results"], sim_rows,
                                    aig_report, sat_report, server_report,
                                    map_report),
                       args.compare)

    # Regression guards (CI-enforced): the compiled engine must never fall
    # below interpreted throughput, the AIG miter CNF must never exceed the
    # gate-level encoding, FRAIG must never grow a design, and the new
    # solver must never fall below the reference solver's throughput.
    slow = [row["design"] for row in sim_rows
            if row["cycles_per_second_compiled"] <
            row["cycles_per_second_interp"]]
    if slow:
        failures += [f"compiled engine slower than the interpreter on: "
                     f"{', '.join(slow)}"]
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
