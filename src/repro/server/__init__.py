"""``repro.server`` — the batch-verification service layer.

ROADMAP item 3: a long-running, stdlib-only daemon that turns the
one-shot CEC pipeline into a production-shaped service — a job queue
over an :mod:`asyncio` HTTP/JSON front, a :mod:`multiprocessing` worker
pool executing :func:`~repro.server.jobs.run_verify_job` per submission,
and a two-tier result cache keyed on structural content hashes
(:meth:`Netlist.content_hash <repro.netlist.logic.Netlist.content_hash>`
+ canonical options, see :mod:`repro.server.cache`) so repeat
submissions — the common production case — never reach the solver.

Quickstart::

    python -m repro.server --port 8347 --workers 4 --cache .cec-cache

    from repro.server import ServerClient
    client = ServerClient(port=8347)
    record = client.verify(before_src, after_src, {"certify": True})
    assert record["equivalence"]["equivalent"]

The ``equivalence`` block of a job record is byte-compatible with the
CLI's ``--check --json`` report
(:meth:`EquivalenceResult.to_report
<repro.netlist.sat.cec.EquivalenceResult.to_report>`), so downstream
tooling can consume either entry point.  ``scripts/bench.py --tier
server`` measures the daemon end-to-end: jobs/sec, p50/p99 latency,
worker-scaling and cache-hit rows land in ``BENCH_server.json``.
"""

from .cache import (
    OPTION_DEFAULTS,
    ResultCache,
    canonical_options,
    content_key,
    source_key,
)
from .client import ServerClient, ServerError
from .daemon import VerifyDaemon, run_daemon
from .jobs import run_verify_job

__all__ = [
    "OPTION_DEFAULTS",
    "ResultCache",
    "ServerClient",
    "ServerError",
    "VerifyDaemon",
    "canonical_options",
    "content_key",
    "run_daemon",
    "run_verify_job",
    "source_key",
]
