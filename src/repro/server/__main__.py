"""``python -m repro.server`` — run the verification daemon.

Prints one ``listening on <host>:<port> (workers=N)`` line to stdout
once the socket is bound (CI and scripts block on it as the readiness
barrier), then serves until ``POST /shutdown`` or SIGINT/SIGTERM.
``--trace FILE`` exports the stitched daemon + worker span timeline as
Chrome trace-event JSON on shutdown.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from ..obs import Tracer, write_chrome_trace
from .daemon import VerifyDaemon


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Batch equivalence-verification daemon")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8347,
                        help="listen port (0 picks an ephemeral one)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: CPU count)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="shared on-disk result cache directory")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace of all jobs on "
                             "shutdown")
    args = parser.parse_args(argv)

    tracer = Tracer() if args.trace else None
    daemon = VerifyDaemon(host=args.host, port=args.port,
                          workers=args.workers, cache_dir=args.cache,
                          tracer=tracer)

    async def serve() -> None:
        await daemon.start()
        print(f"listening on {daemon.host}:{daemon.port} "
              f"(workers={daemon.workers})", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, daemon.shutdown)
        await daemon.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    if tracer is not None:
        write_chrome_trace(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
