"""A minimal stdlib client for the verification daemon.

:class:`ServerClient` wraps the daemon's four endpoints with plain
:mod:`http.client` calls — no dependencies, safe to use from tests, CI
smoke scripts, and ``scripts/bench.py``'s server tier.  ``submit`` +
``wait`` is the common round trip::

    client = ServerClient(port=8347)
    job = client.submit(before_src, after_src, {"certify": True})
    record = client.wait(job["id"])
    assert record["equivalence"]["equivalent"]
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional


class ServerError(Exception):
    """A non-2xx reply from the daemon (carries status and body)."""

    def __init__(self, status: int, body: dict) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServerClient:
    """Blocking JSON client for one :class:`~repro.server.VerifyDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8347,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            headers = {"Content-Type": "application/json"} \
                if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            if response.status >= 400:
                raise ServerError(response.status, data)
            return data
        finally:
            conn.close()

    def submit(self, before: str, after: str,
               options: Optional[dict] = None) -> dict:
        """Submit one equivalence-check job; returns ``{"id", "status"}``
        (plus ``cache_hit`` / ``deduplicated`` when served early)."""
        body = {"before": before, "after": after}
        if options:
            body["options"] = options
        return self._request("POST", "/submit", body)

    def job(self, job_id: str) -> dict:
        """The current job record."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.02) -> dict:
        """Poll until the job reaches ``done`` or ``error``."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "error"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)

    def verify(self, before: str, after: str,
               options: Optional[dict] = None,
               timeout: float = 300.0) -> dict:
        """Submit and wait — the one-call convenience path."""
        job = self.submit(before, after, options)
        return self.wait(job["id"], timeout=timeout)

    def status(self) -> dict:
        return self._request("GET", "/status")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def ping(self, timeout: float = 10.0, poll: float = 0.05) -> dict:
        """Wait for the daemon to come up (CI smoke startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.status()
            except (OSError, ValueError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
