"""Worker-side execution of verification jobs.

:func:`run_verify_job` is the module-level, picklable function the
daemon's :class:`~concurrent.futures.ProcessPoolExecutor` runs.  One job
is one equivalence check: elaborate both submitted sources, compute their
structural content hashes, consult the shared on-disk
:class:`~repro.server.cache.ResultCache`, and only on a miss run the full
staged CEC pipeline (:func:`~repro.netlist.sat.check_equivalence`).  The
reply is a plain dict — JSON-ready report, cache metadata, and the
worker's recorded :mod:`repro.obs` spans for the parent to stitch into
its timeline.

Jobs never raise across the process boundary: every failure mode
(frontend errors, interface mismatches, bad options) comes back as
``{"ok": False, "error": ...}`` so one malformed submission cannot kill a
pool worker mid-batch.
"""

from __future__ import annotations

import time

from ..obs import NULL_TRACER, Tracer, use_tracer
from .cache import ResultCache, canonical_options, content_key


def run_verify_job(payload: dict) -> dict:
    """Execute one verification job; see the module docstring.

    ``payload`` keys: ``before`` / ``after`` (Verilog source texts),
    ``options`` (cache-key option dict, see
    :data:`~repro.server.cache.OPTION_DEFAULTS`), ``cache_dir``
    (optional shared result-cache directory), ``trace`` (record and
    return worker spans).
    """
    # Imported here, not at module top: the worker process forks before
    # the first job, and the elaborator pulls in the whole frontend.
    from ..netlist import elaborate
    from ..netlist.sat import check_equivalence

    trace = bool(payload.get("trace"))
    tracer = Tracer() if trace else NULL_TRACER
    started = time.perf_counter()
    reply: dict = {"ok": True, "cache_hit": False, "spans": []}
    try:
        options = canonical_options(payload.get("options"))
        with use_tracer(tracer):
            with tracer.span("server.job") as job_span:
                before = elaborate(payload["before"])
                after = elaborate(payload["after"])
                key = content_key(before.content_hash(),
                                  after.content_hash(), options)
                reply["key"] = key
                reply["hashes"] = [before.content_hash(),
                                   after.content_hash()]
                cache = ResultCache(payload.get("cache_dir"))
                report = cache.get(key)
                if report is not None:
                    reply["cache_hit"] = True
                else:
                    verdict = check_equivalence(
                        before, after,
                        encoding=options["encoding"],
                        certify=options["certify"],
                        preprocess=options["preprocess"])
                    report = verdict.to_report(
                        certify=options["certify"])
                    cache.put(key, report)
                reply["report"] = report
                job_span.set(cache_hit=reply["cache_hit"],
                             equivalent=report["equivalent"])
    except Exception as exc:  # noqa: BLE001 — must not kill the worker
        reply = {"ok": False, "error": str(exc),
                 "error_type": type(exc).__name__, "spans": []}
    reply["seconds"] = time.perf_counter() - started
    if trace:
        reply["spans"] = tracer.records
    return reply
