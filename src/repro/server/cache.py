"""Content-hash result cache for verification jobs.

Results are keyed on *what was verified*, not *what text was submitted*:
``content_key`` hashes the two designs' structural
:meth:`~repro.netlist.logic.Netlist.content_hash` digests together with
the canonicalized option set, so formatting changes, comment edits, or
resubmissions of byte-identical sources all land on the same entry.  The
``jobs`` knob is deliberately excluded from the key — worker count must
never change a verdict, so a result computed at any parallelism serves
every other.

:class:`ResultCache` is two-tier: a per-process in-memory dict in front
of an optional shared on-disk directory of ``<key>.json`` files.  Disk
writes are atomic (tempfile + :func:`os.replace`), so daemon workers in
separate processes can share one directory without locking — the worst
race is two workers computing the same result and one overwrite winning,
which is harmless because entries are deterministic functions of their
key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

#: Option names (and defaults) that select *what* is proven and *what the
#: report contains* — the cache key's option dimension.  Unknown options
#: are rejected at canonicalization time so a typo cannot silently alias
#: two different requests onto one entry.
OPTION_DEFAULTS = {
    "encoding": "aig",
    "certify": False,
    "preprocess": True,
}


def canonical_options(options: Optional[dict]) -> dict:
    """Normalize a submission's option dict to the cache-key option set.

    Fills defaults, drops execution knobs that cannot affect the result
    (``jobs``), and raises ``ValueError`` on unknown keys.
    """
    options = dict(options or {})
    options.pop("jobs", None)
    unknown = sorted(set(options) - set(OPTION_DEFAULTS))
    if unknown:
        raise ValueError(f"unknown verification options: {unknown}")
    canonical = dict(OPTION_DEFAULTS)
    canonical.update(options)
    canonical["encoding"] = str(canonical["encoding"])
    canonical["certify"] = bool(canonical["certify"])
    canonical["preprocess"] = bool(canonical["preprocess"])
    return canonical


def content_key(hash_a: str, hash_b: str, options: Optional[dict]) -> str:
    """The cache key for verifying two designs under an option set."""
    payload = json.dumps(
        [hash_a, hash_b, canonical_options(options)],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def source_key(before: str, after: str, options: Optional[dict]) -> str:
    """A cheaper alias key over the submitted *source texts*.

    The daemon keeps a ``source_key -> content_key`` alias map so repeat
    submissions of identical text are served without re-elaborating —
    the common production case the server exists for.  Different texts
    of the same design miss here and converge at the content key.
    """
    payload = json.dumps(
        [before, after, canonical_options(options)],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """In-memory + on-disk store of verification reports by content key."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self.memory: dict[str, dict] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.writes = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The cached report for ``key``, or None (counts the miss)."""
        report = self.memory.get(key)
        if report is not None:
            self.memory_hits += 1
            return report
        if self.cache_dir:
            try:
                with open(self._path(key), "r", encoding="utf-8") as fh:
                    report = json.load(fh)
            except (OSError, ValueError):
                report = None
            if report is not None:
                self.memory[key] = report
                self.disk_hits += 1
                return report
        self.misses += 1
        return None

    def put(self, key: str, report: dict) -> None:
        """Store ``report`` under ``key`` in memory and (atomically) on
        disk."""
        self.memory[key] = report
        self.writes += 1
        if not self.cache_dir:
            return
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(report, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def stats(self) -> dict:
        return {
            "memory_entries": len(self.memory),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
        }
