"""The verification daemon: asyncio HTTP/JSON front, multiprocessing back.

:class:`VerifyDaemon` is ROADMAP item 3's long-running service.  A
hand-rolled (stdlib-only) HTTP/1.1 server accepts JSON job submissions
and shards the actual work — elaborate, hash, cache-check, staged CEC —
across a :class:`~concurrent.futures.ProcessPoolExecutor` of
``workers`` processes via :func:`~repro.server.jobs.run_verify_job`.

Endpoints:

``POST /submit``
    Body ``{"before": <verilog>, "after": <verilog>, "options": {...}}``.
    Replies ``{"id": ..., "status": ...}`` immediately.  Three paths:
    a *source-alias hit* (identical text + options seen before) completes
    the job instantly from the daemon's in-memory result, never touching
    the pool; an *in-flight duplicate* returns the already-running job's
    id (``"deduplicated": true``) so a thundering herd of identical
    submissions costs one solve; everything else queues on the pool,
    where the worker still gets a shot at the shared on-disk
    content-hash cache before solving.
``GET /jobs/<id>``
    Job record: status (``queued`` / ``running`` / ``done`` / ``error``),
    timing, ``cache_hit``, and the ``equivalence`` report when done.
``GET /status``
    Daemon health: worker count, job counters by status, cache stats,
    uptime.
``POST /shutdown``
    Graceful shutdown — in-flight jobs finish, the listener closes, and
    :meth:`VerifyDaemon.serve_forever` returns.

Per-job :mod:`repro.obs` spans recorded in the workers are adopted into
the daemon's tracer (one synthetic thread track per job), so a single
Chrome-trace export shows the whole fan-out timeline.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from ..obs import Tracer
from .cache import canonical_options, source_key
from .jobs import run_verify_job

_MAX_BODY = 64 * 1024 * 1024


class VerifyDaemon:
    """A verification server instance; see the module docstring.

    ``workers`` defaults to ``os.cpu_count()``.  ``port=0`` binds an
    ephemeral port (read it back from :attr:`port` after
    :meth:`start`).  ``cache_dir`` enables the shared on-disk result
    cache; ``tracer`` (optional) collects daemon + worker spans.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.host = host
        self.port = port
        self.workers = workers or os.cpu_count() or 1
        self.cache_dir = cache_dir
        self.tracer = tracer
        self.jobs: dict[str, dict] = {}
        #: source_key -> id of the job that owns (or will own) its result.
        self.alias: dict[str, str] = {}
        self.alias_hits = 0
        self.dedup_hits = 0
        self._next_id = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self._started_at = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and spin up the worker pool."""
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or POST /shutdown), then drain."""
        assert self._server is not None
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()
        # Let queued jobs finish: ProcessPoolExecutor.shutdown(wait=True)
        # blocks, so push it off the event loop.
        pool = self._pool
        self._pool = None
        if pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, pool.shutdown)

    def shutdown(self) -> None:
        self._stop.set()

    # -- job bookkeeping ----------------------------------------------------

    def _new_job(self, status: str) -> dict:
        self._next_id += 1
        job = {
            "id": f"job-{self._next_id:06d}",
            "status": status,
            "submitted": time.time(),
            "started": None,
            "finished": None,
            "cache_hit": False,
            "seconds": None,
        }
        self.jobs[job["id"]] = job
        return job

    def _public_job(self, job: dict) -> dict:
        return {k: v for k, v in job.items() if not k.startswith("_")}

    async def _run_job(self, job: dict, payload: dict,
                       alias: str) -> None:
        job["status"] = "running"
        job["started"] = time.time()
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(
                self._pool, run_verify_job, payload)
        except Exception as exc:  # noqa: BLE001 — pool died / cancelled
            job["status"] = "error"
            job["error"] = str(exc)
            job["finished"] = time.time()
            self.alias.pop(alias, None)
            return
        job["finished"] = time.time()
        job["seconds"] = reply.get("seconds")
        if self.tracer is not None and reply.get("spans"):
            # One synthetic worker track per job keeps concurrent jobs
            # from interleaving on the exporter's thread lanes.
            self.tracer.adopt(reply["spans"],
                              tid=30_000_000 + int(job["id"][4:]))
        if reply.get("ok"):
            job["status"] = "done"
            job["cache_hit"] = bool(reply.get("cache_hit"))
            job["key"] = reply.get("key")
            job["hashes"] = reply.get("hashes")
            job["equivalence"] = reply.get("report")
        else:
            job["status"] = "error"
            job["error"] = reply.get("error")
            job["error_type"] = reply.get("error_type")
            self.alias.pop(alias, None)

    def _submit(self, body: dict) -> tuple[int, dict]:
        before = body.get("before")
        after = body.get("after")
        if not isinstance(before, str) or not isinstance(after, str):
            return 400, {"error": "'before' and 'after' must be "
                                  "Verilog source strings"}
        try:
            options = canonical_options(body.get("options"))
        except ValueError as exc:
            return 400, {"error": str(exc)}
        alias = source_key(before, after, options)
        prior_id = self.alias.get(alias)
        if prior_id is not None:
            prior = self.jobs[prior_id]
            if prior["status"] == "done":
                # Source-alias hit: a completed result for byte-identical
                # input — answer from memory without touching the pool.
                self.alias_hits += 1
                job = self._new_job("done")
                now = time.time()
                job.update(started=now, finished=now, cache_hit=True,
                           seconds=0.0, key=prior.get("key"),
                           hashes=prior.get("hashes"),
                           equivalence=prior.get("equivalence"))
                return 200, {"id": job["id"], "status": job["status"],
                             "cache_hit": True}
            if prior["status"] in ("queued", "running"):
                self.dedup_hits += 1
                return 200, {"id": prior_id, "status": prior["status"],
                             "deduplicated": True}
        job = self._new_job("queued")
        self.alias[alias] = job["id"]
        payload = {
            "before": before,
            "after": after,
            "options": options,
            "cache_dir": self.cache_dir,
            "trace": self.tracer is not None,
        }
        asyncio.get_running_loop().create_task(
            self._run_job(job, payload, alias))
        return 200, {"id": job["id"], "status": job["status"]}

    def _status(self) -> dict:
        counts: dict[str, int] = {}
        for job in self.jobs.values():
            counts[job["status"]] = counts.get(job["status"], 0) + 1
        return {
            "workers": self.workers,
            "jobs": counts,
            "total_jobs": len(self.jobs),
            "alias_hits": self.alias_hits,
            "dedup_hits": self.dedup_hits,
            "cache_dir": self.cache_dir,
            "uptime_seconds": time.monotonic() - self._started_at,
        }

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 — protocol errors
            status, payload = 400, {"error": str(exc)}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> tuple[int, dict]:
        request = (await reader.readline()).decode("ascii",
                                                   "replace").strip()
        if not request:
            return 400, {"error": "empty request"}
        parts = request.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line: {request!r}"}
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = (await reader.readline()).decode("ascii",
                                                    "replace").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > _MAX_BODY:
            return 413, {"error": "request body too large"}
        body: dict = {}
        if length:
            raw = await reader.readexactly(length)
            body = json.loads(raw.decode("utf-8"))

        if method == "POST" and path == "/submit":
            return self._submit(body)
        if method == "GET" and path.startswith("/jobs/"):
            job = self.jobs.get(path[len("/jobs/"):])
            if job is None:
                return 404, {"error": "no such job"}
            return 200, self._public_job(job)
        if method == "GET" and path == "/status":
            return 200, self._status()
        if method == "POST" and path == "/shutdown":
            self.shutdown()
            return 200, {"ok": True}
        return 404, {"error": f"no route for {method} {path}"}


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large"}


async def run_daemon(host: str = "127.0.0.1", port: int = 0,
                     workers: Optional[int] = None,
                     cache_dir: Optional[str] = None,
                     tracer: Optional[Tracer] = None,
                     ready=None) -> VerifyDaemon:
    """Start a daemon and serve until shutdown; returns the daemon.

    ``ready`` (optional callable) is invoked with the daemon once the
    port is bound — ``python -m repro.server`` uses it to print the
    listening address, tests use it to capture the ephemeral port.
    """
    daemon = VerifyDaemon(host=host, port=port, workers=workers,
                          cache_dir=cache_dir, tracer=tracer)
    await daemon.start()
    if ready is not None:
        ready(daemon)
    await daemon.serve_forever()
    return daemon
