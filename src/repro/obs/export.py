"""Exporters over a :class:`repro.obs.Tracer`'s records.

Three consumers, three formats:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (the ``{"traceEvents": [...]}`` flavor), loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` for a
  flame-graph view of a run;
* :func:`ndjson_sink` — a streaming structured log, one JSON object per
  finished span/event, for ``-v`` on the CLI and for log shippers;
* :func:`profile_tree` — a human self/total time tree, the ``--profile``
  summary (ABC's ``time`` command, but hierarchical).

:func:`span_totals` is the machine-readable reduction the benchmark rows
embed: top-level span name → total seconds.
"""

from __future__ import annotations

import json
from typing import IO, Callable, Optional

from .tracer import SpanRecord, Tracer


def to_chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer's records as a Chrome trace-event JSON object.

    Spans become complete (``"ph": "X"``) events and instants become
    thread-scoped instant (``"ph": "i"``) events; timestamps are
    microseconds from the tracer's epoch, which is what the trace viewers
    expect.  Every thread that recorded a span gets ``thread_name`` /
    ``thread_sort_index`` metadata (the tracer's own thread is ``main``
    and sorts first; others are ``worker-N`` in order of appearance), and
    each :class:`~repro.obs.timeseries.TimeSeries` channel becomes a
    counter track (``"ph": "C"``) that Perfetto renders as a graph —
    the solver's live search telemetry.
    """
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": tracer.pid,
        "tid": 0,
        "args": {"name": "repro"},
    }]
    tids: dict[int, str] = {}
    for record in tracer.records:
        if record.tid not in tids:
            tids[record.tid] = ""  # labeled below, in appearance order
    workers = 0
    for tid in tids:
        if tid == tracer.main_tid:
            tids[tid] = "main"
        else:
            workers += 1
            tids[tid] = f"worker-{workers}"
    sort_index = 1
    for tid, label in tids.items():
        index = 0 if label == "main" else sort_index
        if label != "main":
            sort_index += 1
        events.append({"name": "thread_name", "ph": "M", "pid": tracer.pid,
                       "tid": tid, "args": {"name": label}})
        events.append({"name": "thread_sort_index", "ph": "M",
                       "pid": tracer.pid, "tid": tid,
                       "args": {"sort_index": index}})
    for record in tracer.records:
        event: dict = {
            "name": record.name,
            "cat": record.path[0] if record.path else record.name,
            "pid": tracer.pid,
            "tid": record.tid,
            "ts": round(record.start * 1e6, 3),
            "args": record.args,
        }
        if record.duration is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(record.duration * 1e6, 3)
        events.append(event)
    # Counter tracks: one event per sample; Perfetto keys counters by
    # (pid, name), so the track survives whatever thread sampled it.
    for name in sorted(getattr(tracer, "timeseries", {})):
        series = tracer.timeseries[name]
        for t, value in series:
            events.append({
                "name": name,
                "ph": "C",
                "pid": tracer.pid,
                "tid": 0,
                "ts": round(t * 1e6, 3),
                "args": {"value": value},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle, default=str)
        handle.write("\n")


def ndjson_sink(stream: IO[str],
                max_depth: Optional[int] = None,
                flush: bool = True) -> Callable[[SpanRecord], None]:
    """A :class:`Tracer` sink streaming records to ``stream`` as ndjson.

    Each finished span emits one line as it closes (events as they fire)
    and the stream is flushed per line by default, so the log is live
    even on a block-buffered file or piped stderr — a hung run shows its
    last completed phase.  Pass ``flush=False`` to trade liveness for
    throughput on very chatty traces.  ``max_depth`` drops records
    nested deeper than that many spans: the CLI maps ``-v`` to the top
    two levels and ``-vv`` to everything.
    """
    def sink(record: SpanRecord) -> None:
        if max_depth is not None and record.depth > max_depth:
            return
        obj: dict = {
            "ev": "span" if record.duration is not None else "event",
            "name": record.name,
            "t_ms": round(record.start * 1e3, 3),
        }
        if record.duration is not None:
            obj["dur_ms"] = round(record.duration * 1e3, 3)
        if record.path:
            obj["in"] = "/".join(record.path)
        if record.args:
            obj["args"] = record.args
        stream.write(json.dumps(obj, default=str) + "\n")
        if flush:
            stream.flush()
    return sink


def span_totals(tracer: Tracer, depth: int = 0) -> dict[str, float]:
    """Total seconds per span name at one nesting depth (default: roots)."""
    totals: dict[str, float] = {}
    for record in tracer.spans():
        if record.depth == depth:
            totals[record.name] = totals.get(record.name, 0.0) + \
                record.duration
    return totals


def profile_tree(tracer: Tracer) -> str:
    """A human self/total wall-time tree over the recorded spans.

    Repeated spans with the same nesting path aggregate into one row with
    a call count; *self* time is a span's total minus its children's
    totals — the time the phase spent in its own code rather than in an
    instrumented sub-phase.  Rows keep first-execution order, so the tree
    reads as the run's chronology.
    """
    nodes: dict[tuple[str, ...], dict] = {}
    for record in tracer.spans():
        key = record.path + (record.name,)
        node = nodes.get(key)
        if node is None:
            node = nodes[key] = {"total": 0.0, "count": 0,
                                 "first": record.start}
        node["total"] += record.duration
        node["count"] += 1
        if record.start < node["first"]:
            node["first"] = record.start
    if not nodes:
        return "(no spans recorded)"

    children: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    roots: list[tuple[str, ...]] = []
    for key in nodes:
        parent = key[:-1]
        if parent and parent in nodes:
            children.setdefault(parent, []).append(key)
        else:
            roots.append(key)
    for kids in children.values():
        kids.sort(key=lambda k: nodes[k]["first"])
    roots.sort(key=lambda k: nodes[k]["first"])

    rows: list[tuple[str, float, float, int]] = []

    def walk(key: tuple[str, ...], indent: int) -> None:
        node = nodes[key]
        child_total = sum(nodes[kid]["total"]
                          for kid in children.get(key, ()))
        label = "  " * indent + key[-1]
        rows.append((label, node["total"],
                     node["total"] - child_total, node["count"]))
        for kid in children.get(key, ()):
            walk(kid, indent + 1)

    for root in roots:
        walk(root, 0)

    width = max(len(label) for label, *_ in rows)
    width = max(width, len("span"))
    lines = [f"{'span':<{width}}  {'total':>10}  {'self':>10}  {'calls':>5}"]
    for label, total, self_s, count in rows:
        lines.append(
            f"{label:<{width}}  {total * 1e3:>8.2f}ms  "
            f"{self_s * 1e3:>8.2f}ms  {count:>5}"
        )
    return "\n".join(lines)
