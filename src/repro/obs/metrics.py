"""A small counters/gauges/histograms registry.

The engines' existing statistics objects (``SolverStats``, ``PassStats``,
``FraigStats``) stay the source of truth for their own runs; the registry
is the *composition* layer — one namespace absorbing numbers from every
engine so a whole CEC or fraig run reads as a single machine-readable
profile (``MetricsRegistry.to_dict``), and so long-running callers (the
future server) can watch counters move across many runs.

Metric names are dotted (``solver.conflicts``, ``opt.gates_removed``);
:meth:`MetricsRegistry.absorb` bulk-imports a plain number dict (the
``to_dict()`` shape every stats object already has) under such a prefix.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (trail depth, class count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary of an observed distribution, with exact percentiles.

    Samples are retained (our producers — per-CEC-pair solve times,
    per-fraig-proof conflict counts — are bounded per run, so exact
    nearest-rank percentiles beat bucketing); ``to_dict`` summarizes as
    count/sum/min/max/mean/p50/p95.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._samples: list[Number] = []

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        self._samples.append(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Number:
        """Nearest-rank percentile of everything observed (0 if empty)."""
        if not self._samples:
            return 0
        ordered = sorted(self._samples)
        if p <= 0:
            return ordered[0]
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[min(len(ordered), max(1, rank)) - 1]

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Asking for an existing name with a different metric kind is an error —
    it would silently fork the data.  All mutations are lock-protected so
    threads can share one registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric '{name}' already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def absorb(self, prefix: str, values: Mapping[str, Number]) -> None:
        """Add a stats dict's numeric entries as ``prefix.key`` counters.

        This is how the engines' ``SolverStats.to_dict()`` /
        ``PassStats.to_dict()`` numbers flow into the unified profile;
        non-numeric and derived-float entries become gauges (they are
        snapshots, not totals).
        """
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            name = f"{prefix}.{key}"
            if isinstance(value, float):
                self.gauge(name).set(value)
            else:
                self.counter(name).inc(value)

    def to_dict(self) -> dict:
        """All metrics, sorted by name, each as its ``to_dict()`` record."""
        with self._lock:
            return {
                name: metric.to_dict()
                for name, metric in sorted(self._metrics.items())
            }

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
