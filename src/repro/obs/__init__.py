"""``repro.obs`` — unified tracing & metrics across the whole pipeline.

Every engine in the repository (elaborator, optimization passes, FRAIG,
the CDCL solver, the compiled simulator, the CEC driver) is instrumented
against this zero-dependency subsystem:

* :class:`Tracer` records hierarchical wall-clock *spans* and instant
  events; :func:`use_tracer` installs one process-wide and the engines
  pick it up via :func:`get_tracer`.  The default :data:`NULL_TRACER`
  makes disabled tracing near-free.
* :class:`MetricsRegistry` (on ``tracer.metrics``) composes the engines'
  stats objects — ``SolverStats``, ``PassStats``, ``FraigStats`` — into
  one counters/gauges/histograms namespace.
* :class:`TimeSeries` channels (``tracer.counter(name, value)``) capture
  time-resolved samples — the solver's live search telemetry — exported
  as Chrome trace-event counter tracks that Perfetto graphs.
* Exporters: :func:`write_chrome_trace` (Perfetto /
  ``chrome://tracing``-loadable JSON), :func:`ndjson_sink` (streaming
  structured log), :func:`profile_tree` (human self/total summary),
  :func:`span_totals` (per-phase seconds, embedded in the BENCH_*.json
  rows).

The CLI exposes all three through ``--trace FILE.json``, ``-v`` /
``--log-level``, and ``--profile``; ``scripts/bench.py`` runs every tier
under a tracer.  The solver additionally emits MiniSat-style progress
events every N conflicts through a pluggable callback —
:func:`attach_solver_progress` routes them into the current tracer.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .timeseries import TimeSeries
from .tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from .export import (
    ndjson_sink,
    profile_tree,
    span_totals,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "TimeSeries",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "ndjson_sink",
    "profile_tree",
    "span_totals",
    "to_chrome_trace",
    "write_chrome_trace",
    "attach_solver_progress",
]


def attach_solver_progress(solver, tracer=None, interval: int = 2000) -> None:
    """Stream a solver's progress reports into a tracer as instant events.

    ``solver`` is any engine providing ``set_progress(callback, interval)``
    (the flat-array :class:`repro.netlist.sat.Solver`; the reference solver
    has no progress plumbing and is silently left alone).  Each report —
    the MiniSat-style line of conflicts / restarts / trail depth / mean
    LBD / props-per-second — lands as a ``solver.progress`` instant event
    inside whatever span is open at emission time, so trace viewers show
    search progress *inside* the ``cec.solve`` or ``fraig.round`` span it
    belongs to.  The search-shape numbers are additionally sampled into
    ``solver.*`` :class:`TimeSeries` channels (``tracer.counter``), which
    the Chrome trace exporter renders as Perfetto counter tracks — live
    graphs of conflict rate / trail depth / learned-DB size / mean LBD
    under the flame graph.
    """
    tracer = tracer if tracer is not None else get_tracer()
    if not tracer.enabled:
        return
    set_progress = getattr(solver, "set_progress", None)
    if set_progress is None:
        return

    counter_keys = ("conflicts", "conflicts_per_second", "trail",
                    "learned", "mean_lbd", "props_per_second")

    def emit(report: dict) -> None:
        tracer.instant("solver.progress", **report)
        for key in counter_keys:
            value = report.get(key)
            if value is not None:
                tracer.counter(f"solver.{key}", value)

    set_progress(emit, interval=interval)
