"""Time-resolved counter series — the tracer's fourth data shape.

Spans answer *where time went*, instants answer *what happened*, metrics
answer *how much in total*.  None of them answer *how did it evolve*:
whether the solver's conflict rate collapsed halfway through a hard
miter, whether mean LBD drifted up as the learned DB aged.  A
:class:`TimeSeries` is the minimal structure for that — one named
channel of ``(t_seconds, value)`` samples, appended by
``Tracer.counter()`` and rendered by ``to_chrome_trace`` as Chrome
trace-event *counter* tracks (``"ph": "C"``), which Perfetto draws as
live graphs under the span flame graph.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

Number = Union[int, float]

__all__ = ["TimeSeries"]


class TimeSeries:
    """One named series of ``(t_seconds, value)`` samples.

    Times are seconds from the owning tracer's epoch, strictly append
    order (the tracer's clock is monotonic).  Parallel lists rather than
    tuples keep per-sample overhead at two list appends — this sits on
    the solver's progress path.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[Number] = []

    def append(self, t: float, value: Number) -> None:
        self.times.append(t)
        self.values.append(value)

    def last(self) -> Optional[Tuple[float, Number]]:
        """The most recent sample, or None when empty."""
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def to_dict(self) -> dict:
        return {"name": self.name,
                "samples": [[round(t, 6), v]
                            for t, v in zip(self.times, self.values)]}

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, Number]]:
        return iter(zip(self.times, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, samples={len(self.times)})"
