"""Hierarchical span tracing for the elaborate → opt → FRAIG → SAT → sim
pipeline.

A :class:`Tracer` records *spans* — named, nested, wall-clocked intervals
opened with the :meth:`Tracer.span` context manager — plus zero-duration
*instant* events (solver progress reports, hash-proven root pairs).  The
records are flat :class:`SpanRecord` rows carrying their nesting path, so
exporters (:mod:`repro.obs.export`) can rebuild the tree, emit Chrome
trace-event JSON, stream ndjson, or print a self/total profile without the
tracer itself committing to any one format.

The instrumented engines never take a tracer parameter; they call
:func:`get_tracer` and trace into whatever is installed.  The default is
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager — disabled tracing costs a method call and a dict build per span
site, nothing per gate or per solver conflict.  :func:`use_tracer`
installs a live tracer for a ``with`` region and always restores the
previous one, exceptions included.

Thread safety: the span *stack* is thread-local (each thread nests its own
spans), while the finished-record list is shared under a lock, so a future
multiprocessing/threaded server can funnel worker spans into one trace.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .metrics import MetricsRegistry
from .timeseries import TimeSeries


@dataclass
class SpanRecord:
    """One finished span (or instant event, when ``duration`` is None)."""

    name: str
    #: Wall-clock start, seconds relative to the tracer's epoch.
    start: float
    #: Seconds; ``None`` marks an instant event.
    duration: Optional[float]
    #: Names of the enclosing spans, outermost first (not including self).
    path: tuple[str, ...]
    #: Thread identifier the span ran on.
    tid: int
    #: Free-form key/value annotations attached at open or close time.
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.path)


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args: Any) -> None:
        """Discard annotations (live spans record them)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a no-op.

    Kept API-compatible with :class:`Tracer` so instrumentation sites never
    branch — they call ``get_tracer().span(...)`` unconditionally and pay
    near-zero cost when tracing is off.  ``enabled`` is ``False`` so the
    few genuinely hot sites (solver progress wiring) can skip setup work
    entirely.
    """

    enabled = False

    def span(self, name: str, /, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, /, **args: Any) -> None:
        pass

    def counter(self, name: str, value: Any, /) -> None:
        pass

    @property
    def metrics(self) -> MetricsRegistry:
        # A fresh throwaway registry: writes vanish, reads see zeros.
        return MetricsRegistry()


#: The process-wide disabled tracer (also the reset target).
NULL_TRACER = NullTracer()


class _LiveSpan:
    """Context manager for one open span of a live :class:`Tracer`.

    Exception-safe: ``__exit__`` always pops the stack and records the
    span (annotated with the exception type when one escaped), then lets
    the exception propagate.
    """

    __slots__ = ("_tracer", "name", "args", "_start", "_path")

    def __init__(self, tracer: "Tracer", name: str,
                 args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self._path: tuple[str, ...] = ()

    def set(self, **args: Any) -> None:
        """Attach (or overwrite) annotations while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self._path = tuple(frame.name for frame in stack)
        stack.append(self)
        self._start = self._tracer.clock() - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer.clock() - self._tracer.epoch
        stack = self._tracer._stack()
        # Pop self even if interleaved misuse left later frames open.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.args["exception"] = exc_type.__name__
        self._tracer._record(SpanRecord(
            name=self.name,
            start=self._start,
            duration=end - self._start,
            path=self._path,
            tid=threading.get_ident(),
            args=self.args,
        ))
        return False


class Tracer:
    """A live span/event recorder with an attached metrics registry.

    ``sink`` (optional) is called with every finished :class:`SpanRecord`
    as it lands — the ndjson structured log streams through it — while the
    full record list stays available for post-run export.
    """

    enabled = True

    def __init__(self, sink: Optional[Callable[[SpanRecord], None]] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.epoch = clock()
        self.records: list[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self.timeseries: dict[str, TimeSeries] = {}
        self.sink = sink
        self.pid = os.getpid()
        #: Thread that built the tracer — labeled "main" by the Chrome
        #: trace exporter's thread metadata.
        self.main_tid = threading.get_ident()
        self._lock = threading.Lock()
        self._tls = threading.local()

    def _stack(self) -> list[_LiveSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def span(self, name: str, /, **args: Any) -> _LiveSpan:
        """Open a nested span: ``with tracer.span("cec.solve", vars=n):``."""
        return _LiveSpan(self, name, args)

    def instant(self, name: str, /, **args: Any) -> None:
        """Record a zero-duration event at the current nesting depth."""
        self._record(SpanRecord(
            name=name,
            start=self.clock() - self.epoch,
            duration=None,
            path=tuple(frame.name for frame in self._stack()),
            tid=threading.get_ident(),
            args=args,
        ))

    def counter(self, name: str, value: Any, /) -> None:
        """Append one sample to the named :class:`TimeSeries`.

        Counter channels are time-resolved (``(t, value)`` at the
        tracer's clock), unlike the metrics registry's scalar counters.
        They export as Chrome trace-event counter tracks — Perfetto
        graphs them under the flame graph — which is how the solver's
        progress snapshots (conflict rate, mean LBD, trail depth, ...)
        become live search-behavior plots.
        """
        t = self.clock() - self.epoch
        series = self.timeseries.get(name)
        if series is None:
            with self._lock:
                series = self.timeseries.setdefault(name, TimeSeries(name))
        series.append(t, value)

    def adopt(self, records: list[SpanRecord], tid: Optional[int] = None,
              offset: Optional[float] = None) -> None:
        """Stitch spans recorded by *another* tracer into this timeline.

        The multiprocessing paths (partitioned CEC, the server's job
        pool) run each worker under its own :class:`Tracer` and ship the
        picklable :class:`SpanRecord` rows back to the parent, which
        adopts them so one export shows the whole fan-out.  ``offset``
        shifts the foreign epoch-relative starts onto this tracer's
        clock; by default the foreign trace is aligned to end *now* (the
        parent adopts right after collecting the worker's result).
        ``tid`` relabels the records' thread id so exporters draw each
        worker on its own track instead of colliding with parent threads.
        """
        if not records:
            return
        if offset is None:
            end = max(r.start + (r.duration or 0.0) for r in records)
            offset = (self.clock() - self.epoch) - end
        adopted = [
            SpanRecord(name=r.name, start=r.start + offset,
                       duration=r.duration, path=r.path,
                       tid=tid if tid is not None else r.tid,
                       args=r.args)
            for r in records
        ]
        with self._lock:
            self.records.extend(adopted)
        if self.sink is not None:
            for record in adopted:
                self.sink(record)

    # -- post-run queries ---------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        """Finished spans only (instants excluded), in completion order."""
        return [r for r in self.records if r.duration is not None]

    def total_seconds(self, name: Optional[str] = None,
                      depth: Optional[int] = None) -> float:
        """Sum of span durations, optionally filtered by name and/or depth."""
        return sum(
            r.duration for r in self.records
            if r.duration is not None
            and (name is None or r.name == name)
            and (depth is None or r.depth == depth)
        )


# ---------------------------------------------------------------------------
# The process-wide current tracer
# ---------------------------------------------------------------------------

_current: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The tracer instrumentation sites should record into right now."""
    return _current


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``tracer`` as the process-wide current tracer.

    Returns the previously installed tracer so callers can restore it;
    prefer :func:`use_tracer` which does that automatically.
    """
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
