"""Reproduction of the ALICE eFPGA-redaction flow (DAC'22).

Subpackages:

* :mod:`repro.verilog` — self-contained synthesizable-subset Verilog
  frontend (lexer, parser, AST, code generator, hierarchy and dataflow
  analyses);
* :mod:`repro.netlist` — gate-level netlist IR, the RTL elaborator that
  lowers parsed designs into it, a bit-level simulator and a vector-level
  reference interpreter.
"""

from . import netlist, verilog

__all__ = ["netlist", "verilog"]

__version__ = "0.1.0"
