"""Reproduction of the ALICE eFPGA-redaction flow (DAC'22).

Subpackages:

* :mod:`repro.verilog` — self-contained synthesizable-subset Verilog
  frontend (lexer, parser, AST, code generator, hierarchy and dataflow
  analyses);
* :mod:`repro.netlist` — gate-level netlist IR, the RTL elaborator that
  lowers parsed designs into it, a bit-level simulator and a vector-level
  reference interpreter;
* :mod:`repro.netlist.sim` — the compiled bit-parallel simulation engine
  (netlists levelized and code-generated into straight-line Python, up to
  W stimulus patterns packed per net), the default behind
  ``simulate_vectors`` / ``simulate_sequence``;
* :mod:`repro.netlist.opt` — the optimization pass pipeline (constant
  propagation, structural hashing, identity simplification, chain
  balancing, cut-based DAG-aware rewriting over the NPN structure
  library, dead-gate sweep) with per-pass statistics, plus the
  priority-cut k-LUT technology mapper (``opt.map``) on the shared
  cut/truth-table kernel (``opt.cut``);
* :mod:`repro.netlist.sat` — Tseitin CNF encoding, a small CDCL solver and
  miter-based combinational equivalence checking, used to formally verify
  every optimization;
* :mod:`repro.obs` — the unified tracing & metrics layer: hierarchical
  span tracing across every engine above, a counters/gauges/histograms
  registry, solver progress events, and Chrome-trace / ndjson / profile
  exporters (CLI ``--trace`` / ``--profile`` / ``-v``).

``python -m repro design.v`` runs the full parse → elaborate → optimize →
verify flow from the command line (see :mod:`repro.cli`).
"""

from . import netlist, obs, verilog

__all__ = ["netlist", "obs", "verilog"]

__version__ = "0.10.0"
