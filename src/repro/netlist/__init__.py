"""Gate-level netlist IR, RTL elaborator, simulator and reference interpreter.

The canonical pipeline is ``elaborate(source, top=...) -> Netlist`` followed
by :func:`simulate` (bit-level) or :func:`simulate_vectors` /
:func:`simulate_sequence` (word-level).  :class:`Interpreter` executes the
same designs directly at vector level and serves as the elaborator's
round-trip oracle.
"""

from .bitblast import binary_width, natural_width
from .elaborate import (
    Elaborator,
    elaborate,
    simulate_sequence,
    simulate_vectors,
)
from .environment import ElaborationError, Scope
from .interp import Interpreter, InterpreterError
from .logic import Gate, GateType, Netlist, NetlistError, simulate

__all__ = [
    "binary_width",
    "natural_width",
    "Elaborator",
    "elaborate",
    "simulate_sequence",
    "simulate_vectors",
    "ElaborationError",
    "Scope",
    "Interpreter",
    "InterpreterError",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "simulate",
]
