"""Gate-level netlist IR, RTL elaborator, optimizer, simulator, reference
interpreter and SAT-based equivalence checker.

The canonical pipeline is ``elaborate(source, top=...) -> Netlist`` followed
by :func:`simulate` (bit-level) or :func:`simulate_vectors` /
:func:`simulate_sequence` (word-level; both route through the compiled
bit-parallel engine in :mod:`repro.netlist.sim` by default).
:func:`compile_netlist` levelizes a netlist into a straight-line Python
function and :class:`CompiledSim` drives it statefully, packing up to W
stimulus patterns per net.  :mod:`repro.netlist.opt` shrinks a netlist
through a verified pass pipeline (``elaborate(..., optimize=True)`` runs it
inline); :mod:`repro.netlist.sat` proves an optimized netlist equivalent to
its source via a Tseitin-encoded miter.  :class:`Interpreter` executes the
same designs directly at vector level and serves as the elaborator's
round-trip oracle.
"""

from . import aig, opt, sat, sim
from .aig import AIG, AIGError, from_netlist, to_netlist
from .bitblast import binary_width, natural_width
from .elaborate import (
    Elaborator,
    elaborate,
    simulate_sequence,
    simulate_vectors,
)
from .environment import ElaborationError, Scope
from .interp import Interpreter, InterpreterError
from .logic import Gate, GateType, Netlist, NetlistError, simulate
from .opt import OptResult, PassManager, PassStats, optimize
from .sat import EquivalenceResult, check_equivalence
from .sim import CompiledNetlist, CompiledSim, compile_netlist, simulate_compiled

__all__ = [
    "AIG",
    "AIGError",
    "from_netlist",
    "to_netlist",
    "binary_width",
    "natural_width",
    "Elaborator",
    "elaborate",
    "simulate_sequence",
    "simulate_vectors",
    "ElaborationError",
    "Scope",
    "Interpreter",
    "InterpreterError",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "simulate",
    "aig",
    "opt",
    "sat",
    "sim",
    "CompiledNetlist",
    "CompiledSim",
    "compile_netlist",
    "simulate_compiled",
    "OptResult",
    "PassManager",
    "PassStats",
    "optimize",
    "EquivalenceResult",
    "check_equivalence",
]
