"""Elaboration environments: per-instance scopes and signal tables.

Elaboration flattens the design hierarchy into a set of :class:`Scope`
objects, one per module instance.  A scope records the resolved parameter
values, the declared width of every signal, and the net ids (one per bit,
LSB first) each signal resolves to in the target :class:`~repro.netlist.logic.Netlist`.

Bits are resolved lazily: module items (continuous assigns, combinational
always blocks, child instances) register themselves as *drivers* for the bits
they produce, and the elaborator forces a driver the first time one of its
bits is demanded.  This makes elaboration order-independent, exactly like
continuous assignment semantics in Verilog, while still detecting
combinational cycles and undriven or multiply-driven bits with precise
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.verilog import ast
from repro.verilog.consteval import ConstEvalError, evaluate, range_width


class ElaborationError(Exception):
    """Raised when the design cannot be lowered to a gate-level netlist."""


#: Safety bound on ``for``-loop unrolling.
UNROLL_LIMIT = 4096


@dataclass
class SignalInfo:
    """Declared properties of one named signal in a scope."""

    name: str
    width: int
    kind: str = "wire"          # "wire" or "reg"
    direction: Optional[str] = None  # "input" / "output" / None for internals


class Driver:
    """A module item that produces values for one or more signal bits.

    ``force`` lowers the item into the netlist and binds every bit it drives;
    it is invoked at most once.  ``label`` appears in diagnostics.
    """

    def __init__(self, label: str, force: Callable[[], None]):
        self.label = label
        self._force = force
        self.forced = False
        self.in_progress = False

    def run(self) -> None:
        if self.forced:
            return
        if self.in_progress:
            raise ElaborationError(
                f"combinational cycle detected while elaborating {self.label}"
            )
        self.in_progress = True
        try:
            self._force()
        finally:
            self.in_progress = False
        self.forced = True


class Scope:
    """One flattened module instance during elaboration."""

    def __init__(self, path: str, module: ast.Module, params: dict[str, int]):
        self.path = path
        self.module = module
        self.params = dict(params)
        self.signals: dict[str, SignalInfo] = {}
        # Resolved net ids per bit (LSB first); None = not yet resolved.
        self.bits: dict[str, list[Optional[int]]] = {}
        # Registered driver per bit; forced on first demand.
        self.drivers: dict[tuple[str, int], Driver] = {}
        # Bits that a forced driver assigned only on some control paths.
        self.latched: set[tuple[str, int]] = set()

    # -- declarations -------------------------------------------------------

    def declare(self, info: SignalInfo) -> None:
        existing = self.signals.get(info.name)
        if existing is not None:
            # Non-ANSI styles redeclare ports as wire/reg in the body; merge.
            existing.kind = info.kind if info.kind == "reg" else existing.kind
            if info.width > 1 and existing.width == 1:
                existing.width = info.width
                self.bits[info.name] = [None] * info.width
            return
        self.signals[info.name] = info
        self.bits[info.name] = [None] * info.width

    def signal(self, name: str) -> SignalInfo:
        try:
            return self.signals[name]
        except KeyError:
            raise ElaborationError(
                f"signal '{name}' is not declared in {self.path}"
            ) from None

    def width(self, name: str) -> int:
        return self.signal(name).width

    # -- driver registration / bit binding ----------------------------------

    def register_driver(self, name: str, index: int, driver: Driver) -> None:
        key = (name, index)
        if self.bits[name][index] is not None or key in self.drivers:
            raise ElaborationError(
                f"bit {name}[{index}] in {self.path} has multiple drivers "
                f"({driver.label} conflicts with an earlier one)"
            )
        self.drivers[key] = driver

    def bind(self, name: str, index: int, net: int,
             driver: Optional[Driver] = None) -> None:
        """Record the net id of one bit.

        ``driver`` identifies the forcing driver when the binding comes from
        one; a binding that collides with a *different* registered driver (or
        with an existing binding) is a multiple-driver error.
        """
        row = self.bits.get(name)
        if row is None:
            raise ElaborationError(
                f"signal '{name}' is not declared in {self.path}"
            )
        if not 0 <= index < len(row):
            raise ElaborationError(
                f"bit index {index} out of range for {name}"
                f"[{len(row) - 1}:0] in {self.path}"
            )
        registered = self.drivers.get((name, index))
        if row[index] is not None or (
            registered is not None and registered is not driver
        ):
            raise ElaborationError(
                f"bit {name}[{index}] in {self.path} has multiple drivers"
            )
        row[index] = net

    def resolve_bit(self, name: str, index: int) -> int:
        """Return the net id of ``name[index]``, forcing its driver if needed."""
        info = self.signal(name)
        if not 0 <= index < info.width:
            raise ElaborationError(
                f"bit select {name}[{index}] out of range "
                f"[{info.width - 1}:0] in {self.path}"
            )
        net = self.bits[name][index]
        if net is not None:
            return net
        driver = self.drivers.get((name, index))
        if driver is None:
            raise ElaborationError(
                f"signal bit {name}[{index}] in {self.path} is read but "
                f"has no driver"
            )
        driver.run()
        net = self.bits[name][index]
        if net is None:
            if (name, index) in self.latched:
                raise ElaborationError(
                    f"{driver.label} assigns {name}[{index}] only on some "
                    f"control paths in {self.path}: inferred latch is not "
                    f"synthesizable"
                )
            raise ElaborationError(
                f"{driver.label} was expected to drive {name}[{index}] in "
                f"{self.path} but did not"
            )
        return net

    def resolve_signal(self, name: str) -> list[int]:
        """Resolve every bit of a signal (LSB first)."""
        return [self.resolve_bit(name, i) for i in range(self.width(name))]

    def force_all(self) -> None:
        """Force every registered driver (completes dead logic as well)."""
        for driver in list(self.drivers.values()):
            driver.run()


def const_int(expr: ast.Expression, env: Mapping[str, int],
              context: str) -> int:
    """Evaluate an expression that elaboration requires to be constant."""
    try:
        return evaluate(expr, env)
    except ConstEvalError as exc:
        raise ElaborationError(f"{context}: {exc}") from exc


def instance_overrides(params: Mapping[str, int], inst: ast.Instance,
                       child_module: ast.Module,
                       child_path: str) -> dict[str, int]:
    """Resolve an instantiation's parameter overrides against the child.

    Shared by the elaborator and the reference interpreter so both engines
    accept and reject exactly the same instantiations.
    """
    if not inst.parameters:
        return {}
    named = [p for p in inst.parameters if p.param is not None]
    if named and len(named) != len(inst.parameters):
        raise ElaborationError(
            f"instance '{child_path}' mixes named and positional "
            f"parameter overrides"
        )
    formal = [d.name for d in child_module.param_decls if not d.local]
    overrides: dict[str, int] = {}
    if named:
        for override in named:
            if override.param not in formal:
                raise ElaborationError(
                    f"instance '{child_path}' overrides unknown parameter "
                    f"'{override.param}' of module '{child_module.name}'"
                )
            overrides[override.param] = const_int(
                override.expr, params,
                f"parameter override '.{override.param}' on '{child_path}'")
    else:
        if len(inst.parameters) > len(formal):
            raise ElaborationError(
                f"instance '{child_path}' has {len(inst.parameters)} "
                f"positional parameter overrides but module "
                f"'{child_module.name}' declares only {len(formal)}"
            )
        for name, override in zip(formal, inst.parameters):
            overrides[name] = const_int(
                override.expr, params,
                f"positional parameter override on '{child_path}'")
    return overrides


def instance_connections(inst: ast.Instance, child_module: ast.Module,
                         child_path: str
                         ) -> dict[str, Optional[ast.Expression]]:
    """Map an instantiation's port connections to child port names."""
    conn_map: dict[str, Optional[ast.Expression]] = {}
    positional = [c for c in inst.connections if c.port is None]
    if positional:
        if len(positional) != len(inst.connections):
            raise ElaborationError(
                f"instance '{child_path}' mixes named and positional "
                f"port connections"
            )
        if len(positional) > len(child_module.ports):
            raise ElaborationError(
                f"instance '{child_path}' connects {len(positional)} ports "
                f"but module '{child_module.name}' has only "
                f"{len(child_module.ports)}"
            )
        for port, conn in zip(child_module.ports, inst.connections):
            conn_map[port.name] = conn.expr
        return conn_map
    for conn in inst.connections:
        if child_module.port(conn.port) is None:
            raise ElaborationError(
                f"instance '{child_path}' connects unknown port "
                f"'{conn.port}' of module '{child_module.name}'"
            )
        if conn.port in conn_map:
            raise ElaborationError(
                f"instance '{child_path}' connects port '{conn.port}' twice"
            )
        conn_map[conn.port] = conn.expr
    return conn_map


def unroll_for(stmt: "ast.For", params: Mapping[str, int],
               consts: dict[str, int], path: str):
    """Drive the compile-time iteration of a ``for`` loop.

    Validates the init/step shape, maintains the loop variable in ``consts``
    and enforces :data:`UNROLL_LIMIT`; yields once per iteration so the
    caller (elaborator or interpreter) executes the body.  Shared so both
    engines unroll identically.
    """
    if not isinstance(stmt.init, ast.BlockingAssign) or \
            not isinstance(stmt.init.lhs, ast.Identifier):
        raise ElaborationError(
            f"for-loop init must be a blocking assignment to a loop "
            f"variable in {path}"
        )
    if not isinstance(stmt.step, ast.BlockingAssign) or \
            not isinstance(stmt.step.lhs, ast.Identifier):
        raise ElaborationError(
            f"for-loop step must be a blocking assignment to the loop "
            f"variable in {path}"
        )
    var = stmt.init.lhs.name
    consts[var] = const_int(stmt.init.rhs, {**params, **consts},
                            f"for-loop init of '{var}'")
    iterations = 0
    while True:
        try:
            cond = evaluate(stmt.cond, {**params, **consts})
        except ConstEvalError as exc:
            raise ElaborationError(
                f"for-loop condition in {path} must be a compile-time "
                f"constant: {exc}"
            ) from exc
        if not cond:
            return
        iterations += 1
        if iterations > UNROLL_LIMIT:
            raise ElaborationError(
                f"for-loop in {path} exceeds the unroll limit of "
                f"{UNROLL_LIMIT} iterations"
            )
        yield
        consts[stmt.step.lhs.name] = const_int(
            stmt.step.rhs, {**params, **consts}, f"for-loop step of '{var}'")


def build_signal_table(scope: Scope) -> None:
    """Populate ``scope.signals`` from the module's ports and declarations.

    Port widths may be declared either in the header (ANSI) or by a matching
    body declaration (non-ANSI); body ``reg`` declarations upgrade the kind.
    """
    module = scope.module
    params = scope.params
    decl_by_name = {d.name: d for d in module.net_decls}

    for port in module.ports:
        if port.direction == "inout":
            raise ElaborationError(
                f"inout port '{port.name}' on module '{module.name}' is not "
                f"supported by the synthesizable subset"
            )
        width_range = port.width
        if width_range is None and port.name in decl_by_name:
            width_range = decl_by_name[port.name].width
        try:
            width = range_width(width_range, params)
        except ConstEvalError as exc:
            raise ElaborationError(
                f"cannot resolve width of port '{port.name}' on module "
                f"'{module.name}': {exc}"
            ) from exc
        kind = "reg" if port.is_reg else "wire"
        if port.name in decl_by_name and decl_by_name[port.name].kind == "reg":
            kind = "reg"
        scope.declare(SignalInfo(name=port.name, width=width, kind=kind,
                                 direction=port.direction))

    for decl in module.net_decls:
        if decl.name in scope.signals:
            if decl.kind == "reg":
                scope.signals[decl.name].kind = "reg"
            continue
        try:
            width = range_width(decl.width, params)
        except ConstEvalError as exc:
            raise ElaborationError(
                f"cannot resolve width of '{decl.name}' in module "
                f"'{module.name}': {exc}"
            ) from exc
        scope.declare(SignalInfo(name=decl.name, width=width, kind=decl.kind))


def lvalue_targets(scope: Scope, expr: ast.Expression,
                   const_env: Optional[Mapping[str, int]] = None
                   ) -> list[tuple[str, int]]:
    """Flatten an assignment target into ``(signal, bit_index)`` pairs.

    The result is LSB first, matching the bit order of lowered expressions.
    Select indices must be compile-time constants.
    """
    env: dict[str, int] = dict(scope.params)
    if const_env:
        env.update(const_env)

    if isinstance(expr, ast.Identifier):
        width = scope.width(expr.name)
        return [(expr.name, i) for i in range(width)]
    if isinstance(expr, ast.BitSelect):
        if not isinstance(expr.target, ast.Identifier):
            raise ElaborationError(
                "assignment target selects must apply directly to a signal"
            )
        name = expr.target.name
        index = const_int(expr.index, env,
                          f"bit-select index on assignment to '{name}'")
        if not 0 <= index < scope.width(name):
            raise ElaborationError(
                f"assignment to {name}[{index}] is out of range "
                f"[{scope.width(name) - 1}:0] in {scope.path}"
            )
        return [(name, index)]
    if isinstance(expr, ast.PartSelect):
        if not isinstance(expr.target, ast.Identifier):
            raise ElaborationError(
                "assignment target selects must apply directly to a signal"
            )
        name = expr.target.name
        msb = const_int(expr.msb, env,
                        f"part-select bound on assignment to '{name}'")
        lsb = const_int(expr.lsb, env,
                        f"part-select bound on assignment to '{name}'")
        if msb < lsb:
            raise ElaborationError(
                f"part select {name}[{msb}:{lsb}] must be written msb:lsb"
            )
        if lsb < 0 or msb >= scope.width(name):
            raise ElaborationError(
                f"assignment to {name}[{msb}:{lsb}] is out of range "
                f"[{scope.width(name) - 1}:0] in {scope.path}"
            )
        return [(name, i) for i in range(lsb, msb + 1)]
    if isinstance(expr, ast.Concat):
        # Verilog concatenations list the MSB part first.
        result: list[tuple[str, int]] = []
        for part in reversed(expr.parts):
            result.extend(lvalue_targets(scope, part, const_env))
        return result
    raise ElaborationError(
        f"unsupported assignment target {type(expr).__name__} in {scope.path}"
    )
