"""Cone-directed netlist reconstruction: the substrate every pass runs on.

An optimization pass never mutates a :class:`~repro.netlist.logic.Netlist`
in place.  Instead it drives a :class:`Rebuilder`, which walks the *live*
cone of the source netlist (everything reachable backwards from the primary
outputs, iterating through flip-flop data pins) in topological order and
asks a builder callback to re-emit each combinational gate into a fresh
netlist.  The callback returns the new net id for the gate — which may be a
freshly created gate, an existing (hashed) gate, a constant, or one of its
own fanins — so constant folding, CSE and identity rewrites all fall out of
the same mechanism.

The rebuilder guarantees the external interface survives every pass:

* primary inputs are recreated first, in order, with their names (even when
  dead, so input vectors remain valid across optimization);
* live flip-flops are created up front against placeholder data pins (their
  Q net may feed its own data cone) and patched once the cone exists, with
  names preserved — names are the register-correspondence key used by the
  equivalence checker;
* primary outputs are re-registered by name onto the mapped nets.

Dead gates are swept by construction: anything outside the live cone is
simply never visited.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..logic import Gate, GateType, Netlist

#: A builder receives the rebuilder, the original gate and the new-netlist
#: net ids of its fanins; it returns the new net id implementing the gate,
#: or ``None`` when the gate has been absorbed into a consumer (only legal
#: when no output, flip-flop or unabsorbed gate reads it).
GateBuilder = Callable[["Rebuilder", Gate, list[Optional[int]]], Optional[int]]


def live_set(netlist: Netlist) -> set[int]:
    """Gate ids reachable backwards from any primary output.

    Flip-flops are traversed through their data pins, so the result is the
    full sequential support cone — everything outside it cannot influence an
    output on any cycle and is dead.
    """
    return netlist.transitive_fanin(
        (net for _, net in netlist.outputs), through_registers=True
    )


class Rebuilder:
    """Rebuilds the live cone of a netlist through a gate builder callback."""

    def __init__(self, source: Netlist):
        self.source = source
        self.result = Netlist(name=source.name)
        #: old net id -> new net id (``None`` for absorbed gates).
        self.map: dict[int, Optional[int]] = {}
        #: logic level of every net in the result netlist (sources at 0).
        self.levels: dict[int, int] = {}
        self.live = live_set(source)

    # -- emission helpers (used by builders) --------------------------------

    def const0(self) -> int:
        gid = self.result.const0()
        self.levels.setdefault(gid, 0)
        return gid

    def const1(self) -> int:
        gid = self.result.const1()
        self.levels.setdefault(gid, 0)
        return gid

    def emit(self, gtype: GateType, fanins: tuple[int, ...],
             name: Optional[str] = None) -> int:
        """Create a gate in the result netlist, tracking its logic level."""
        gid = self.result.add_gate(gtype, fanins, name=name)
        self.levels[gid] = 1 + max(
            (self.levels.get(f, 0) for f in fanins), default=0
        )
        return gid

    def level(self, net: int) -> int:
        """Logic level of a net in the result netlist."""
        return self.levels.get(net, 0)

    def gtype(self, net: int) -> GateType:
        """Gate type of a net in the result netlist."""
        return self.result.gate(net).gtype

    # -- the rebuild loop ---------------------------------------------------

    def run(self, build: GateBuilder) -> Netlist:
        source, result = self.source, self.result

        for gid in source.inputs:
            name = source.gates[gid].name or f"pi_{gid}"
            new = result.add_input(name)
            self.map[gid] = new
            self.levels[new] = 0

        live_dffs = [gid for gid in source.registers if gid in self.live]
        for gid in live_dffs:
            # Materialize a stable name for unnamed flip-flops: gids renumber
            # across rebuilds, and the name is the register-correspondence
            # key the equivalence checker matches on.
            name = source.gates[gid].name or f"dff_{gid}"
            new = result.add_dff(self.const0(), name=name)
            self.map[gid] = new
            self.levels[new] = 0

        for gid in source.topological_order():
            if gid not in self.live or gid in self.map:
                continue
            gate = source.gates[gid]
            if gate.gtype == GateType.CONST0:
                self.map[gid] = self.const0()
                continue
            if gate.gtype == GateType.CONST1:
                self.map[gid] = self.const1()
                continue
            fanins = [self.map[f] for f in gate.fanins]
            self.map[gid] = build(self, gate, fanins)

        for gid in live_dffs:
            data = self.map[self.source.gates[gid].fanins[0]]
            if data is None:
                raise AssertionError(
                    "flip-flop data cone was absorbed without replacement"
                )
            result.set_fanins(self.map[gid], (data,))

        for name, net in source.outputs:
            new = self.map[net]
            if new is None:
                raise AssertionError(
                    f"output '{name}' maps to an absorbed gate"
                )
            result.add_output(name, new)

        result.opt_stats = source.opt_stats
        return result


def identity_builder(rb: Rebuilder, gate: Gate,
                     fanins: list[Optional[int]]) -> int:
    """Re-emit a gate unchanged (used by the dead-gate sweep)."""
    return rb.emit(gate.gtype, tuple(fanins), name=gate.name)
