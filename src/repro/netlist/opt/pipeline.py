"""Pass manager: composition, fixpoint iteration and per-pass statistics."""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence, Union

from ...obs import get_tracer
from ..logic import Netlist
from .fraig import FraigPass
from .passes import (
    BalancePass,
    ConstPropPass,
    Pass,
    SimplifyPass,
    StrashPass,
    SweepPass,
)
from .rewrite import RewritePass

#: Registry of stock passes by name (CLI ``--passes`` and tests use this).
PASS_REGISTRY: dict[str, type[Pass]] = {
    cls.name: cls
    for cls in (ConstPropPass, SimplifyPass, StrashPass, BalancePass,
                SweepPass, FraigPass, RewritePass)
}

#: The default pipeline: clean identities, canonicalize through the AIG
#: (which folds constants and shares structure in one round-trip —
#: ``constprop`` stays in the registry as an alias but would duplicate
#: ``strash`` here), shorten chains, rewrite 4-cut cones against the NPN
#: structure library, then sweep what died along the way.  ``fraig`` stays
#: opt-in (SAT cost), but when it runs it now sees the rewritten graph.
DEFAULT_PIPELINE = ("simplify", "strash", "balance", "rewrite", "sweep")

PassSpec = Union[str, Pass]


class OptimizationError(Exception):
    """Raised on malformed pass specifications."""


def resolve_passes(passes: Optional[Sequence[PassSpec]] = None) -> list[Pass]:
    """Instantiate a pass list from names and/or :class:`Pass` objects."""
    resolved: list[Pass] = []
    for spec in (passes if passes is not None else DEFAULT_PIPELINE):
        if isinstance(spec, Pass):
            resolved.append(spec)
        elif isinstance(spec, str):
            cls = PASS_REGISTRY.get(spec)
            if cls is None:
                known = ", ".join(sorted(PASS_REGISTRY))
                raise OptimizationError(
                    f"unknown pass '{spec}' (known passes: {known})"
                )
            resolved.append(cls())
        else:
            raise OptimizationError(
                f"pass spec must be a name or Pass instance, "
                f"got {type(spec).__name__}"
            )
    return resolved


@dataclass
class PassStats:
    """Size/depth/latency record for one pass execution."""

    name: str
    iteration: int
    gates_before: int
    gates_after: int
    levels_before: int
    levels_after: int
    registers_before: int
    registers_after: int
    seconds: float
    #: Optional pass-specific counters (a pass exposes them by defining
    #: ``stats_dict()`` — FRAIG reports its sweep and aggregated solver
    #: statistics here).  ``None`` rows serialize without the key.
    details: Optional[dict] = field(default=None, compare=False)

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    def to_dict(self) -> dict:
        record = asdict(self)
        if record["details"] is None:
            del record["details"]
        return record

    def __str__(self) -> str:
        return (
            f"{self.name:<10} gates {self.gates_before:>6} -> "
            f"{self.gates_after:<6} levels {self.levels_before:>4} -> "
            f"{self.levels_after:<4} regs {self.registers_before:>4} -> "
            f"{self.registers_after:<4} ({self.seconds * 1e3:.2f} ms)"
        )


class PassManager:
    """Runs a pass pipeline, optionally iterating it to a fixpoint.

    The pipeline is re-run while a full iteration still improves gate count
    or logic depth, bounded by ``max_iterations``.  Every pass execution is
    timed and recorded as a :class:`PassStats` row.
    """

    def __init__(self, passes: Optional[Sequence[PassSpec]] = None,
                 fixpoint: bool = True, max_iterations: int = 8):
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be >= 1")
        self.passes = resolve_passes(passes)
        self.fixpoint = fixpoint
        self.max_iterations = max_iterations if fixpoint else 1

    def run(self, netlist: Netlist) -> tuple[Netlist, list[PassStats]]:
        stats: list[PassStats] = []
        tracer = get_tracer()
        current = netlist
        for iteration in range(1, self.max_iterations + 1):
            gates = current.num_gates
            levels = current.logic_levels()
            for opt_pass in self.passes:
                before = current.stats()
                start = time.perf_counter()
                with tracer.span(f"opt.{opt_pass.name}",
                                 iteration=iteration,
                                 gates=before["gates"]) as span:
                    current = opt_pass.run(current)
                    elapsed = time.perf_counter() - start
                    after = current.stats()
                    span.set(gates_after=after["gates"])
                details = getattr(opt_pass, "stats_dict", lambda: None)()
                stats.append(PassStats(
                    name=opt_pass.name,
                    iteration=iteration,
                    gates_before=before["gates"],
                    gates_after=after["gates"],
                    levels_before=before["levels"],
                    levels_after=after["levels"],
                    registers_before=before["registers"],
                    registers_after=after["registers"],
                    seconds=elapsed,
                    details=details,
                ))
            if current.num_gates >= gates and current.logic_levels() >= levels:
                break
        return current, stats


@dataclass
class OptResult:
    """The outcome of :func:`optimize`: the new netlist plus its history."""

    netlist: Netlist
    stats: list[PassStats]
    gates_before: int
    levels_before: int

    @property
    def gates_after(self) -> int:
        return self.netlist.num_gates

    @property
    def levels_after(self) -> int:
        return self.netlist.logic_levels()

    @property
    def reduction(self) -> float:
        """Fractional gate-count reduction (0.0 when already empty)."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    def summary(self) -> str:
        lines = [str(row) for row in self.stats]
        lines.append(
            f"total      gates {self.gates_before:>6} -> "
            f"{self.gates_after:<6} levels {self.levels_before:>4} -> "
            f"{self.levels_after:<4} ({self.reduction:.1%} gates removed)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "levels_before": self.levels_before,
            "levels_after": self.levels_after,
            "reduction": self.reduction,
            "passes": [row.to_dict() for row in self.stats],
        }


def optimize(netlist: Netlist,
             passes: Optional[Sequence[PassSpec]] = None,
             fixpoint: bool = True,
             max_iterations: int = 8) -> OptResult:
    """Optimize a netlist through a (default or custom) pass pipeline.

    The input netlist is left untouched; the result carries the per-pass
    statistics both in :attr:`OptResult.stats` and on the returned netlist's
    ``opt_stats`` attribute.
    """
    manager = PassManager(passes, fixpoint=fixpoint,
                          max_iterations=max_iterations)
    gates_before = netlist.num_gates
    levels_before = netlist.logic_levels()
    tracer = get_tracer()
    with tracer.span("optimize", design=netlist.name,
                     gates=gates_before) as span:
        optimized, stats = manager.run(netlist)
        span.set(gates_after=optimized.num_gates,
                 passes=len(stats))
    if tracer.enabled:
        tracer.metrics.counter("opt.passes_run").inc(len(stats))
        tracer.metrics.counter("opt.gates_removed").inc(
            gates_before - optimized.num_gates)
    optimized.opt_stats = stats
    return OptResult(netlist=optimized, stats=stats,
                     gates_before=gates_before, levels_before=levels_before)
