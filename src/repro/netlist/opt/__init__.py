"""Netlist optimization: a composable pass pipeline over the gate-level IR.

Typical use::

    from repro.netlist import elaborate
    from repro.netlist.opt import optimize

    netlist = elaborate(source, top="alu")
    result = optimize(netlist)           # default pipeline, run to fixpoint
    print(result.summary())              # per-pass gate/depth/latency table
    smaller = result.netlist

Every pass preserves the primary input/output interface and flip-flop
names, so any optimized netlist can be formally checked against its source
with :func:`repro.netlist.sat.check_equivalence`.
"""

from .cut import (build_truth, cut_truth, enumerate_cuts, npn_canon,
                  npn_canonical)
from .fraig import (FraigPass, FraigStats, SweepResult, fraig_sweep,
                    fraig_sweep_map)
from .map import LUT, MapResult, MapStats, map_aig
from .rewrite import RewritePass, RewriteStats, rewrite_aig
from .passes import (
    BalancePass,
    ConstPropPass,
    Pass,
    SimplifyPass,
    StrashPass,
    SweepPass,
)
from .pipeline import (
    DEFAULT_PIPELINE,
    OptimizationError,
    OptResult,
    PASS_REGISTRY,
    PassManager,
    PassStats,
    optimize,
    resolve_passes,
)
from .rebuild import Rebuilder, live_set

__all__ = [
    "BalancePass",
    "ConstPropPass",
    "FraigPass",
    "FraigStats",
    "fraig_sweep",
    "fraig_sweep_map",
    "SweepResult",
    "build_truth",
    "cut_truth",
    "enumerate_cuts",
    "npn_canon",
    "npn_canonical",
    "LUT",
    "MapResult",
    "MapStats",
    "map_aig",
    "RewritePass",
    "RewriteStats",
    "rewrite_aig",
    "Pass",
    "SimplifyPass",
    "StrashPass",
    "SweepPass",
    "DEFAULT_PIPELINE",
    "OptimizationError",
    "OptResult",
    "PASS_REGISTRY",
    "PassManager",
    "PassStats",
    "optimize",
    "resolve_passes",
    "Rebuilder",
    "live_set",
]
