"""FRAIG: functionally-reduced AIG construction (SAT sweeping).

Structural hashing merges cones that are *built* the same way; FRAIG
merges cones that *behave* the same way.  The classic recipe (Mishchenko
et al., "FRAIGs: A unifying representation for logic synthesis and
verification"):

1. simulate the AIG under a batch of packed random stimulus
   (:func:`repro.netlist.sim.aig_signatures` — one bitwise op evaluates a
   node across all patterns), giving every node a *signature*;
2. nodes whose signatures match (up to complement) form candidate
   equivalence classes;
3. rebuild the AIG node by node; when a node's class already has a built
   representative, ask the incremental CDCL solver whether the pair can
   differ — **UNSAT merges the node into its representative**, SAT yields
   a distinguishing input assignment that is appended to the stimulus,
   refining every class it splits;
4. repeat until a rebuild completes with no refuted candidates.

All SAT queries share one growing cone encoding and one solver instance
(assumption-gated miters per pair), so learned clauses from early checks
keep paying off in later ones.  Merging is always into an
already-rebuilt literal, so the result stays acyclic, and a candidate is
only merged on proof — signatures guide, SAT decides.

Observability: each sweep opens a ``fraig`` span on the current
:mod:`repro.obs` tracer, with one ``fraig.round`` span per
simulate/rebuild iteration (annotated with its candidate-class count and
proof-batch counters) and a ``fraig.signatures`` span around each packed
re-simulation; the per-round solver's search statistics are accumulated
into :attr:`FraigStats.solver` rather than discarded, so callers (CLI
``--json``, ``BENCH_sat.json``) see the sweep's total SAT effort.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from ...obs import attach_solver_progress, get_tracer
from ..aig import AIG, from_netlist, to_netlist
from ..logic import Netlist
from ..sat.cnf import CNF, aig_lit_sat, encode_aig_cone
from ..sat.proof import ProofLog, check_drat
from ..sat.solver import Solver, SolverStats
from ..sim import aig_signatures
from .passes import Pass


class FraigStats:
    """Counters from one :func:`fraig_sweep` run."""

    def __init__(self) -> None:
        self.rounds = 0
        self.sat_checks = 0
        self.proven = 0
        self.refuted = 0
        self.ands_before = 0
        self.ands_after = 0
        #: Aggregated search statistics of every per-round solver instance.
        self.solver = SolverStats()
        #: DRAT certification counters (``fraig_sweep(certify=True)``):
        #: proofs accepted / rejected by the independent RUP checker, total
        #: learned clauses and DRAT bytes logged, and time spent checking.
        self.proofs_checked = 0
        self.proofs_failed = 0
        self.proof_clauses = 0
        self.proof_bytes = 0
        self.proof_check_seconds = 0.0

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "sat_checks": self.sat_checks,
            "proven": self.proven,
            "refuted": self.refuted,
            "ands_before": self.ands_before,
            "ands_after": self.ands_after,
            "solver": self.solver.to_dict(),
            "proofs_checked": self.proofs_checked,
            "proofs_failed": self.proofs_failed,
            "proof_clauses": self.proof_clauses,
            "proof_bytes": self.proof_bytes,
            "proof_check_seconds": round(self.proof_check_seconds, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FraigStats(rounds={self.rounds}, "
                f"sat_checks={self.sat_checks}, proven={self.proven}, "
                f"refuted={self.refuted}, "
                f"ands={self.ands_before}->{self.ands_after})")


@dataclass
class SweepResult:
    """Everything :func:`fraig_sweep_map` learned about an AIG.

    ``aig`` is the rebuilt graph with every SAT-proven equivalence
    merged.  ``lit_map`` maps *original* node ids to literals of the
    rebuilt graph — callers tracking literals across the sweep (the CEC
    path tracks its miter root pairs) translate with
    ``lit_map[lit >> 1] ^ (lit & 1)``.  ``words`` holds the final packed
    stimulus per original leaf node id (``num_patterns`` bits each): the
    seeded random patterns plus one distinguishing pattern per refuted
    candidate — simulation evidence callers can reuse (the CEC path
    re-checks its root pairs under them and seeds solver phases from
    them).
    """

    aig: AIG
    lit_map: dict[int, int]
    words: dict[int, int]
    num_patterns: int
    stats: FraigStats

    def map_lit(self, lit: int) -> int:
        """Translate an original-AIG literal into the swept AIG."""
        return self.lit_map[lit >> 1] ^ (lit & 1)


def fraig_sweep(aig: AIG, patterns: int = 64, max_rounds: int = 16,
                seed: int = 2022,
                stats: Optional[FraigStats] = None,
                solver_factory=Solver,
                certify: bool = False,
                jobs: int = 1,
                words: Optional[dict[int, int]] = None,
                signatures=None) -> AIG:
    """Rebuild ``aig`` with all SAT-provably-equivalent nodes merged.

    ``patterns`` is the number of random stimulus patterns packed into the
    initial signatures (counterexamples from refuted candidates are
    appended as extra patterns).  ``max_rounds`` bounds the
    simulate/rebuild iteration; every returned AIG is correct regardless —
    merges happen only on UNSAT proofs — later rounds only discover
    *more* merges.  ``solver_factory`` swaps the CDCL engine (the
    benchmark passes the reference solver to measure the old-vs-new
    split); it must provide the incremental API (``ensure_vars`` /
    ``add_clauses`` / ``solve(assumptions=)``).

    ``certify=True`` logs a DRAT proof per round and runs every UNSAT
    (merge-proving) verdict through the independent RUP checker, with
    the assumption literal that gated the query asserted as a unit —
    see :func:`repro.netlist.sat.proof.check_drat`.  Results land in
    ``stats``: ``proofs_checked`` / ``proofs_failed`` counts plus total
    proof clauses/bytes and check time.  Merges are only certified, never
    changed — a rejected proof counts in ``proofs_failed`` and the
    caller decides how loudly to fail.

    ``jobs > 1`` (default solver only) proves each round's merge
    candidates in up to ``jobs`` worker processes instead of one shared
    solver — see :func:`fraig_sweep_map`.

    ``words`` / ``signatures`` let a caller that has *already* simulated
    the graph (the CEC path, a rewrite pipeline that computed packed
    signatures) hand its stimulus and round-1 node signatures in, so the
    sweep's first round skips the resimulation — see
    :func:`fraig_sweep_map`.
    """
    return fraig_sweep_map(aig, patterns=patterns, max_rounds=max_rounds,
                           seed=seed, stats=stats,
                           solver_factory=solver_factory,
                           certify=certify, jobs=jobs,
                           words=words, signatures=signatures).aig


def fraig_sweep_map(aig: AIG, patterns: int = 64, max_rounds: int = 16,
                    seed: int = 2022,
                    stats: Optional[FraigStats] = None,
                    solver_factory=Solver,
                    certify: bool = False,
                    jobs: int = 1,
                    words: Optional[dict[int, int]] = None,
                    signatures=None) -> SweepResult:
    """The class-refinement core behind :func:`fraig_sweep`.

    Same algorithm and parameters, but the full :class:`SweepResult` is
    returned — rebuilt AIG, original-node-to-swept-literal map, and the
    final packed stimulus — so callers that track literals through the
    sweep can reuse it.  The CEC path runs this *inside the shared miter
    AIG* before the top-level solve: internal points the two designs
    implement identically (but with different structure, so hashing
    missed them) merge here, every merge certified the same way FRAIG
    certifies its own, and the final solve sees a collapsed cone.

    With ``jobs > 1`` (and the default solver — a custom
    ``solver_factory`` cannot cross the process boundary) each round's
    candidate proofs run sharded across worker processes
    (:func:`~repro.netlist.sat.partition.solve_sweep_parallel`): the
    round first rebuilds without solving to collect its candidate pairs,
    the workers prove or refute them independently (each on its own
    incremental solver over its shard's cones, per-merge certification
    included), and the proofs feed the ``proven`` cache so the *next*
    rebuild applies the merges.  Merges still happen only on UNSAT
    proofs, so the result is correct regardless of scheduling; deferring
    them by one rebuild can only change how many rounds the fixpoint
    takes.

    ``words`` (a leaf-node-id to packed-stimulus dict holding
    ``patterns`` bits per leaf) replaces the seeded random stimulus, and
    ``signatures`` — valid only alongside ``words`` — must be the
    per-node packed signatures of ``aig`` under exactly that stimulus
    (what :func:`~repro.netlist.sim.aig_signatures` returns).  Round 1
    then reuses them instead of resimulating, so a caller that already
    simulated the graph (the CEC path's stage-1 refutation check) does
    not pay for the same packed evaluation twice.
    """
    if stats is None:
        stats = FraigStats()
    stats.ands_before = aig.num_ands
    tracer = get_tracer()
    rng = random.Random(seed)
    leaves = list(aig.inputs) + list(aig.latches)
    if words is None:
        words = {nid: rng.getrandbits(patterns) for nid in leaves}
        signatures = None
    else:
        # Caller-provided stimulus (``patterns`` bits per leaf); the
        # optional ``signatures`` must be this graph's packed node
        # signatures under exactly these words, in which case round 1
        # reuses them instead of resimulating.
        words = {nid: words.get(nid, 0) for nid in leaves}
    num_patterns = patterns
    #: Proven equivalences at source level: (rep node, node) -> phase,
    #: meaning ``node == rep ^ phase``.  Survives across rounds so a
    #: re-rebuild never re-solves a settled pair.
    proven: dict[tuple[int, int], int] = {}

    if jobs > 1 and solver_factory is Solver:
        return _fraig_sweep_parallel(aig, max_rounds, stats, words,
                                     num_patterns, certify, jobs,
                                     signatures=signatures)

    with tracer.span("fraig", ands=aig.num_ands, patterns=patterns,
                     seed=seed) as sweep_span:
        new = aig
        lit_map: dict[int, int] = {
            nid: nid << 1 for nid in range(aig.num_nodes)}
        for round_no in range(1, max_rounds + 1):
            stats.rounds += 1
            checks_at = stats.sat_checks
            proven_at = stats.proven
            refuted_at = stats.refuted
            round_span = tracer.span("fraig.round", round=round_no,
                                     patterns=num_patterns)
            with round_span:
                mask = (1 << num_patterns) - 1
                if round_no == 1 and signatures is not None:
                    sigs = signatures
                else:
                    with tracer.span("fraig.signatures",
                                     patterns=num_patterns):
                        sigs = aig_signatures(
                            aig,
                            [words[nid] for nid in aig.inputs],
                            [words[nid] for nid in aig.latches],
                            mask,
                        )

                new = AIG(name=aig.name)
                lit_map = {0: 0}
                for nid in aig.inputs:
                    lit_map[nid] = new.add_input(aig.node_name(nid) or
                                                 f"pi_{nid}")
                for nid in aig.latches:
                    lit_map[nid] = new.add_latch(aig.node_name(nid) or
                                                 f"latch_{nid}")

                def mlit(lit: int) -> int:
                    return lit_map[lit >> 1] ^ (lit & 1)

                # Candidate-class representatives keyed by signature
                # normalized to its complement-canonical form; the constant
                # node represents the all-0/all-1 class.
                rep: dict[int, int] = {0: 0}
                phase_of = {0: 0}
                # Lazy incremental solving state over the *new* AIG.
                cnf = CNF()
                solver = solver_factory(0, ())
                attach_solver_progress(solver, tracer)
                proof = None
                if certify:
                    proof = ProofLog()
                    set_proof = getattr(solver, "set_proof", None)
                    if set_proof is not None:
                        set_proof(proof)
                var_map: dict[int, int] = {}
                cex_found = False

                for nid in leaves:
                    sig = sigs[nid]
                    key = min(sig, sig ^ mask)
                    rep.setdefault(key, nid)
                    if rep[key] == nid:
                        phase_of[nid] = 1 if sig != key else 0

                for nid in range(1, aig.num_nodes):
                    if not aig.is_and(nid):
                        continue
                    f0, f1 = aig.fanins(nid)
                    built = new.aig_and(mlit(f0), mlit(f1))
                    lit_map[nid] = built
                    sig = sigs[nid]
                    key = min(sig, sig ^ mask)
                    phase = 1 if sig != key else 0
                    r = rep.get(key)
                    if r is None:
                        rep[key] = nid
                        phase_of[nid] = phase
                        continue
                    if r == nid:
                        continue
                    # Both node and rep normalize to the same canonical
                    # signature; the phases say how each relates to it, so
                    # the node's merge target is the rep's literal XOR the
                    # phase difference.
                    candidate = lit_map[r] ^ phase ^ phase_of[r]
                    if built == candidate:
                        continue  # hashing already merged them
                    cached = proven.get((r, nid))
                    if cached is not None:
                        lit_map[nid] = lit_map[r] ^ cached
                        continue
                    # SAT-check built != candidate on the new AIG, gated by
                    # a fresh assumption literal so refuted pairs don't
                    # pollute later queries.
                    before_clauses = len(cnf.clauses)
                    encode_aig_cone(cnf, new, (built, candidate),
                                    var_map=var_map)
                    a = aig_lit_sat(var_map, built)
                    b = aig_lit_sat(var_map, candidate)
                    gate_var = cnf.new_var()
                    cnf.add_clause(-gate_var, a, b)
                    cnf.add_clause(-gate_var, -a, -b)
                    solver.ensure_vars(cnf.num_vars)
                    # A list slice copies only references and indexes
                    # straight to the tail — islice would re-walk the
                    # ever-growing prefix on every query, quadratic over
                    # the sweep.
                    solver.add_clauses(cnf.clauses[before_clauses:])
                    stats.sat_checks += 1
                    conflicts_before = solver.stats.conflicts
                    result = solver.solve(assumptions=(gate_var,))
                    if not result.satisfiable:
                        stats.proven += 1
                        if tracer.enabled:
                            tracer.metrics.histogram(
                                "fraig.proof_conflicts").observe(
                                solver.stats.conflicts - conflicts_before)
                        if proof is not None:
                            # Certify formula-so-far ∧ gate_var ⊢ ⊥ with
                            # the proof logged across all queries so far
                            # this round (earlier lemmas stay valid: they
                            # are implied by the clauses alone).
                            check_start = time.perf_counter()
                            verdict = check_drat(cnf, proof,
                                                 assumptions=(gate_var,))
                            stats.proof_check_seconds += \
                                time.perf_counter() - check_start
                            if verdict.ok:
                                stats.proofs_checked += 1
                            else:
                                stats.proofs_failed += 1
                        proven[(r, nid)] = phase ^ phase_of[r]
                        lit_map[nid] = candidate
                        continue
                    # Refuted: the model distinguishes the pair — append it
                    # to the stimulus so the next round's signatures split
                    # every class it refutes.
                    stats.refuted += 1
                    cex_found = True
                    assert result.model is not None
                    for old_leaf in leaves:
                        var = var_map.get(lit_map[old_leaf] >> 1)
                        bit = int(result.model.get(var, False)) if var else 0
                        words[old_leaf] |= bit << num_patterns
                    num_patterns += 1

                for nid in aig.latches:
                    if nid in aig._next:
                        new.set_next(lit_map[nid], mlit(aig._next[nid]))
                for name, lit in aig.outputs:
                    new.add_output(name, mlit(lit))
                stats.solver.accumulate(solver.stats)
                if proof is not None:
                    stats.proof_clauses += proof.num_added
                    stats.proof_bytes += proof.size_bytes()
                round_span.set(classes=len(rep),
                               sat_checks=stats.sat_checks - checks_at,
                               proven=stats.proven - proven_at,
                               refuted=stats.refuted - refuted_at)
            if not cex_found:
                break
        # Count the observable cone, not the unique table: every proven
        # merge leaves its superseded node orphaned in the table.
        stats.ands_after = sum(
            1 for nid in new.cone(new.and_roots()) if new.is_and(nid))
        sweep_span.set(rounds=stats.rounds, sat_checks=stats.sat_checks,
                       proven=stats.proven, refuted=stats.refuted,
                       ands_after=stats.ands_after)
        if tracer.enabled:
            tracer.metrics.absorb("fraig", {
                "rounds": stats.rounds, "sat_checks": stats.sat_checks,
                "proven": stats.proven, "refuted": stats.refuted,
            })
            tracer.metrics.absorb("fraig.solver", stats.solver.to_dict())
    return SweepResult(new, lit_map, words, num_patterns, stats)


def _rebuild_and_collect(aig: AIG, sigs, mask: int, leaves: list[int],
                         proven: dict[tuple[int, int], int]
                         ) -> tuple[AIG, dict[int, int],
                                    list[tuple[int, int, int, int, int]]]:
    """One solver-free rebuild pass: apply cached proven merges, collect
    the merge candidates a serial round would SAT-check.

    Returns ``(new, lit_map, candidates)`` with each candidate as
    ``(built_lit, cand_lit, rep, nid, delta)`` — literals over ``new``,
    node ids over ``aig``, ``delta`` the phase to record in ``proven`` on
    an UNSAT verdict.
    """
    new = AIG(name=aig.name)
    lit_map: dict[int, int] = {0: 0}
    for nid in aig.inputs:
        lit_map[nid] = new.add_input(aig.node_name(nid) or f"pi_{nid}")
    for nid in aig.latches:
        lit_map[nid] = new.add_latch(aig.node_name(nid) or f"latch_{nid}")

    def mlit(lit: int) -> int:
        return lit_map[lit >> 1] ^ (lit & 1)

    rep: dict[int, int] = {0: 0}
    phase_of = {0: 0}
    candidates: list[tuple[int, int, int, int, int]] = []
    for nid in leaves:
        sig = sigs[nid]
        key = min(sig, sig ^ mask)
        rep.setdefault(key, nid)
        if rep[key] == nid:
            phase_of[nid] = 1 if sig != key else 0
    for nid in range(1, aig.num_nodes):
        if not aig.is_and(nid):
            continue
        f0, f1 = aig.fanins(nid)
        built = new.aig_and(mlit(f0), mlit(f1))
        lit_map[nid] = built
        sig = sigs[nid]
        key = min(sig, sig ^ mask)
        phase = 1 if sig != key else 0
        r = rep.get(key)
        if r is None:
            rep[key] = nid
            phase_of[nid] = phase
            continue
        if r == nid:
            continue
        candidate = lit_map[r] ^ phase ^ phase_of[r]
        if built == candidate:
            continue
        cached = proven.get((r, nid))
        if cached is not None:
            lit_map[nid] = lit_map[r] ^ cached
            continue
        candidates.append((built, candidate, r, nid,
                           phase ^ phase_of[r]))
    for nid in aig.latches:
        if nid in aig._next:
            new.set_next(lit_map[nid], mlit(aig._next[nid]))
    for name, lit in aig.outputs:
        new.add_output(name, mlit(lit))
    return new, lit_map, candidates


def _fraig_sweep_parallel(aig: AIG, max_rounds: int, stats: FraigStats,
                          words: dict[int, int], num_patterns: int,
                          certify: bool, jobs: int,
                          signatures=None) -> SweepResult:
    """Parallel round loop of :func:`fraig_sweep_map` (``jobs > 1``).

    Each round rebuilds without solving, ships the candidate list to
    :func:`~repro.netlist.sat.partition.solve_sweep_parallel`, folds the
    verdicts back (UNSAT → ``proven`` cache, SAT → stimulus pattern) and
    iterates until a rebuild surfaces no unsettled candidates.
    """
    # Imported lazily, same cycle as the sat package's fraig import.
    from ..sat.partition import solve_sweep_parallel

    tracer = get_tracer()
    leaves = list(aig.inputs) + list(aig.latches)
    leaf_by_name = {
        (aig.node_name(nid) or f"pi_{nid}"): nid for nid in leaves}
    proven: dict[tuple[int, int], int] = {}

    with tracer.span("fraig", ands=aig.num_ands, jobs=jobs,
                     patterns=num_patterns) as sweep_span:
        new = aig
        lit_map: dict[int, int] = {
            nid: nid << 1 for nid in range(aig.num_nodes)}
        dirty = False
        for round_no in range(1, max_rounds + 1):
            stats.rounds += 1
            mask = (1 << num_patterns) - 1
            with tracer.span("fraig.round", round=round_no,
                             patterns=num_patterns,
                             jobs=jobs) as round_span:
                if round_no == 1 and signatures is not None:
                    sigs = signatures
                else:
                    with tracer.span("fraig.signatures",
                                     patterns=num_patterns):
                        sigs = aig_signatures(
                            aig,
                            [words[nid] for nid in aig.inputs],
                            [words[nid] for nid in aig.latches],
                            mask,
                        )
                new, lit_map, cands = _rebuild_and_collect(
                    aig, sigs, mask, leaves, proven)
                dirty = False
                if not cands:
                    round_span.set(sat_checks=0)
                    break
                reply = solve_sweep_parallel(
                    new, [(built, cand) for built, cand, *_ in cands],
                    jobs, certify=certify)
                stats.sat_checks += len(cands)
                stats.solver.accumulate(reply["stats"])
                stats.proofs_checked += reply["proofs_checked"]
                stats.proofs_failed += reply["proofs_failed"]
                stats.proof_clauses += reply["proof_clauses"]
                stats.proof_bytes += reply["proof_bytes"]
                stats.proof_check_seconds += reply["proof_check_seconds"]
                proven_now = refuted_now = 0
                for (built, cand, r, nid, delta), verdict in zip(
                        cands, reply["verdicts"]):
                    if verdict["proven"]:
                        proven[(r, nid)] = delta
                        proven_now += 1
                        dirty = True
                    else:
                        # Distinguishing pattern: extend the stimulus so
                        # next round's signatures split the class.
                        for name, bit in verdict["model"].items():
                            leaf = leaf_by_name.get(name)
                            if leaf is not None and bit:
                                words[leaf] |= 1 << num_patterns
                        num_patterns += 1
                        refuted_now += 1
                stats.proven += proven_now
                stats.refuted += refuted_now
                round_span.set(sat_checks=len(cands), proven=proven_now,
                               refuted=refuted_now,
                               partitions=reply["partitions"])
        if dirty:
            # The loop ended right after a round that proved merges —
            # one more solver-free rebuild applies them.
            mask = (1 << num_patterns) - 1
            sigs = aig_signatures(
                aig,
                [words[nid] for nid in aig.inputs],
                [words[nid] for nid in aig.latches],
                mask,
            )
            new, lit_map, _ = _rebuild_and_collect(aig, sigs, mask,
                                                   leaves, proven)
        stats.ands_after = sum(
            1 for nid in new.cone(new.and_roots()) if new.is_and(nid))
        sweep_span.set(rounds=stats.rounds, sat_checks=stats.sat_checks,
                       proven=stats.proven, refuted=stats.refuted,
                       ands_after=stats.ands_after)
        if tracer.enabled:
            tracer.metrics.absorb("fraig", {
                "rounds": stats.rounds, "sat_checks": stats.sat_checks,
                "proven": stats.proven, "refuted": stats.refuted,
            })
            tracer.metrics.absorb("fraig.solver", stats.solver.to_dict())
    return SweepResult(new, lit_map, words, num_patterns, stats)


class FraigPass(Pass):
    """SAT sweeping: merge functionally equivalent nodes the structural
    hash cannot see (same function, different structure).

    Lowers to the AIG, runs :func:`fraig_sweep`, raises back.  Per-run
    counters are attached to the pass instance as :attr:`fraig_stats` and
    exposed to the pass manager's :class:`~repro.netlist.opt.PassStats`
    rows through :meth:`stats_dict`.
    """

    name = "fraig"

    def __init__(self, patterns: int = 64, max_rounds: int = 16,
                 seed: int = 2022):
        self.patterns = patterns
        self.max_rounds = max_rounds
        self.seed = seed
        self.fraig_stats: Optional[FraigStats] = None

    def stats_dict(self) -> Optional[dict]:
        """The last run's sweep counters (aggregated solver stats
        included), for the ``details`` field of its PassStats row."""
        if self.fraig_stats is None:
            return None
        return self.fraig_stats.to_dict()

    def run(self, netlist: Netlist) -> Netlist:
        self.fraig_stats = FraigStats()
        swept = fraig_sweep(from_netlist(netlist), patterns=self.patterns,
                            max_rounds=self.max_rounds, seed=self.seed,
                            stats=self.fraig_stats)
        result = to_netlist(swept)
        # Same guard as StrashPass: when the sweep finds little to merge,
        # raising overhead must not leave the netlist worse than it came.
        if result.num_gates > netlist.num_gates or \
                result.logic_levels() > netlist.logic_levels():
            return netlist
        return result
