"""k-feasible cut enumeration and NPN canonicalization over the AIG.

This is the shared truth-table kernel behind DAG-aware rewriting
(:mod:`repro.netlist.opt.rewrite`) and the priority-cut LUT mapper
(:mod:`repro.netlist.opt.map`):

* :func:`enumerate_cuts` computes, bottom-up, the k-feasible cuts of every
  node in a cone — each cut a set of *leaf* nodes such that every path from
  the node to the primary inputs passes through a leaf.
* :func:`cut_truth` evaluates a cut's cone with packed *elementary* words
  (:func:`repro.netlist.sim.elementary_words` fed through
  :func:`repro.netlist.sim.packed_eval` — the same word-parallel core that
  drives FRAIG signatures), yielding the node's truth table over the cut
  leaves as a single int.
* :func:`npn_canon` reduces a 4-input truth table to its NPN class
  representative (input permutation x input negation x output negation:
  24 * 16 * 2 = 768 transforms, 222 classes over the 65536 functions) and
  reports the transform that maps the representative back onto the
  function — exactly what a rewriter needs to instantiate a precomputed
  optimal structure for the class over concrete cut-leaf literals.
* :func:`build_truth` materializes an arbitrary <= 6-input truth table
  into an AIG: <= 4 inputs via the precomputed size-optimal NPN structure
  library (:mod:`repro.netlist.opt.npn4`), 5-6 inputs by Shannon
  cofactoring into muxes of library cones.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Optional, Sequence

from ..aig import AIG
from ..sim import elementary_words, packed_eval

__all__ = [
    "enumerate_cuts",
    "cut_cone",
    "cut_truth",
    "npn_canon",
    "npn_canonical",
    "build_truth",
    "truth_to_verilog_bits",
]

_ONES4 = 0xFFFF


# ---------------------------------------------------------------------------
# Cut enumeration
# ---------------------------------------------------------------------------

def _merge_leaves(a: Sequence[int], b: Sequence[int], k: int
                  ) -> Optional[tuple[int, ...]]:
    """Sorted-merge of two ascending leaf tuples; None if the union > k."""
    out: list[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            out.append(x)
            i += 1
        else:
            out.append(y)
            j += 1
        if len(out) > k:
            return None
    out.extend(a[i:])
    out.extend(b[j:])
    if len(out) > k:
        return None
    return tuple(out)


def enumerate_cuts(aig: AIG, k: int = 4, limit: int = 8,
                   nodes: Optional[Sequence[int]] = None
                   ) -> dict[int, list[tuple[int, ...]]]:
    """Bottom-up k-feasible cut sets for every node of a cone.

    ``nodes`` defaults to the live cone of the AIG's outputs/next-state
    roots, in ascending-id (= topological) order.  Each node maps to a
    list of cuts — ascending tuples of leaf node ids — whose first entry
    is always the trivial cut ``(node,)``.  For an AND node the non-trivial
    cuts are the pairwise merges of its fanins' cut sets, deduplicated,
    filtered for domination (a cut whose leaves are a superset of another
    kept cut is redundant) and capped at ``limit`` per node, smallest
    first.  The cap is what makes this a *priority*-cut enumeration: cost
    is linear in ``limit**2`` per node instead of exponential.
    """
    if nodes is None:
        nodes = sorted(aig.cone(aig.and_roots()))
    cuts: dict[int, list[tuple[int, ...]]] = {}
    for nid in nodes:
        if not aig.is_and(nid):
            cuts[nid] = [(nid,)]
            continue
        f0, f1 = aig.fanins(nid)
        c0 = cuts.get(f0 >> 1) or [(f0 >> 1,)]
        c1 = cuts.get(f1 >> 1) or [(f1 >> 1,)]
        merged: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()
        for a in c0:
            for b in c1:
                union = _merge_leaves(a, b, k)
                if union is None or union in seen:
                    continue
                seen.add(union)
                merged.append(union)
        merged.sort(key=len)
        kept: list[tuple[int, ...]] = []
        kept_sets: list[set[int]] = []
        for cand in merged:
            cset = set(cand)
            if any(prev <= cset for prev in kept_sets):
                continue
            kept.append(cand)
            kept_sets.append(cset)
            if len(kept) >= limit:
                break
        cuts[nid] = [(nid,)] + kept
    return cuts


def cut_cone(aig: AIG, root: int, leaves: Iterable[int]) -> list[int]:
    """AND nodes strictly inside the cut's cone, ascending (topological)."""
    boundary = set(leaves)
    cone: set[int] = set()
    stack = [root]
    while stack:
        nid = stack.pop()
        if nid in cone or nid in boundary:
            continue
        cone.add(nid)
        f0, f1 = aig.fanins(nid)
        stack.append(f0 >> 1)
        stack.append(f1 >> 1)
    return sorted(cone)


def cut_truth(aig: AIG, root: int, leaves: Sequence[int],
              cone: Optional[Sequence[int]] = None) -> int:
    """Truth table of ``root`` (positive literal) over the cut ``leaves``.

    Seeds the leaves with elementary words and runs the packed evaluator
    over the cut cone; the root's word is its truth table, one bit per
    assignment of the ``len(leaves)`` variables (leaf ``i`` = variable
    ``i``).  ``cone`` may pass a precomputed :func:`cut_cone` result.
    """
    num_vars = len(leaves)
    mask = (1 << (1 << num_vars)) - 1
    elem = elementary_words(num_vars)
    words = {leaf: elem[i] for i, leaf in enumerate(leaves)}
    if root in words:
        return words[root]
    words[0] = 0
    if cone is None:
        cone = cut_cone(aig, root, leaves)
    packed_eval(aig, words, mask, cone)
    return words[root]


# ---------------------------------------------------------------------------
# NPN canonicalization of 4-input functions
# ---------------------------------------------------------------------------

#: The 384 input transforms (24 permutations x 16 negation masks), stored
#: as 16-entry source-index maps: applying transform ``t`` to a truth
#: table reads result bit ``m`` from source bit ``_NPN_MAPS[t][m]``, i.e.
#: ``T(f)(x0..x3) = f(x_{p(0)} ^ n_0, ..., x_{p(3)} ^ n_3)``.
_NPN_PERMS: list[tuple[int, ...]] = []
_NPN_NEGS: list[int] = []
_NPN_MAPS: list[tuple[int, ...]] = []


def _build_transforms() -> None:
    for perm in permutations(range(4)):
        for neg in range(16):
            m16 = []
            for m in range(16):
                src = 0
                for i in range(4):
                    bit = ((m >> perm[i]) & 1) ^ ((neg >> i) & 1)
                    src |= bit << i
                m16.append(src)
            _NPN_PERMS.append(perm)
            _NPN_NEGS.append(neg)
            _NPN_MAPS.append(tuple(m16))


_build_transforms()


def _apply_map(tt: int, m16: Sequence[int]) -> int:
    out = 0
    for m in range(16):
        if (tt >> m16[m]) & 1:
            out |= 1 << m
    return out


#: Lazy class-closure cache: tt -> (canonical tt, transform index, output
#: negation) such that tt == apply(transform, canon) ^ (out * 0xFFFF).
#: The first lookup in a class computes the canonical form, then fills the
#: cache for *every* member by transforming the representative — so each
#: of the 222 classes pays the 768-transform scan at most twice in total.
_CANON_CACHE: dict[int, tuple[int, int, int]] = {}

#: Per-member alternates: tt -> packed ``t * 2 + out`` transform codes.
#: Distinct transforms reaching the same member instantiate the class
#: structure over the cut leaves in distinct ways — the rewriter probes
#: each for sharing with already-built logic.
_TRANS_LISTS: dict[int, list[int]] = {}
_MAX_TRANSFORMS = 4


def npn_canon(tt: int) -> tuple[int, tuple[int, ...], int, int]:
    """Canonical NPN representative of a 4-input truth table.

    Returns ``(canon, perm, neg, out)`` with the transform mapping the
    representative back onto ``tt``::

        tt(x0, x1, x2, x3) == canon(x_{perm[0]} ^ neg_0, ...,
                                    x_{perm[3]} ^ neg_3) ^ out

    so a structure computing ``canon`` over formal inputs ``v0..v3``
    computes ``tt`` when input ``i`` is fed the literal for
    ``x_{perm[i]}`` complemented by bit ``i`` of ``neg``, with the root
    complemented by ``out``.  The canonical form is the minimum integer
    over all 768 transforms — a true class invariant.
    """
    tt &= _ONES4
    hit = _CANON_CACHE.get(tt)
    if hit is None:
        canon = _ONES4
        for m16 in _NPN_MAPS:
            g = _apply_map(tt, m16)
            if g < canon:
                canon = g
            g ^= _ONES4
            if g < canon:
                canon = g
        setdefault = _CANON_CACHE.setdefault
        lists = _TRANS_LISTS
        for t, m16 in enumerate(_NPN_MAPS):
            g = _apply_map(canon, m16)
            setdefault(g, (canon, t, 0))
            setdefault(g ^ _ONES4, (canon, t, 1))
            lst = lists.get(g)
            if lst is None:
                lists[g] = [t * 2]
            elif len(lst) < _MAX_TRANSFORMS:
                lst.append(t * 2)
            gi = g ^ _ONES4
            lst = lists.get(gi)
            if lst is None:
                lists[gi] = [t * 2 + 1]
            elif len(lst) < _MAX_TRANSFORMS:
                lst.append(t * 2 + 1)
        hit = _CANON_CACHE[tt]
    canon, t, out = hit
    return canon, _NPN_PERMS[t], _NPN_NEGS[t], out


def npn_canonical(tt: int) -> int:
    """Just the canonical representative of ``tt`` (class invariant)."""
    return npn_canon(tt)[0]


def npn_transforms(tt: int) -> list[tuple[tuple[int, ...], int, int]]:
    """Alternate ``(perm, neg, out)`` transforms mapping the canonical
    representative onto ``tt`` (same convention as :func:`npn_canon`).

    Distinct transforms yield functionally identical but structurally
    different instantiations of the class structure — candidate diversity
    for DAG-aware rewriting's sharing probe.  At most
    ``_MAX_TRANSFORMS`` per member are kept during the class fill.
    """
    tt &= _ONES4
    if tt not in _CANON_CACHE:
        npn_canon(tt)
    return [(_NPN_PERMS[code >> 1], _NPN_NEGS[code >> 1], code & 1)
            for code in _TRANS_LISTS[tt]]


# ---------------------------------------------------------------------------
# Truth table -> AIG structure
# ---------------------------------------------------------------------------

def _pad_to_4(tt: int, num_vars: int) -> int:
    """Zero-extend a <4-var truth table to 16 bits by block replication,
    making it a 4-var function that ignores the extra (high) variables."""
    span = 1 << num_vars
    while span < 16:
        tt |= tt << span
        span <<= 1
    return tt & _ONES4


def _build4(aig: AIG, tt: int, input_lits: Sequence[int]) -> int:
    """Instantiate the library structure for ``tt`` over 4 input literals."""
    from .npn4 import NPN4_LIBRARY

    canon, perm, neg, out = npn_canon(tt)
    root, nodes = NPN4_LIBRARY[canon]
    # Library literal encoding: slot 0 = const-false, slots 1-4 = the
    # structure's formal inputs v0..v3, slot 5+i = the i-th AND below.
    # Formal input i of the canonical structure receives x_{perm[i]}^neg_i.
    slots: list[int] = [0]
    slots.extend(input_lits[perm[i]] ^ ((neg >> i) & 1) for i in range(4))

    def resolve(slot_lit: int) -> int:
        return slots[slot_lit >> 1] ^ (slot_lit & 1)

    for l0, l1 in nodes:
        slots.append(aig.aig_and(resolve(l0), resolve(l1)))
    return resolve(root) ^ out


def build_truth(aig: AIG, tt: int, num_vars: int,
                input_lits: Sequence[int]) -> int:
    """Build the ``num_vars``-input function ``tt`` into ``aig``.

    ``input_lits[i]`` is the literal feeding variable ``i``; returns the
    output literal.  Functions of <= 4 inputs instantiate the size-optimal
    NPN library structure; 5- and 6-input functions Shannon-expand on the
    top variable into a mux of two smaller cones (the LUT mapper's k=6
    emission path).
    """
    if num_vars <= 4:
        lits4 = list(input_lits[:num_vars]) + [0] * (4 - num_vars)
        return _build4(aig, _pad_to_4(tt & ((1 << (1 << num_vars)) - 1),
                                      num_vars), lits4)
    half = 1 << (num_vars - 1)
    lo = tt & ((1 << half) - 1)
    hi = (tt >> half) & ((1 << half) - 1)
    if lo == hi:
        return build_truth(aig, lo, num_vars - 1, input_lits)
    f0 = build_truth(aig, lo, num_vars - 1, input_lits)
    f1 = build_truth(aig, hi, num_vars - 1, input_lits)
    return aig.aig_mux(input_lits[num_vars - 1], f0, f1)


def truth_to_verilog_bits(tt: int, num_vars: int) -> str:
    """Render a truth table as a Verilog sized binary literal (MSB first)."""
    span = 1 << num_vars
    bits = format(tt & ((1 << span) - 1), f"0{span}b")
    return f"{span}'b{bits}"
