"""Priority-cut k-LUT technology mapping over the AIG.

The classic depth-then-area mapping flow on top of the shared cut/NPN
kernel (:mod:`repro.netlist.opt.cut`):

1. **Depth pass** — every AND node picks, among its priority cuts, the
   one minimizing LUT-level arrival time (area flow breaks ties); the
   maximum root arrival becomes the mapping's depth target.
2. **Area-flow pass** — required times are propagated backwards through
   the chosen cover; each node then re-picks the cheapest cut by area
   flow (a fanout-discounted estimate of global area) among cuts meeting
   its required time.
3. **Exact-area pass** — the cover is reference-counted at the LUT level
   and each covered node greedily trials its cuts with the incremental
   dereference/re-reference area measure (a cut's exact area = LUTs that
   would vanish if it were deselected), committing strict improvements.

Area recovery is bounded by a depth guarantee: if the refined cover ends
deeper than the depth pass's target, the mapper falls back to the stored
depth-pass cuts, so :attr:`MapResult.depth` never exceeds the
depth-optimal mapping the first pass found.

The result is a LUT network over source-AIG node ids with per-LUT truth
tables.  :meth:`MapResult.to_netlist` re-materializes it as a gate-level
netlist (each LUT rebuilt from its truth table via the NPN structure
library / Shannon decomposition), which flows through the existing
Verilog emitter and is checked by the existing CEC path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...obs import get_tracer
from ..aig import _AND, AIG, to_netlist
from ..logic import Netlist
from .cut import build_truth, cut_truth, enumerate_cuts

__all__ = ["LUT", "MapStats", "MapResult", "map_aig"]

_INF = float("inf")


@dataclass(frozen=True)
class LUT:
    """One mapped LUT: ``output`` computes ``truth`` over ``inputs``.

    All ids are source-AIG node ids; ``truth`` holds ``2**len(inputs)``
    bits, input ``i`` of the cut being truth-table variable ``i``.
    """

    output: int
    inputs: tuple[int, ...]
    truth: int


@dataclass
class MapStats:
    """Counters for one :func:`map_aig` run."""

    k: int = 0
    ands: int = 0
    lut_count: int = 0
    depth: int = 0
    depth_target: int = 0
    area_flow_luts: int = 0
    exact_area_luts: int = 0
    depth_fallback: bool = False

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "ands": self.ands,
            "lut_count": self.lut_count,
            "depth": self.depth,
            "depth_target": self.depth_target,
            "area_flow_luts": self.area_flow_luts,
            "exact_area_luts": self.exact_area_luts,
            "depth_fallback": self.depth_fallback,
        }


@dataclass
class MapResult:
    """A k-LUT cover of the source AIG.

    ``luts`` are in topological (ascending output id) order; ``depth`` is
    the LUT-level depth of the cover; ``stats`` carries the per-pass
    counters including the depth pass's ``depth_target`` the final cover
    is guaranteed not to exceed.
    """

    aig: AIG
    k: int
    luts: list[LUT]
    depth: int
    stats: MapStats

    @property
    def lut_count(self) -> int:
        return len(self.luts)

    def to_netlist(self) -> Netlist:
        """Re-materialize the LUT network as a gate-level netlist.

        Each LUT's truth table is rebuilt into a fresh AIG over its cut
        leaves (NPN library for <=4 inputs, Shannon muxes above), then
        lowered through the standard AIG-to-netlist path — the interface
        (PI/PO/latch names) matches the source, so the result CECs
        against the original design.
        """
        src = self.aig
        out = AIG(src.name)
        lit_map = {0: 0}
        for nid in src.inputs:
            lit_map[nid] = out.add_input(src.node_name(nid))
        for nid in src.latches:
            lit_map[nid] = out.add_latch(src.node_name(nid))
        for lut in self.luts:
            lits = [lit_map[leaf] for leaf in lut.inputs]
            lit_map[lut.output] = build_truth(out, lut.truth,
                                              len(lut.inputs), lits)
        for name, lit in src.outputs:
            out.add_output(name, lit_map[lit >> 1] ^ (lit & 1))
        for qnid in src.latches:
            if qnid in src._next:
                nxt = src._next[qnid]
                out.set_next(lit_map[qnid],
                             lit_map[nxt >> 1] ^ (nxt & 1))
        return to_netlist(out)

    def to_report(self) -> dict:
        return {
            "k": self.k,
            "lut_count": self.lut_count,
            "depth": self.depth,
            "depth_target": self.stats.depth_target,
        }


def _root_nodes(aig: AIG) -> set[int]:
    return {lit >> 1 for lit in aig.and_roots()}


def _cover_of(aig: AIG, best_cut: dict[int, tuple[int, ...]],
              roots: set[int]) -> list[int]:
    """Covered AND nodes (those realized as LUTs), ascending id."""
    kinds = aig._kind
    needed: set[int] = set()
    stack = [nid for nid in roots if kinds[nid] == _AND]
    while stack:
        nid = stack.pop()
        if nid in needed:
            continue
        needed.add(nid)
        for leaf in best_cut[nid]:
            if kinds[leaf] == _AND:
                stack.append(leaf)
    return sorted(needed)


def map_aig(aig: AIG, k: int = 4, cut_limit: int = 8,
            stats: Optional[MapStats] = None) -> MapResult:
    """Map the live cone of ``aig`` into k-input LUTs (2 <= k <= 6)."""
    if not 2 <= k <= 6:
        raise ValueError("LUT size k must be between 2 and 6")
    tracer = get_tracer()
    if stats is None:
        stats = MapStats()
    stats.k = k
    kinds = aig._kind
    live = sorted(aig.cone(aig.and_roots()))
    ands = [nid for nid in live if kinds[nid] == _AND]
    stats.ands = len(ands)
    roots = _root_nodes(aig)

    with tracer.span("map", k=k, ands=len(ands)):
        cuts = enumerate_cuts(aig, k, cut_limit, live)
        # Structural fanout counts discount shared logic in area flow.
        refs: dict[int, int] = {nid: 0 for nid in live}
        refs[0] = 0
        for nid in ands:
            refs[aig._fanin0[nid] >> 1] += 1
            refs[aig._fanin1[nid] >> 1] += 1
        for lit in aig.and_roots():
            refs[lit >> 1] += 1

        arrival: dict[int, int] = {nid: 0 for nid in live
                                   if kinds[nid] != _AND}
        arrival[0] = 0
        flow: dict[int, float] = {nid: 0.0 for nid in arrival}
        best_cut: dict[int, tuple[int, ...]] = {}

        # -- pass 1: depth-oriented ------------------------------------
        with tracer.span("map.depth"):
            for nid in ands:
                best = None
                for cut in cuts[nid][1:]:
                    arr = 1 + max(arrival[leaf] for leaf in cut)
                    af = 1.0 + sum(flow[leaf] for leaf in cut)
                    if best is None or (arr, af) < (best[0], best[1]):
                        best = (arr, af, cut)
                arr, af, cut = best
                best_cut[nid] = cut
                arrival[nid] = arr
                flow[nid] = af / max(1, refs[nid])
        depth_target = max((arrival[nid] for nid in roots), default=0)
        stats.depth_target = depth_target
        depth_cuts = dict(best_cut)
        cover = _cover_of(aig, best_cut, roots)

        def required_times() -> dict[int, float]:
            req: dict[int, float] = {nid: depth_target for nid in roots}
            for nid in reversed(cover):
                r = req.get(nid, depth_target)
                for leaf in best_cut[nid]:
                    limit = r - 1
                    if req.get(leaf, _INF) > limit:
                        req[leaf] = limit
            return req

        # -- pass 2: area flow under required times --------------------
        with tracer.span("map.area_flow"):
            req = required_times()
            for nid in ands:
                need = req.get(nid, _INF)
                best = None
                fallback = None
                for cut in cuts[nid][1:]:
                    arr = 1 + max(arrival[leaf] for leaf in cut)
                    af = 1.0 + sum(flow[leaf] for leaf in cut)
                    if fallback is None or (arr, af) < fallback[:2]:
                        fallback = (arr, af, cut)
                    if arr > need:
                        continue
                    if best is None or (af, arr) < (best[0], best[1]):
                        best = (af, arr, cut)
                if best is None:
                    arr, af, cut = fallback
                else:
                    af, arr, cut = best
                best_cut[nid] = cut
                arrival[nid] = arr
                flow[nid] = af / max(1, refs[nid])
            cover = _cover_of(aig, best_cut, roots)
            stats.area_flow_luts = len(cover)

        # -- pass 3: exact area ----------------------------------------
        with tracer.span("map.exact_area"):
            map_refs: dict[int, int] = {nid: 0 for nid in live}
            for nid in roots:
                if kinds[nid] == _AND:
                    map_refs[nid] += 1
            for nid in cover:
                for leaf in best_cut[nid]:
                    map_refs[leaf] += 1

            def cut_ref(cut: tuple[int, ...]) -> int:
                area = 1
                for leaf in cut:
                    if kinds[leaf] == _AND:
                        if map_refs[leaf] == 0:
                            area += cut_ref(best_cut[leaf])
                        map_refs[leaf] += 1
                return area

            def cut_deref(cut: tuple[int, ...]) -> int:
                area = 1
                for leaf in cut:
                    if kinds[leaf] == _AND:
                        map_refs[leaf] -= 1
                        if map_refs[leaf] == 0:
                            area += cut_deref(best_cut[leaf])
                return area

            req = required_times()
            for nid in reversed(cover):
                if map_refs[nid] == 0:
                    continue
                need = req.get(nid, _INF)
                current = best_cut[nid]
                old_area = cut_deref(current)
                best = (old_area, 1 + max(arrival[leaf]
                                          for leaf in current), current)
                for cut in cuts[nid][1:]:
                    if cut == current:
                        continue
                    arr = 1 + max(arrival[leaf] for leaf in cut)
                    if arr > need:
                        continue
                    area = cut_ref(cut)
                    cut_deref(cut)
                    if (area, arr) < (best[0], best[1]):
                        best = (area, arr, cut)
                _, arr, chosen = best
                best_cut[nid] = chosen
                arrival[nid] = arr
                cut_ref(chosen)
            cover = _cover_of(aig, best_cut, roots)
            stats.exact_area_luts = len(cover)

        # -- depth guarantee -------------------------------------------
        for nid in ands:
            if nid in best_cut:
                arrival[nid] = 1 + max(arrival[leaf]
                                       for leaf in best_cut[nid])
        depth = max((arrival[nid] for nid in roots), default=0)
        if depth > depth_target:
            best_cut = depth_cuts
            cover = _cover_of(aig, best_cut, roots)
            for nid in ands:
                arrival[nid] = 1 + max(arrival[leaf]
                                       for leaf in best_cut[nid])
            depth = max((arrival[nid] for nid in roots), default=0)
            stats.depth_fallback = True

        luts = [LUT(nid, best_cut[nid],
                    cut_truth(aig, nid, best_cut[nid]))
                for nid in cover]
        stats.lut_count = len(luts)
        stats.depth = depth
    return MapResult(aig=aig, k=k, luts=luts, depth=depth, stats=stats)
