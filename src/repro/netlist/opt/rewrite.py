"""DAG-aware rewriting: replace 4-cut cones with optimal NPN structures.

The classic ABC ``rewrite`` pass on this repo's hash-consed AIG.  For
every AND node, in topological order, the pass enumerates its 4-feasible
cuts (:func:`repro.netlist.opt.cut.enumerate_cuts`), computes each cut's
truth table with the packed simulator, and asks whether instantiating the
precomputed size-optimal structure for the function's NPN class would
beat rebuilding the node as-is:

* *saved* is the size of the node's maximal fanout-free cone w.r.t. the
  cut — the nodes that die with it, measured by the standard
  dereference/re-reference walk over live fanout counts;
* *cost* is the number of genuinely new AND nodes the replacement would
  insert, probed against the output graph's unique table *without*
  inserting anything — logic already built (by earlier replacements, by
  sharing with untouched cones) is free, which is what makes the pass
  DAG-aware rather than tree-local.

On top of the structural probe, every sweep keeps a *functional
cut-sweep table*: each committed node registers, for every cut evaluated
on it, the key (NPN class of the cut function, concrete literals feeding
the canonical inputs) mapped to its output literal.  A later node whose
cut hits an existing key computes the *same function of the same
literals* through a possibly completely different structure — it merges
into the committed cone at zero cost, harvesting its whole MFFC.  This
catches functional redundancy structural hashing can never see, without
any SAT.

A replacement is committed when it strictly saves nodes, or saves nothing
but strictly reduces the node's level (zero-gain depth rescue).  One
rewrite sweep is a single topological rebuild; :func:`rewrite_aig` runs
sweeps to a fixpoint and compacts the survivor cone.  The pass is
registered as ``rewrite`` in the default :func:`repro.netlist.opt.optimize`
pipeline ahead of ``fraig``, so SAT sweeping sees the smaller graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...obs import get_tracer
from ..aig import _AND, AIG, from_netlist, to_netlist
from ..logic import Netlist
from .cut import cut_truth, enumerate_cuts, npn_canon, npn_transforms
from .npn4 import NPN4_LIBRARY
from .passes import Pass

__all__ = ["RewriteStats", "rewrite_aig", "RewritePass"]


@dataclass
class RewriteStats:
    """Counters for one :func:`rewrite_aig` run (all sweeps summed)."""

    ands_before: int = 0
    ands_after: int = 0
    sweeps: int = 0
    cuts_evaluated: int = 0
    replacements: int = 0
    zero_gain_depth: int = 0
    nodes_saved: int = 0
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "ands_before": self.ands_before,
            "ands_after": self.ands_after,
            "sweeps": self.sweeps,
            "cuts_evaluated": self.cuts_evaluated,
            "replacements": self.replacements,
            "zero_gain_depth": self.zero_gain_depth,
            "nodes_saved": self.nodes_saved,
        }


def _live_ands(aig: AIG) -> list[int]:
    """Live AND nodes (reachable from outputs/next-states), ascending."""
    return [nid for nid in sorted(aig.cone(aig.and_roots()))
            if aig.is_and(nid)]


def _deref_cone(aig: AIG, refs: dict[int, int], nid: int,
                leaves: set[int], stop: set[int]) -> int:
    """Release ``nid``'s fanin references; returns the MFFC size.

    The recursive edge walk of Abc_NodeDeref: an AND fanin whose count
    drops to zero dies with the cone and is descended into, unless it is
    a cut leaf or an already-replaced node (whose old fanins were released
    when it was rewritten).
    """
    size = 1
    for fl in (aig._fanin0[nid], aig._fanin1[nid]):
        fn = fl >> 1
        refs[fn] -= 1
        if refs[fn] == 0 and aig._kind[fn] == _AND \
                and fn not in leaves and fn not in stop:
            size += _deref_cone(aig, refs, fn, leaves, stop)
    return size


def _ref_cone(aig: AIG, refs: dict[int, int], nid: int,
              leaves: set[int], stop: set[int]) -> int:
    """Undo :func:`_deref_cone` (reference counts restored exactly)."""
    size = 1
    for fl in (aig._fanin0[nid], aig._fanin1[nid]):
        fn = fl >> 1
        if refs[fn] == 0 and aig._kind[fn] == _AND \
                and fn not in leaves and fn not in stop:
            size += _ref_cone(aig, refs, fn, leaves, stop)
        refs[fn] += 1
    return size


#: Virtual literals for not-yet-inserted nodes during a cost probe start
#: far above any real literal (node ids only grow by insertion).
_VIRT_BASE = 1 << 40


def _probe_structure(new: AIG, levels: dict[int, int], root: int,
                     nodes: tuple, slots: list[int]
                     ) -> tuple[int, int, Optional[int]]:
    """Dry-run a library structure against ``new``'s unique table.

    Mirrors :meth:`AIG.aig_and`'s folding exactly but inserts nothing:
    structure nodes that fold away or already exist are free, anything
    else becomes a virtual literal costing one node.  Returns
    ``(cost, level, real_root_lit)`` where ``real_root_lit`` is the
    concrete output literal when the whole structure resolved to existing
    logic (cost 0), else None.
    """
    table = new._table
    vtable: dict[tuple[int, int], int] = {}
    vlevel: dict[int, int] = {}
    vals = slots[:]
    cost = 0
    vnext = _VIRT_BASE
    for l0, l1 in nodes:
        a = vals[l0 >> 1] ^ (l0 & 1)
        b = vals[l1 >> 1] ^ (l1 & 1)
        if a == b:
            r = a
        elif a == (b ^ 1) or a == 0 or b == 0:
            r = 0
        elif a == 1:
            r = b
        elif b == 1:
            r = a
        else:
            key = (a, b) if a < b else (b, a)
            r = vtable.get(key)
            if r is None and key[1] < _VIRT_BASE:
                r = table.get(key)
            if r is None:
                r = vnext
                vnext += 2
                cost += 1
                la = vlevel.get(a >> 1)
                if la is None:
                    la = levels.get(a >> 1, 0)
                lb = vlevel.get(b >> 1)
                if lb is None:
                    lb = levels.get(b >> 1, 0)
                vlevel[r >> 1] = 1 + (la if la >= lb else lb)
            vtable[key] = r
        vals.append(r)
    out = vals[root >> 1] ^ (root & 1)
    onid = out >> 1
    olevel = vlevel.get(onid)
    if olevel is None:
        olevel = levels.get(onid, 0)
    return cost, olevel, (out if out < _VIRT_BASE else None)


def _build_structure(new: AIG, levels: dict[int, int], root: int,
                     nodes: tuple, slots: list[int]) -> int:
    """Actually insert a library structure; keeps ``levels`` current."""
    vals = slots[:]
    for l0, l1 in nodes:
        a = vals[l0 >> 1] ^ (l0 & 1)
        b = vals[l1 >> 1] ^ (l1 & 1)
        r = new.aig_and(a, b)
        nid = r >> 1
        if nid not in levels:
            f0, f1 = new.fanins(nid)
            la = levels.get(f0 >> 1, 0)
            lb = levels.get(f1 >> 1, 0)
            levels[nid] = 1 + (la if la >= lb else lb)
        vals.append(r)
    return vals[root >> 1] ^ (root & 1)


def _sweep(aig: AIG, cut_limit: int, stats: RewriteStats,
           zero_cost: bool = False) -> AIG:
    """One topological rewrite-and-rebuild sweep; returns the new AIG
    (its table may hold garbage — callers compact via :func:`_copy_live`)."""
    live = sorted(aig.cone(aig.and_roots()))
    refs: dict[int, int] = {nid: 0 for nid in live}
    refs[0] = 0
    kinds = aig._kind
    for nid in live:
        if kinds[nid] == _AND:
            refs[aig._fanin0[nid] >> 1] += 1
            refs[aig._fanin1[nid] >> 1] += 1
    for lit in aig.and_roots():
        refs[lit >> 1] += 1

    cuts = enumerate_cuts(aig, 4, cut_limit, live)
    new = AIG(aig.name)
    levels: dict[int, int] = {0: 0}
    lit_map: dict[int, int] = {0: 0}
    for nid in aig.inputs:
        lit = new.add_input(aig.node_name(nid))
        lit_map[nid] = lit
        levels[lit >> 1] = 0
    for nid in aig.latches:
        lit = new.add_latch(aig.node_name(nid))
        lit_map[nid] = lit
        levels[lit >> 1] = 0

    replaced: set[int] = set()
    # Functional cut-sweep table: (NPN canon, concrete literals feeding
    # the canonical inputs) -> committed literal computing the canonical
    # function of those literals.  A hit means a functionally identical
    # cone (possibly structured completely differently) already exists in
    # the output graph, so the node merges into it at zero cost.
    func_map: dict[tuple[int, tuple[int, int, int, int]], int] = {}
    for nid in live:
        if kinds[nid] != _AND:
            continue
        f0 = aig._fanin0[nid]
        f1 = aig._fanin1[nid]
        m0 = lit_map[f0 >> 1] ^ (f0 & 1)
        m1 = lit_map[f1 >> 1] ^ (f1 & 1)
        # Baseline: rebuild the node as-is.  Probing it through a
        # one-node pseudo-structure reuses the exact fold mirror.
        d_cost, d_level, d_lit = _probe_structure(
            new, levels, 10, ((2, 4),), [0, m0, m1, 0, 0])
        d_gain = 1 - d_cost

        best = None
        cut_keys: list[tuple[int, tuple[int, int, int, int], int]] = []
        for cut in cuts[nid][1:]:
            if len(cut) < 2:
                continue
            stats.cuts_evaluated += 1
            leaves = set(cut)
            saved = _deref_cone(aig, refs, nid, leaves, replaced)
            _ref_cone(aig, refs, nid, leaves, replaced)
            tt = cut_truth(aig, nid, cut)
            tt4 = tt if len(cut) == 4 else _pad(tt, len(cut))
            canon = npn_canon(tt4)[0]
            lib_root, lib_nodes = NPN4_LIBRARY[canon]
            leaf_lits = [lit_map[leaf] for leaf in cut]
            leaf_lits += [0] * (4 - len(leaf_lits))
            # Every cached transform instantiates the class structure
            # differently over the same leaves; each is probed for
            # sharing with logic the rebuild has already committed, and
            # each yields a functional key for the cut-sweep table.
            for perm, neg, out in npn_transforms(tt4):
                inputs = (leaf_lits[perm[0]] ^ (neg & 1),
                          leaf_lits[perm[1]] ^ ((neg >> 1) & 1),
                          leaf_lits[perm[2]] ^ ((neg >> 2) & 1),
                          leaf_lits[perm[3]] ^ ((neg >> 3) & 1))
                cut_keys.append((canon, inputs, out))
                hit = func_map.get((canon, inputs))
                if hit is not None:
                    # A committed cone already computes this function of
                    # these exact literals: merge for free, the whole
                    # MFFC is the gain.
                    gain = saved
                    level = levels.get(hit >> 1, 0)
                    cand = (gain, level, cut, 0, (), [0], hit ^ out)
                else:
                    root = lib_root ^ out
                    slots = [0, *inputs]
                    cost, level, real = _probe_structure(
                        new, levels, root, lib_nodes, slots)
                    gain = saved - cost
                    cand = (gain, level, cut, root, lib_nodes, slots, real)
                if gain < d_gain or (gain == d_gain and level > d_level) or \
                        (gain == d_gain and level == d_level
                         and not zero_cost):
                    continue
                if best is None or gain > best[0] or \
                        (gain == best[0] and level < best[1]):
                    best = cand

        if best is None:
            lit_map[nid] = _build_structure(new, levels, 10, ((2, 4),),
                                            [0, m0, m1, 0, 0])
        else:
            gain, level, cut, root, nodes, slots, real = best
            stats.replacements += 1
            if gain > d_gain:
                stats.nodes_saved += gain - d_gain
            else:
                stats.zero_gain_depth += 1
            leaves = set(cut)
            _deref_cone(aig, refs, nid, leaves, replaced)
            for leaf in cut:
                refs[leaf] += 1
            replaced.add(nid)
            if real is not None:
                lit_map[nid] = real
            else:
                lit_map[nid] = _build_structure(new, levels, root, nodes,
                                                slots)
        # Register every evaluated cut's function of the final literal in
        # the sweep table so later nodes can merge into this cone.
        final = lit_map[nid]
        for canon, inputs, out in cut_keys:
            func_map.setdefault((canon, inputs), final ^ out)

    for name, lit in aig.outputs:
        new.add_output(name, lit_map[lit >> 1] ^ (lit & 1))
    for qnid in aig.latches:
        if qnid in aig._next:
            nxt = aig._next[qnid]
            new.set_next(lit_map[qnid], lit_map[nxt >> 1] ^ (nxt & 1))
    return new


def _pad(tt: int, num_vars: int) -> int:
    span = 1 << num_vars
    tt &= (1 << span) - 1
    while span < 16:
        tt |= tt << span
        span <<= 1
    return tt


def _copy_live(aig: AIG) -> AIG:
    """Compact: copy only the live cone into a fresh AIG (drops the
    garbage that probing-then-rebuilding leaves in the unique table)."""
    out = AIG(aig.name)
    lit_map = {0: 0}
    for nid in aig.inputs:
        lit_map[nid] = out.add_input(aig.node_name(nid))
    for nid in aig.latches:
        lit_map[nid] = out.add_latch(aig.node_name(nid))
    for nid in sorted(aig.cone(aig.and_roots())):
        if aig.is_and(nid):
            f0, f1 = aig.fanins(nid)
            lit_map[nid] = out.aig_and(lit_map[f0 >> 1] ^ (f0 & 1),
                                       lit_map[f1 >> 1] ^ (f1 & 1))
    for name, lit in aig.outputs:
        out.add_output(name, lit_map[lit >> 1] ^ (lit & 1))
    for qnid in aig.latches:
        if qnid in aig._next:
            nxt = aig._next[qnid]
            out.set_next(lit_map[qnid], lit_map[nxt >> 1] ^ (nxt & 1))
    return out


def rewrite_aig(aig: AIG, cut_limit: int = 8, max_sweeps: int = 8,
                stats: Optional[RewriteStats] = None,
                zero_cost: bool = False) -> AIG:
    """Run rewrite sweeps to a fixpoint and return the compacted result.

    Each sweep rebuilds the live cone once (see :func:`_sweep`); sweeps
    repeat while the live AND count strictly improves, up to
    ``max_sweeps``.  Purely structural — no SAT calls — so the cost is a
    small constant factor over plain strashing.  ``zero_cost=True``
    additionally commits replacements that change neither size nor
    level, diversifying structure (useful ahead of mapping) at the cost
    of extra churn per sweep.
    """
    tracer = get_tracer()
    if stats is None:
        stats = RewriteStats()
    stats.ands_before = len(_live_ands(aig))
    current = aig
    count = stats.ands_before
    with tracer.span("rewrite", ands_before=count):
        for _ in range(max_sweeps):
            stats.sweeps += 1
            with tracer.span("rewrite.sweep"):
                swept = _copy_live(_sweep(current, cut_limit, stats,
                                          zero_cost=zero_cost))
            new_count = len(_live_ands(swept))
            if new_count >= count:
                if new_count == count:
                    current = swept
                break
            current, count = swept, new_count
    stats.ands_after = count
    return current


class RewritePass(Pass):
    """DAG-aware 4-cut rewriting against the precomputed NPN library.

    Lowers to the AIG, runs :func:`rewrite_aig` to a fixpoint, raises
    back.  Like the other AIG round-trip passes it carries a never-worse
    guard: if rewriting (plus the netlist round trip) fails to improve
    the gate count or depth, the input netlist is returned unchanged.
    """

    name = "rewrite"

    def __init__(self, cut_limit: int = 8, max_sweeps: int = 8):
        self.cut_limit = cut_limit
        self.max_sweeps = max_sweeps
        self.rewrite_stats: Optional[RewriteStats] = None

    def stats_dict(self) -> Optional[dict]:
        if self.rewrite_stats is None:
            return None
        return self.rewrite_stats.to_dict()

    def run(self, netlist: Netlist) -> Netlist:
        self.rewrite_stats = RewriteStats()
        rewritten = rewrite_aig(from_netlist(netlist),
                                cut_limit=self.cut_limit,
                                max_sweeps=self.max_sweeps,
                                stats=self.rewrite_stats)
        result = to_netlist(rewritten)
        if result.num_gates > netlist.num_gates or \
                result.logic_levels() > netlist.logic_levels():
            return netlist
        return result
