"""The optimization passes.

Every pass is a :class:`Pass` with a ``run(netlist) -> Netlist`` method.
:class:`SimplifyPass`, :class:`BalancePass` and :class:`SweepPass` drive a
:class:`~repro.netlist.opt.rebuild.Rebuilder` over the live cone;
:class:`ConstPropPass` and :class:`StrashPass` are thin round-trips through
the canonical AIG (:mod:`repro.netlist.aig`), whose hash-consing
constructor performs constant folding, identity rewriting and structural
hashing on every node it creates.  The stock passes:

* :class:`ConstPropPass` / :class:`StrashPass` — lower to the AIG and
  raise back: constants propagate, double inverters cancel, duplicate and
  complementary operands fold, and structurally identical cones merge in
  the unique table — global common-subexpression elimination for free;
* :class:`SimplifyPass` — gate-level identity rewrites that preserve gate
  types: double inverters, duplicate/complementary operands,
  mux-to-xor/and/or strength reduction;
* :class:`BalancePass` — rebuilds single-fanout chains of two-input
  ``AND``/``OR``/``XOR`` gates as depth-minimal trees (lowest-level operands
  pair first), shortening the critical path without duplicating logic;
* :class:`SweepPass` — the identity rebuild: drops everything outside the
  output cone (dead gates, dead flip-flops).

:class:`FraigPass` (SAT sweeping on the AIG) lives in
:mod:`repro.netlist.opt.fraig`.

All passes preserve the primary input/output interface and flip-flop names,
which is what lets :func:`repro.netlist.sat.check_equivalence` match the
optimized netlist against the original.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..aig import from_netlist, to_netlist
from ..logic import Gate, GateType, Netlist
from .rebuild import Rebuilder, identity_builder

#: Associative two-input chain types the balance pass restructures.
BALANCED_TYPES = {GateType.AND, GateType.OR, GateType.XOR}

_AND_FAMILY = {GateType.AND: False, GateType.NAND: True}
_OR_FAMILY = {GateType.OR: False, GateType.NOR: True}
_XOR_FAMILY = {GateType.XOR: False, GateType.XNOR: True}


class Pass:
    """Base class: a named netlist-to-netlist transformation."""

    name = "pass"

    def run(self, netlist: Netlist) -> Netlist:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Shared folding helpers (all inspect gates of the *result* netlist)
# ---------------------------------------------------------------------------


def _cval(rb: Rebuilder, net: int) -> Optional[int]:
    gtype = rb.gtype(net)
    if gtype == GateType.CONST0:
        return 0
    if gtype == GateType.CONST1:
        return 1
    return None


def _const(rb: Rebuilder, value: int) -> int:
    return rb.const1() if value else rb.const0()


def _not_operand(rb: Rebuilder, net: int) -> Optional[int]:
    """If ``net`` is an inverter in the result netlist, its operand."""
    gate = rb.result.gate(net)
    if gate.gtype == GateType.NOT:
        return gate.fanins[0]
    return None


def _emit_not(rb: Rebuilder, net: int, name: Optional[str] = None) -> int:
    """Inverter with constant and double-inverter folding."""
    value = _cval(rb, net)
    if value is not None:
        return _const(rb, 1 - value)
    operand = _not_operand(rb, net)
    if operand is not None:
        return operand
    return rb.emit(GateType.NOT, (net,), name=name)


def _fold_and_or(rb: Rebuilder, gtype: GateType, fanins: list[int],
                 dedup: bool) -> tuple[list[int], Optional[int], bool]:
    """Fold an AND/OR-family operand list.

    Returns ``(operands, forced, invert)``: either ``forced`` is a net id
    that already implements the whole gate, or ``operands`` is the reduced
    operand list and ``invert`` says whether the result must be inverted
    (NAND/NOR).  With ``dedup`` duplicate operands collapse and a
    complementary pair forces the dominating constant.
    """
    invert = _AND_FAMILY.get(gtype)
    if invert is None:
        invert = _OR_FAMILY[gtype]
        identity, dominating = 0, 1
    else:
        identity, dominating = 1, 0
    operands: list[int] = []
    seen: set[int] = set()
    for net in fanins:
        value = _cval(rb, net)
        if value == identity:
            continue
        if value == dominating:
            return [], _const(rb, dominating ^ (1 if invert else 0)), False
        if dedup:
            if net in seen:
                continue
            operand = _not_operand(rb, net)
            if operand is not None and operand in seen:
                return [], _const(rb, dominating ^ (1 if invert else 0)), False
            if any(_not_operand(rb, prev) == net for prev in operands):
                return [], _const(rb, dominating ^ (1 if invert else 0)), False
            seen.add(net)
        operands.append(net)
    if not operands:
        return [], _const(rb, identity ^ (1 if invert else 0)), False
    return operands, None, invert


def _fold_xor(rb: Rebuilder, gtype: GateType, fanins: list[int],
              dedup: bool) -> tuple[list[int], Optional[int], bool]:
    """Fold an XOR/XNOR operand list (same contract as :func:`_fold_and_or`).

    Constants fold into the inversion parity; with ``dedup`` duplicate
    operands cancel pairwise and a complementary pair contributes a fixed 1.
    """
    invert = _XOR_FAMILY[gtype]
    operands: list[int] = []
    for net in fanins:
        value = _cval(rb, net)
        if value is not None:
            invert ^= bool(value)
            continue
        if dedup and net in operands:
            operands.remove(net)
            continue
        operands.append(net)
    if dedup:
        changed = True
        while changed:
            changed = False
            for net in operands:
                operand = _not_operand(rb, net)
                if operand is not None and operand in operands:
                    operands.remove(net)
                    operands.remove(operand)
                    invert ^= True
                    changed = True
                    break
    if not operands:
        return [], _const(rb, 1 if invert else 0), False
    return operands, None, invert


def _fold_mux(rb: Rebuilder, select: int, data0: int,
              data1: int) -> Optional[int]:
    """Mux folds that never add gates; ``None`` when the mux must stay."""
    sel_value = _cval(rb, select)
    if sel_value is not None:
        return data1 if sel_value else data0
    if data0 == data1:
        return data0
    if _cval(rb, data0) == 0 and _cval(rb, data1) == 1:
        return select
    if _cval(rb, data0) == 1 and _cval(rb, data1) == 0:
        return _emit_not(rb, select)
    return None


def _finish_chain(rb: Rebuilder, gtype: GateType, operands: list[int],
                  invert: bool, name: Optional[str]) -> int:
    """Emit a reduced operand list as one gate (plus inverter if needed)."""
    if len(operands) == 1:
        base = operands[0]
    else:
        base = rb.emit(gtype, tuple(operands),
                       name=None if invert else name)
    return _emit_not(rb, base, name=name) if invert else base


# ---------------------------------------------------------------------------
# Constant propagation / structural hashing: AIG round-trips
# ---------------------------------------------------------------------------


class StrashPass(Pass):
    """Structural hashing: a round-trip through the canonical AIG.

    Lowering re-creates every live cone through
    :meth:`~repro.netlist.aig.AIG.aig_and`, whose unique table interns each
    node — so structurally identical cones merge, constants propagate, and
    duplicate/complementary operands fold, all in one pass.  Raising
    re-derives XOR/MUX gates and absorbs complement edges into gate
    variants, so the result stays in familiar gate-level vocabulary.
    """

    name = "strash"

    def run(self, netlist: Netlist) -> Netlist:
        result = to_netlist(from_netlist(netlist))
        # The AIG is canonical, not minimal: on rare mux/shift-heavy
        # structures raising costs a few gates over the source vocabulary.
        # An optimization pass must never make things worse, so keep the
        # input when the round-trip doesn't pay (ties take the canonical
        # form — it may still have merged or swept something).
        if result.num_gates > netlist.num_gates or \
                result.logic_levels() > netlist.logic_levels():
            return netlist
        return result


class ConstPropPass(StrashPass):
    """Constant propagation and folding through every live gate.

    Constant folding is built into the AIG constructor, so this is the
    same round-trip as :class:`StrashPass` — the name survives for
    pipelines and CLI ``--passes`` specs that request the classic pass
    vocabulary.
    """

    name = "constprop"


# ---------------------------------------------------------------------------
# Identity simplification
# ---------------------------------------------------------------------------


class SimplifyPass(Pass):
    """Double inverters, duplicate/complementary operands, mux rewrites."""

    name = "simplify"

    def run(self, netlist: Netlist) -> Netlist:
        def build(rb: Rebuilder, gate: Gate,
                  fanins: list[Optional[int]]) -> int:
            gtype = gate.gtype
            if gtype == GateType.BUF:
                return fanins[0]
            if gtype == GateType.NOT:
                return _emit_not(rb, fanins[0], name=gate.name)
            if gtype in _AND_FAMILY or gtype in _OR_FAMILY:
                base = GateType.AND if gtype in _AND_FAMILY else GateType.OR
                operands, forced, invert = _fold_and_or(rb, gtype, fanins,
                                                        dedup=True)
                if forced is not None:
                    return forced
                if len(operands) == len(fanins):
                    # Nothing folded — keep NAND/NOR rather than
                    # decomposing into base op + inverter.
                    return rb.emit(gtype, tuple(operands), name=gate.name)
                return _finish_chain(rb, base, operands, invert, gate.name)
            if gtype in _XOR_FAMILY:
                operands, forced, invert = _fold_xor(rb, gtype, fanins,
                                                     dedup=True)
                if forced is not None:
                    return forced
                if len(operands) == len(fanins) and \
                        invert == (gtype == GateType.XNOR):
                    return rb.emit(gtype, tuple(operands), name=gate.name)
                return _finish_chain(rb, GateType.XOR, operands, invert,
                                     gate.name)
            if gtype == GateType.MUX:
                return self._build_mux(rb, gate, fanins)
            return rb.emit(gtype, tuple(fanins), name=gate.name)

        return Rebuilder(netlist).run(build)

    @staticmethod
    def _build_mux(rb: Rebuilder, gate: Gate,
                   fanins: list[Optional[int]]) -> int:
        select, data0, data1 = fanins
        operand = _not_operand(rb, select)
        if operand is not None:
            # mux(~s, d0, d1) == mux(s, d1, d0)
            select, data0, data1 = operand, data1, data0
        folded = _fold_mux(rb, select, data0, data1)
        if folded is not None:
            return folded
        if _cval(rb, data0) == 0:
            return rb.emit(GateType.AND, (select, data1), name=gate.name)
        if _cval(rb, data1) == 1:
            return rb.emit(GateType.OR, (select, data0), name=gate.name)
        if _not_operand(rb, data1) == data0:
            # s ? ~d0 : d0  ==  s ^ d0
            return rb.emit(GateType.XOR, (select, data0), name=gate.name)
        if _not_operand(rb, data0) == data1:
            # s ? d1 : ~d1  ==  ~(s ^ d1)
            return rb.emit(GateType.XNOR, (select, data1), name=gate.name)
        return rb.emit(GateType.MUX, (select, data0, data1), name=gate.name)


# ---------------------------------------------------------------------------
# Chain balancing
# ---------------------------------------------------------------------------


class BalancePass(Pass):
    """Rebuild two-input AND/OR/XOR chains as depth-minimal trees.

    A chain gate is *absorbed* into its consumer when it has exactly one use,
    the same gate type as the consumer, and two fanins — so no logic is ever
    duplicated.  The collected operands are combined lowest-level-first
    (Huffman style), which minimizes the depth of the rebuilt tree.
    """

    name = "balance"

    def run(self, netlist: Netlist) -> Netlist:
        rb = Rebuilder(netlist)

        uses: dict[int, int] = {}
        consumer: dict[int, int] = {}
        for gid in rb.live:
            for fid in netlist.gates[gid].fanins:
                uses[fid] = uses.get(fid, 0) + 1
                consumer[fid] = gid
        for _, net in netlist.outputs:
            uses[net] = uses.get(net, 0) + 1
            consumer.pop(net, None)

        def absorbable(gid: int) -> bool:
            gate = netlist.gates[gid]
            if gate.gtype not in BALANCED_TYPES or len(gate.fanins) != 2:
                return False
            if uses.get(gid, 0) != 1 or gid not in consumer:
                return False
            parent = netlist.gates[consumer[gid]]
            return parent.gtype == gate.gtype and len(parent.fanins) == 2

        absorbed = {gid for gid in rb.live if absorbable(gid)}

        def collect(gid: int, out: list[int]) -> None:
            stack = list(reversed(netlist.gates[gid].fanins))
            while stack:
                fid = stack.pop()
                if fid in absorbed:
                    stack.extend(reversed(netlist.gates[fid].fanins))
                else:
                    out.append(rb.map[fid])

        def build(rb: Rebuilder, gate: Gate,
                  fanins: list[Optional[int]]) -> Optional[int]:
            if gate.gid in absorbed:
                return None
            if gate.gtype in BALANCED_TYPES and len(gate.fanins) == 2:
                operands: list[int] = []
                collect(gate.gid, operands)
                heap = [(rb.level(net), net) for net in operands]
                heapq.heapify(heap)
                while len(heap) > 1:
                    _, a = heapq.heappop(heap)
                    _, b = heapq.heappop(heap)
                    node = rb.emit(gate.gtype, (a, b),
                                   name=gate.name if len(heap) == 0 else None)
                    heapq.heappush(heap, (rb.level(node), node))
                return heap[0][1]
            return identity_builder(rb, gate, fanins)

        return rb.run(build)


# ---------------------------------------------------------------------------
# Dead-gate sweep
# ---------------------------------------------------------------------------


class SweepPass(Pass):
    """Drop every gate (and flip-flop) outside the primary-output cone."""

    name = "sweep"

    def run(self, netlist: Netlist) -> Netlist:
        return Rebuilder(netlist).run(identity_builder)
