"""Gate-level netlist intermediate representation.

The elaborator lowers RTL into this bit-level boolean network; the optimizer,
technology mapper, simulator and security machinery all operate on it.

A :class:`Netlist` is a DAG of :class:`Gate` nodes identified by integer ids.
Primary inputs, constants and flip-flop outputs are sources; primary outputs
and flip-flop data pins are sinks.  Combinational gates are limited to a small
set of primitive functions which keeps downstream algorithms (AIG conversion,
cut enumeration, CNF encoding) simple.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Optional


class GateType(str, Enum):
    """Primitive gate functions supported by the netlist IR."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"
    MUX = "mux"   # fanins: (select, data0, data1) -> select ? data1 : data0
    DFF = "dff"   # fanins: (data,) — output is the registered value


#: Gate types with no combinational fanin requirements.
SOURCE_TYPES = {GateType.INPUT, GateType.CONST0, GateType.CONST1}

#: Expected fanin counts for each gate type (None = variable, >= 1).
_FANIN_COUNT = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: None,
    GateType.OR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NAND: None,
    GateType.NOR: None,
    GateType.MUX: 3,
    GateType.DFF: 1,
}


class NetlistError(Exception):
    """Raised on structural errors (bad fanin counts, unknown nets, cycles)."""


@dataclass
class Gate:
    """A single node of the boolean network."""

    gid: int
    gtype: GateType
    fanins: tuple[int, ...] = ()
    name: Optional[str] = None

    @property
    def is_source(self) -> bool:
        return self.gtype in SOURCE_TYPES

    @property
    def is_register(self) -> bool:
        return self.gtype == GateType.DFF


class Netlist:
    """A mutable gate-level netlist."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.gates: dict[int, Gate] = {}
        self.inputs: list[int] = []
        self.outputs: list[tuple[str, int]] = []
        self._next_id = 0
        self._const0: Optional[int] = None
        self._const1: Optional[int] = None
        self._input_index: dict[str, int] = {}
        self._output_index: dict[str, int] = {}
        self._topo_cache: Optional[tuple[int, ...]] = None
        self._registers_cache: Optional[tuple[int, ...]] = None
        #: Monotonic structural revision, bumped on every mutation (including
        #: :meth:`add_output`, which does not disturb the topological order
        #: but does change what a compiled simulator must produce).  Derived
        #: artifacts such as :func:`repro.netlist.sim.compile_netlist` cache
        #: against it.
        self.version = 0
        #: Cache slot for :func:`repro.netlist.sim.compile_netlist` (a
        #: :class:`~repro.netlist.sim.CompiledNetlist` tagged with the
        #: ``version`` it was built from; stale entries are recompiled).
        self._compiled_cache = None
        #: Per-pass statistics attached by :func:`repro.netlist.opt.optimize`
        #: (``None`` until the netlist has been produced by the optimizer).
        self.opt_stats: Optional[list] = None

    # -- construction -----------------------------------------------------------

    def _new_id(self) -> int:
        gid = self._next_id
        self._next_id += 1
        return gid

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._registers_cache = None
        self.version += 1

    def add_input(self, name: str) -> int:
        """Create a primary input bit and return its net id."""
        if name in self._input_index:
            raise NetlistError(f"duplicate primary input name '{name}'")
        gid = self._new_id()
        self.gates[gid] = Gate(gid=gid, gtype=GateType.INPUT, name=name)
        self.inputs.append(gid)
        self._input_index[name] = gid
        self._invalidate()
        return gid

    def _check_fanins(self, gtype: GateType,
                      fanins: tuple[int, ...]) -> None:
        expected = _FANIN_COUNT[gtype]
        if expected is not None and len(fanins) != expected:
            raise NetlistError(
                f"gate type {gtype.value} expects {expected} fanins, "
                f"got {len(fanins)}"
            )
        if expected is None and len(fanins) < 1:
            raise NetlistError(
                f"gate type {gtype.value} requires at least one fanin"
            )
        for fid in fanins:
            if fid not in self.gates:
                raise NetlistError(f"fanin net {fid} does not exist")

    def add_gate(self, gtype: GateType, fanins: Iterable[int],
                 name: Optional[str] = None) -> int:
        """Create a gate of type ``gtype`` driven by ``fanins``."""
        fanins = tuple(fanins)
        self._check_fanins(gtype, fanins)
        gid = self._new_id()
        self.gates[gid] = Gate(gid=gid, gtype=gtype, fanins=fanins, name=name)
        self._invalidate()
        return gid

    def set_fanins(self, gid: int, fanins: Iterable[int]) -> None:
        """Rewire the fanins of an existing gate (used to patch forward refs).

        The elaborator creates flip-flops before their data cone exists so the
        Q net can participate in the logic that computes its own next state;
        this patches the data pin in afterwards.
        """
        gate = self.gates.get(gid)
        if gate is None:
            raise NetlistError(f"gate {gid} does not exist")
        fanins = tuple(fanins)
        self._check_fanins(gate.gtype, fanins)
        gate.fanins = fanins
        self._invalidate()

    def const0(self) -> int:
        """Return the (unique) constant-zero net."""
        if self._const0 is None:
            gid = self._new_id()
            self.gates[gid] = Gate(gid=gid, gtype=GateType.CONST0, name="1'b0")
            self._const0 = gid
            self._invalidate()
        return self._const0

    def const1(self) -> int:
        """Return the (unique) constant-one net."""
        if self._const1 is None:
            gid = self._new_id()
            self.gates[gid] = Gate(gid=gid, gtype=GateType.CONST1, name="1'b1")
            self._const1 = gid
            self._invalidate()
        return self._const1

    def add_output(self, name: str, net: int) -> None:
        """Mark ``net`` as the primary output called ``name``."""
        if net not in self.gates:
            raise NetlistError(f"output net {net} does not exist")
        if name in self._output_index:
            raise NetlistError(f"duplicate primary output name '{name}'")
        self.outputs.append((name, net))
        self._output_index[name] = net
        self.version += 1

    def add_dff(self, data: int, name: Optional[str] = None) -> int:
        """Create a D flip-flop whose data pin is ``data``; returns Q net."""
        return self.add_gate(GateType.DFF, (data,), name=name)

    # -- convenience boolean constructors ----------------------------------------

    def make_not(self, a: int) -> int:
        return self.add_gate(GateType.NOT, (a,))

    def make_and(self, *nets: int) -> int:
        return self.add_gate(GateType.AND, nets)

    def make_or(self, *nets: int) -> int:
        return self.add_gate(GateType.OR, nets)

    def make_xor(self, a: int, b: int) -> int:
        return self.add_gate(GateType.XOR, (a, b))

    def make_mux(self, select: int, data0: int, data1: int) -> int:
        return self.add_gate(GateType.MUX, (select, data0, data1))

    # -- queries ------------------------------------------------------------------

    def gate(self, gid: int) -> Gate:
        return self.gates[gid]

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (excludes sources and registers)."""
        return sum(
            1 for g in self.gates.values()
            if not g.is_source and not g.is_register
        )

    @property
    def num_registers(self) -> int:
        return sum(1 for g in self.gates.values() if g.is_register)

    @property
    def registers(self) -> list[int]:
        """Gate ids of all flip-flops, in id order.

        Cached (and invalidated on structural change) so per-cycle consumers
        like :func:`simulate` do not rescan every gate.
        """
        if self._registers_cache is None:
            self._registers_cache = tuple(sorted(
                g.gid for g in self.gates.values() if g.is_register))
        return list(self._registers_cache)

    def register_map(self) -> dict[str, int]:
        """Map each flip-flop's name to its gate id.

        Unnamed flip-flops get the synthetic name ``dff_<gid>``.  Names are
        the correspondence key used by the equivalence checker to match
        registers across netlists, so duplicates are rejected.
        """
        mapping: dict[str, int] = {}
        for gid in self.registers:
            name = self.gates[gid].name or f"dff_{gid}"
            if name in mapping:
                raise NetlistError(f"duplicate flip-flop name '{name}'")
            mapping[name] = gid
        return mapping

    def transitive_fanin(self, roots: Iterable[int],
                         through_registers: bool = False) -> set[int]:
        """All gate ids reachable backwards from ``roots`` (roots included).

        With ``through_registers`` the traversal continues through flip-flop
        data pins, yielding the full sequential support cone; otherwise
        flip-flops are treated as cut points (combinational cone).
        """
        seen: set[int] = set()
        stack = [gid for gid in roots]
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            if gid not in self.gates:
                raise NetlistError(f"net {gid} does not exist")
            seen.add(gid)
            gate = self.gates[gid]
            if gate.is_register and not through_registers:
                continue
            stack.extend(gate.fanins)
        return seen

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def output_net(self, name: str) -> int:
        try:
            return self._output_index[name]
        except KeyError:
            raise KeyError(f"output '{name}' not found") from None

    def input_net(self, name: str) -> int:
        try:
            return self._input_index[name]
        except KeyError:
            raise KeyError(f"input '{name}' not found") from None

    def input_names(self) -> list[str]:
        return [self.gates[gid].name or f"pi_{gid}" for gid in self.inputs]

    def output_names(self) -> list[str]:
        return [name for name, _ in self.outputs]

    def fanout_map(self) -> dict[int, list[int]]:
        """Map each net id to the list of gate ids that consume it."""
        fanout: dict[int, list[int]] = {gid: [] for gid in self.gates}
        for gate in self.gates.values():
            for fid in gate.fanins:
                fanout[fid].append(gate.gid)
        return fanout

    def topological_order(self) -> list[int]:
        """Return gate ids in topological order.

        Flip-flop outputs are treated as sources (their data-pin dependency is
        sequential, not combinational), so any purely combinational cycle
        raises :class:`NetlistError`.

        The order is cached and invalidated on any structural change, so
        repeated calls (e.g. multi-cycle :func:`simulate` runs) pay the DFS
        only once.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        order: list[int] = []
        state: dict[int, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

        for start in self.gates:
            if state.get(start, 0) == 2:
                continue
            stack = [(start, iter(self._comb_fanins(start)))]
            state[start] = 1
            while stack:
                gid, fanin_iter = stack[-1]
                advanced = False
                for fid in fanin_iter:
                    status = state.get(fid, 0)
                    if status == 1:
                        raise NetlistError(
                            f"combinational cycle detected through net {fid}"
                        )
                    if status == 0:
                        state[fid] = 1
                        stack.append((fid, iter(self._comb_fanins(fid))))
                        advanced = True
                        break
                if not advanced:
                    state[gid] = 2
                    order.append(gid)
                    stack.pop()
        self._topo_cache = tuple(order)
        return order

    def _comb_fanins(self, gid: int) -> tuple[int, ...]:
        gate = self.gates[gid]
        if gate.is_source or gate.is_register:
            return ()
        return gate.fanins

    def logic_levels(self) -> int:
        """Longest combinational path length in gate levels."""
        level: dict[int, int] = {}
        for gid in self.topological_order():
            gate = self.gates[gid]
            if gate.is_source or gate.is_register:
                level[gid] = 0
            else:
                level[gid] = 1 + max((level[f] for f in gate.fanins), default=0)
        return max(level.values(), default=0)

    def stats(self) -> dict[str, int]:
        """Basic size statistics of the netlist."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "registers": self.num_registers,
            "levels": self.logic_levels(),
        }

    # -- serialization ------------------------------------------------------------

    def _codec_state(self) -> tuple:
        """The compact tuple codec behind pickling and content hashing.

        Carries only the structural identity of the netlist — gates (in id
        order), primary inputs/outputs, the id counter and the interned
        constant nets.  Derived artifacts (topological order, register
        cache, the compiled-simulator closure, optimizer statistics) are
        deliberately dropped: they are cheap to rebuild and some (the
        compiled ``exec`` closure) cannot cross a process boundary at all.
        """
        gates = tuple(
            (gate.gid, gate.gtype.value, gate.fanins, gate.name)
            for gate in (self.gates[gid] for gid in sorted(self.gates))
        )
        return (self.name, gates, tuple(self.inputs), tuple(self.outputs),
                self._next_id, self._const0, self._const1)

    def __reduce__(self):
        return _netlist_from_state, (self._codec_state(),)

    def to_bytes(self) -> bytes:
        """Canonical byte serialization of the structural identity.

        Deterministic for a given structure (gate ids are assigned in
        elaboration order, which is itself deterministic), so two
        elaborations of the same source produce identical bytes.  This is
        the on-disk design-library format and the preimage of
        :meth:`content_hash`.
        """
        return repr(self._codec_state()).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Netlist":
        """Inverse of :meth:`to_bytes`.

        The payload is a ``repr``-encoded codec tuple of ints, strings and
        ``None`` — parsed with :func:`ast.literal_eval`, never executed.
        """
        import ast
        return _netlist_from_state(ast.literal_eval(data.decode("utf-8")))

    def content_hash(self) -> str:
        """Stable structural content hash (hex SHA-256 of :meth:`to_bytes`).

        Equal for re-elaborations of the same design, different after any
        mutation that changes observable structure — the key the
        verification server's result cache shards on.  Cached against the
        structural ``version`` counter so repeat lookups are free.
        """
        cached = getattr(self, "_hash_cache", None)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        digest = hashlib.sha256(self.to_bytes()).hexdigest()
        self._hash_cache = (self.version, digest)
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Netlist({self.name!r}, inputs={self.num_inputs}, "
                f"outputs={self.num_outputs}, gates={self.num_gates}, "
                f"registers={self.num_registers})")


def _netlist_from_state(state: tuple) -> Netlist:
    """Rebuild a :class:`Netlist` from its :meth:`Netlist._codec_state`.

    Module-level so pickles stay small and version-tolerant (the codec
    tuple is data, not a class dict snapshot); indexes and caches are
    reconstructed rather than shipped.
    """
    name, gates, inputs, outputs, next_id, const0, const1 = state
    netlist = Netlist(name=name)
    for gid, gtype, fanins, gname in gates:
        netlist.gates[gid] = Gate(gid=gid, gtype=GateType(gtype),
                                  fanins=tuple(fanins), name=gname)
    netlist.inputs = list(inputs)
    netlist.outputs = [(oname, net) for oname, net in outputs]
    netlist._next_id = next_id
    netlist._const0 = const0
    netlist._const1 = const1
    netlist._input_index = {
        netlist.gates[gid].name or f"pi_{gid}": gid for gid in netlist.inputs
    }
    netlist._output_index = {oname: net for oname, net in netlist.outputs}
    return netlist


def simulate(netlist: Netlist, input_values: dict[str, int],
             state: Optional[dict[int, int]] = None,
             order: Optional[list[int]] = None) -> tuple[dict[str, int], dict[int, int]]:
    """Evaluate one combinational cycle of a netlist.

    ``input_values`` maps primary-input names to 0/1.  ``state`` maps register
    gate ids to their current Q value (defaults to all zero).  ``order`` may
    supply a precomputed topological order (from
    :meth:`Netlist.topological_order`) so multi-cycle drivers skip even the
    cache lookup.  Returns the output values and the next register state.
    """
    values: dict[int, int] = {}
    # ``state`` is only read, never written, so no defensive copy is needed.
    state = state if state is not None else {}

    for gid in netlist.inputs:
        name = netlist.gates[gid].name or f"pi_{gid}"
        if name not in input_values:
            raise NetlistError(f"missing value for input '{name}'")
        values[gid] = int(bool(input_values[name]))

    if order is None:
        order = netlist.topological_order()
    for gid in order:
        gate = netlist.gates[gid]
        if gate.gtype == GateType.INPUT:
            continue
        if gate.gtype == GateType.CONST0:
            values[gid] = 0
        elif gate.gtype == GateType.CONST1:
            values[gid] = 1
        elif gate.gtype == GateType.DFF:
            values[gid] = state.get(gid, 0)
        else:
            operands = [values[f] for f in gate.fanins]
            values[gid] = _eval_gate(gate.gtype, operands)

    gates = netlist.gates
    next_state = {
        gid: values[gates[gid].fanins[0]] for gid in netlist.registers
    }

    outputs = {name: values[net] for name, net in netlist.outputs}
    return outputs, next_state


def _eval_gate(gtype: GateType, operands: list[int]) -> int:
    if gtype == GateType.BUF:
        return operands[0]
    if gtype == GateType.NOT:
        return 1 - operands[0]
    if gtype == GateType.AND:
        return int(all(operands))
    if gtype == GateType.NAND:
        return int(not all(operands))
    if gtype == GateType.OR:
        return int(any(operands))
    if gtype == GateType.NOR:
        return int(not any(operands))
    if gtype == GateType.XOR:
        result = 0
        for value in operands:
            result ^= value
        return result
    if gtype == GateType.XNOR:
        result = 0
        for value in operands:
            result ^= value
        return 1 - result
    if gtype == GateType.MUX:
        select, data0, data1 = operands
        return data1 if select else data0
    raise NetlistError(f"cannot evaluate gate type {gtype.value}")
