"""Canonical and-inverter graph (AIG): the hash-consed core IR.

Every consumer of the gate-level netlist — the optimization passes, the
SAT-based equivalence checker and the compiled simulator — wants the same
canonical view: two-input ANDs, inversion as a free edge attribute, and
structurally identical cones merged.  This module provides that view once,
at construction time.

A node is an integer id; an *edge* (the unit every API works in) is a
**literal** ``2 * node + complement``.  Node 0 is the constant-false
source, so literal ``0`` is constant 0 and literal ``1`` is constant 1.
Primary inputs and latches (flip-flop Q pins) are leaf nodes; every other
node is a two-input AND of two literals.

:meth:`AIG.aig_and` is the only structural constructor and it canonicalizes
on every call: constant and identity operands fold (``x & 0 = 0``,
``x & 1 = x``), idempotence and complementation fold (``x & x = x``,
``x & ~x = 0``), operands are order-normalized, and the result is interned
in a unique table — so structural hashing is implicit and a cone built
twice *is* the same literal, with no separate strash pass.

:func:`from_netlist` lowers a :class:`~repro.netlist.logic.Netlist` into an
AIG and :func:`to_netlist` raises it back, re-deriving XOR/XNOR and MUX
gates from their AND patterns so round-trips do not bloat gate counts.
Primary input, primary output and register names survive both directions —
names are the correspondence key the equivalence checker matches on.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence

from .logic import GateType, Netlist, NetlistError

#: Literal constants: node 0 is the constant-false source.
FALSE = 0
TRUE = 1

#: Node kinds (stored per node id).
_CONST = 0
_PI = 1
_LATCH = 2
_AND = 3


class AIGError(Exception):
    """Raised on structural errors (bad literals, duplicate names)."""


def aig_not(lit: int) -> int:
    """Complement an edge (free: flips the literal's low bit)."""
    return lit ^ 1


def lit_node(lit: int) -> int:
    """Node id of a literal."""
    return lit >> 1


def lit_compl(lit: int) -> int:
    """1 when the literal is complemented."""
    return lit & 1


class AIG:
    """A mutable and-inverter graph with a hash-consing unique table."""

    def __init__(self, name: str = "aig"):
        self.name = name
        # Parallel per-node arrays; node 0 is the constant-false source.
        self._kind: list[int] = [_CONST]
        self._fanin0: list[int] = [0]
        self._fanin1: list[int] = [0]
        self._name: list[Optional[str]] = [None]
        #: Primary-input node ids, in creation order.
        self.inputs: list[int] = []
        #: Latch (flip-flop) node ids, in creation order.
        self.latches: list[int] = []
        #: ``(name, literal)`` primary outputs, in registration order.
        self.outputs: list[tuple[str, int]] = []
        #: Latch node id -> next-state literal (unset until provided).
        self._next: dict[int, int] = {}
        #: Unique table: ``(lit0, lit1)`` with ``lit0 < lit1`` -> AND literal.
        self._table: dict[tuple[int, int], int] = {}
        self._input_index: dict[str, int] = {}
        self._output_index: dict[str, int] = {}
        self._latch_index: dict[str, int] = {}
        #: Monotonic structural revision (compiled-simulator cache key).
        self.version = 0
        self._compiled_cache = None
        self._signature_cache = None

    # -- construction -------------------------------------------------------

    def _new_node(self, kind: int, f0: int, f1: int,
                  name: Optional[str]) -> int:
        nid = len(self._kind)
        self._kind.append(kind)
        self._fanin0.append(f0)
        self._fanin1.append(f1)
        self._name.append(name)
        self.version += 1
        return nid

    def _check_lit(self, lit: int) -> None:
        if not 0 <= lit < 2 * len(self._kind):
            raise AIGError(f"literal {lit} references an unknown node")

    def add_input(self, name: str) -> int:
        """Create a primary input and return its (positive) literal."""
        if name in self._input_index:
            raise AIGError(f"duplicate primary input name '{name}'")
        nid = self._new_node(_PI, 0, 0, name)
        self.inputs.append(nid)
        self._input_index[name] = nid
        return nid << 1

    def add_latch(self, name: str) -> int:
        """Create a latch (flip-flop Q) and return its (positive) literal.

        The next-state function is supplied later via :meth:`set_next`
        (the Q literal may participate in its own data cone).
        """
        if name in self._latch_index:
            raise AIGError(f"duplicate latch name '{name}'")
        nid = self._new_node(_LATCH, 0, 0, name)
        self.latches.append(nid)
        self._latch_index[name] = nid
        return nid << 1

    def set_next(self, q_lit: int, next_lit: int) -> None:
        """Attach the next-state literal of the latch behind ``q_lit``."""
        nid = lit_node(q_lit)
        if lit_compl(q_lit) or nid >= len(self._kind) or \
                self._kind[nid] != _LATCH:
            raise AIGError(f"literal {q_lit} is not a latch output")
        self._check_lit(next_lit)
        self._next[nid] = next_lit
        self.version += 1

    def next_state(self, q_lit: int) -> int:
        """Next-state literal of the latch behind ``q_lit``."""
        nid = lit_node(q_lit)
        if nid not in self._next:
            raise AIGError(f"latch {nid} has no next-state function")
        return self._next[nid]

    def aig_and(self, a: int, b: int) -> int:
        """The canonical AND constructor: fold, normalize, hash-cons.

        All boolean structure is built through this single entry point, so
        constant/identity/idempotence folding and structural hashing apply
        to every node the graph ever contains.
        """
        self._check_lit(a)
        self._check_lit(b)
        if a == b:
            return a
        if a == b ^ 1:
            return FALSE
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        hit = self._table.get(key)
        if hit is not None:
            return hit
        lit = self._new_node(_AND, a, b, None) << 1
        self._table[key] = lit
        return lit

    # -- derived constructors (all reduce to aig_and) -----------------------

    def aig_or(self, a: int, b: int) -> int:
        return aig_not(self.aig_and(a ^ 1, b ^ 1))

    def aig_xor(self, a: int, b: int) -> int:
        """Canonical XOR: operand complements hoist to the output edge.

        ``x ^ ~y == ~(x ^ y)``, but built naively the two sides produce
        structurally different AND pairs the unique table cannot merge —
        so the structure is always built over positive operands and the
        parity returns as a complement on the result.
        """
        parity = (a & 1) ^ (b & 1)
        a &= ~1
        b &= ~1
        lit = aig_not(self.aig_and(
            aig_not(self.aig_and(a, b ^ 1)),
            aig_not(self.aig_and(a ^ 1, b)),
        ))
        return lit ^ parity

    def aig_mux(self, select: int, data0: int, data1: int) -> int:
        """``select ? data1 : data0`` (canonical select polarity).

        A complemented select swaps the data operands, so the two ways of
        writing the same mux meet in the unique table.  Data complements
        are left in place — hoisting them breaks sharing between muxes
        that pick from the same cones in different polarities.
        """
        if select & 1:
            select, data0, data1 = select ^ 1, data1, data0
        return aig_not(self.aig_and(
            aig_not(self.aig_and(select, data1)),
            aig_not(self.aig_and(select ^ 1, data0)),
        ))

    def _tree(self, op, lits: Sequence[int], unit: int) -> int:
        layer = sorted(lits)
        if not layer:
            return unit
        while len(layer) > 1:
            paired = [
                op(layer[i], layer[i + 1])
                for i in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                paired.append(layer[-1])
            layer = paired
        return layer[0]

    def aig_ands(self, lits: Iterable[int]) -> int:
        """Balanced AND tree over id-sorted operands."""
        return self._tree(self.aig_and, list(lits), TRUE)

    def aig_ors(self, lits: Iterable[int]) -> int:
        return self._tree(self.aig_or, list(lits), FALSE)

    def aig_xors(self, lits: Iterable[int]) -> int:
        return self._tree(self.aig_xor, list(lits), FALSE)

    def add_output(self, name: str, lit: int) -> None:
        """Register ``lit`` as the primary output called ``name``."""
        self._check_lit(lit)
        if name in self._output_index:
            raise AIGError(f"duplicate primary output name '{name}'")
        self.outputs.append((name, lit))
        self._output_index[name] = lit
        self.version += 1

    # -- queries ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._kind)

    @property
    def num_ands(self) -> int:
        return len(self._table)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_latches(self) -> int:
        return len(self.latches)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def kind(self, nid: int) -> int:
        return self._kind[nid]

    def is_and(self, nid: int) -> bool:
        return self._kind[nid] == _AND

    def fanins(self, nid: int) -> tuple[int, int]:
        """The two fanin literals of an AND node."""
        if self._kind[nid] != _AND:
            raise AIGError(f"node {nid} is not an AND node")
        return self._fanin0[nid], self._fanin1[nid]

    def node_name(self, nid: int) -> Optional[str]:
        return self._name[nid]

    def input_names(self) -> list[str]:
        return [self._name[nid] or f"pi_{nid}" for nid in self.inputs]

    def output_names(self) -> list[str]:
        return [name for name, _ in self.outputs]

    def latch_names(self) -> list[str]:
        return [self._name[nid] or f"latch_{nid}" for nid in self.latches]

    def output_lit(self, name: str) -> int:
        try:
            return self._output_index[name]
        except KeyError:
            raise KeyError(f"output '{name}' not found") from None

    def input_lit(self, name: str) -> int:
        try:
            return self._input_index[name] << 1
        except KeyError:
            raise KeyError(f"input '{name}' not found") from None

    def and_roots(self) -> list[int]:
        """Every literal the outside world observes: POs + latch nexts."""
        roots = [lit for _, lit in self.outputs]
        roots.extend(self._next[nid] for nid in self.latches
                     if nid in self._next)
        return roots

    def cone(self, roots: Iterable[int]) -> set[int]:
        """Node ids reachable backwards from the given literals.

        Latches and primary inputs are cut points (combinational cone).
        Node ids are created fanins-first, so iterating a cone in id order
        is a topological order.
        """
        seen: set[int] = set()
        stack = [lit_node(lit) for lit in roots]
        kinds, f0s, f1s = self._kind, self._fanin0, self._fanin1
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            if nid >= len(kinds):
                raise AIGError(f"node {nid} does not exist")
            seen.add(nid)
            if kinds[nid] == _AND:
                stack.append(f0s[nid] >> 1)
                stack.append(f1s[nid] >> 1)
        return seen

    def levels(self) -> int:
        """Longest path from a source to an observed root, in AND nodes."""
        cone = self.cone(self.and_roots())
        level = 0
        depth: dict[int, int] = {}
        kinds, f0s, f1s = self._kind, self._fanin0, self._fanin1
        for nid in sorted(cone):
            if kinds[nid] != _AND:
                depth[nid] = 0
                continue
            depth[nid] = 1 + max(depth.get(f0s[nid] >> 1, 0),
                                 depth.get(f1s[nid] >> 1, 0))
            level = max(level, depth[nid])
        return level

    def stats(self) -> dict[str, int]:
        """Basic size statistics (AND-node count, not netlist gates)."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "ands": self.num_ands,
            "latches": self.num_latches,
            "levels": self.levels(),
        }

    # -- serialization ------------------------------------------------------

    def _codec_state(self) -> tuple:
        """Compact tuple codec: the parallel node arrays plus interface
        lists, nothing derived.  The unique table, name indexes and the
        compiled-simulator/signature caches are rebuilt on restore — the
        caches hold ``exec``-generated closures that cannot (and need
        not) cross a process boundary.
        """
        return (self.name, tuple(self._kind), tuple(self._fanin0),
                tuple(self._fanin1), tuple(self._name),
                tuple(self.inputs), tuple(self.latches),
                tuple(self.outputs), tuple(sorted(self._next.items())))

    def __reduce__(self):
        return _aig_from_state, (self._codec_state(),)

    def to_bytes(self) -> bytes:
        """Canonical byte serialization (the :meth:`content_hash` preimage
        and on-disk design-library format)."""
        return repr(self._codec_state()).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "AIG":
        """Inverse of :meth:`to_bytes` (``ast.literal_eval`` — the payload
        is parsed as literals, never executed)."""
        import ast
        return _aig_from_state(ast.literal_eval(data.decode("utf-8")))

    def content_hash(self) -> str:
        """Stable structural content hash (hex SHA-256 of :meth:`to_bytes`),
        cached against the structural ``version`` counter."""
        cached = getattr(self, "_hash_cache", None)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        digest = hashlib.sha256(self.to_bytes()).hexdigest()
        self._hash_cache = (self.version, digest)
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AIG({self.name!r}, inputs={self.num_inputs}, "
                f"outputs={self.num_outputs}, ands={self.num_ands}, "
                f"latches={self.num_latches})")


def _aig_from_state(state: tuple) -> AIG:
    """Rebuild an :class:`AIG` from :meth:`AIG._codec_state`, regenerating
    the unique table and name indexes (module-level so pickles are data,
    not class-dict snapshots)."""
    (name, kind, fanin0, fanin1, names, inputs, latches, outputs,
     next_items) = state
    aig = AIG(name=name)
    aig._kind = list(kind)
    aig._fanin0 = list(fanin0)
    aig._fanin1 = list(fanin1)
    aig._name = list(names)
    aig.inputs = list(inputs)
    aig.latches = list(latches)
    aig.outputs = [(oname, lit) for oname, lit in outputs]
    aig._next = dict(next_items)
    aig._table = {
        (fanin0[nid], fanin1[nid]): nid << 1
        for nid in range(len(kind)) if kind[nid] == _AND
    }
    aig._input_index = {
        names[nid] or f"pi_{nid}": nid for nid in aig.inputs
    }
    aig._output_index = {oname: lit for oname, lit in aig.outputs}
    aig._latch_index = {
        names[nid] or f"latch_{nid}": nid for nid in aig.latches
    }
    return aig


# ---------------------------------------------------------------------------
# Lowering: Netlist -> AIG
# ---------------------------------------------------------------------------


def insert_netlist(aig: AIG, netlist: Netlist,
                   input_lits: dict[int, int],
                   latch_lits: dict[int, int]) -> dict[int, int]:
    """Lower the observable cone of ``netlist`` into an existing AIG.

    ``input_lits`` / ``latch_lits`` map the netlist's primary-input and
    flip-flop gate ids to the AIG literals standing in for them — which is
    what lets the equivalence checker lower *two* netlists into one shared
    AIG so common cones hash-merge.  Returns a gate-id -> literal map
    covering every gate feeding an output or a register data pin.
    """
    gates = netlist.gates
    roots = [net for _, net in netlist.outputs]
    roots.extend(gates[gid].fanins[0] for gid in netlist.registers)
    cone = netlist.transitive_fanin(roots) if roots else set()
    lit_map: dict[int, int] = {}

    for gid in netlist.topological_order():
        if gid not in cone:
            continue
        gate = gates[gid]
        gtype = gate.gtype
        if gtype == GateType.INPUT:
            lit_map[gid] = input_lits[gid]
        elif gtype == GateType.DFF:
            lit_map[gid] = latch_lits[gid]
        elif gtype == GateType.CONST0:
            lit_map[gid] = FALSE
        elif gtype == GateType.CONST1:
            lit_map[gid] = TRUE
        elif gtype == GateType.BUF:
            lit_map[gid] = lit_map[gate.fanins[0]]
        elif gtype == GateType.NOT:
            lit_map[gid] = lit_map[gate.fanins[0]] ^ 1
        elif gtype in (GateType.AND, GateType.NAND):
            lit = aig.aig_ands(lit_map[f] for f in gate.fanins)
            lit_map[gid] = lit ^ 1 if gtype == GateType.NAND else lit
        elif gtype in (GateType.OR, GateType.NOR):
            lit = aig.aig_ors(lit_map[f] for f in gate.fanins)
            lit_map[gid] = lit ^ 1 if gtype == GateType.NOR else lit
        elif gtype in (GateType.XOR, GateType.XNOR):
            lit = aig.aig_xors(lit_map[f] for f in gate.fanins)
            lit_map[gid] = lit ^ 1 if gtype == GateType.XNOR else lit
        elif gtype == GateType.MUX:
            select, data0, data1 = (lit_map[f] for f in gate.fanins)
            lit_map[gid] = aig.aig_mux(select, data0, data1)
        else:  # pragma: no cover - GateType is closed
            raise NetlistError(f"cannot lower gate type {gtype.value}")
    return lit_map


def from_netlist(netlist: Netlist) -> AIG:
    """Lower a netlist to a hash-consed AIG.

    Primary inputs are recreated in order (even when dead, so stimulus
    stays valid), every flip-flop becomes a latch under the same
    register-correspondence name the rebuilder uses, and primary outputs
    keep their names.  Logic outside the output/next-state cone is dropped
    by construction.
    """
    aig = AIG(name=netlist.name)
    gates = netlist.gates
    input_lits = {
        gid: aig.add_input(gates[gid].name or f"pi_{gid}")
        for gid in netlist.inputs
    }
    latch_lits = {
        gid: aig.add_latch(gates[gid].name or f"dff_{gid}")
        for gid in netlist.registers
    }
    lit_map = insert_netlist(aig, netlist, input_lits, latch_lits)
    for gid in netlist.registers:
        aig.set_next(latch_lits[gid], lit_map[gates[gid].fanins[0]])
    for name, net in netlist.outputs:
        aig.add_output(name, lit_map[net])
    return aig


# ---------------------------------------------------------------------------
# Raising: AIG -> Netlist
# ---------------------------------------------------------------------------


def _match_mux(aig: AIG, nid: int) -> Optional[tuple[int, int, int]]:
    """Detect the MUX/XOR pattern rooted at AND node ``nid``.

    ``mux(s, e, t) = ~AND(~AND(s, t), ~AND(~s, e))`` — so when both fanin
    edges are complemented ANDs sharing a select variable in opposite
    polarity, ``~nid`` implements ``s ? t : e``.  Returns ``(s, e, t)``
    literals, or ``None`` when the node is a plain conjunction.
    """
    f0, f1 = aig.fanins(nid)
    if not (lit_compl(f0) and lit_compl(f1)):
        return None
    c0, c1 = lit_node(f0), lit_node(f1)
    if not (aig.is_and(c0) and aig.is_and(c1)):
        return None
    x0, x1 = aig.fanins(c0)
    y0, y1 = aig.fanins(c1)
    for s, t in ((x0, x1), (x1, x0)):
        if aig_not(s) == y0:
            return s, y1, t
        if aig_not(s) == y1:
            return s, y0, t
    return None


def to_netlist(aig: AIG) -> Netlist:
    """Raise an AIG back to a gate-level netlist.

    AND nodes whose structure matches the XOR or MUX pattern are re-derived
    as single ``XOR``/``XNOR``/``MUX`` gates (so lowering wide operators
    does not permanently triple their gate count).  Every other AND node
    becomes one two-input gate whose type absorbs as many complement edges
    as possible: complemented operands turn the node into ``OR``/``NOR``
    via De Morgan, and the emitted polarity follows the majority of the
    node's consumers (``NAND`` when most read it inverted) — so raising
    adds a shared ``NOT`` only where an edge polarity genuinely cannot be
    folded into a gate.  PI/PO/latch names round-trip exactly.
    """
    netlist = Netlist(name=aig.name)
    #: literal -> netlist net id.
    net_of: dict[int, int] = {}

    for nid in aig.inputs:
        net_of[nid << 1] = netlist.add_input(aig.node_name(nid) or
                                             f"pi_{nid}")
    dff_net: dict[int, int] = {}
    for nid in aig.latches:
        dff = netlist.add_dff(netlist.const0(),
                              name=aig.node_name(nid) or f"latch_{nid}")
        dff_net[nid] = dff
        net_of[nid << 1] = dff

    def lit_net(lit: int) -> int:
        """Net id for a literal, creating shared NOT/const gates lazily."""
        hit = net_of.get(lit)
        if hit is not None:
            return hit
        if lit == FALSE:
            net = netlist.const0()
        elif lit == TRUE:
            net = netlist.const1()
        else:
            base = net_of.get(lit ^ 1)
            if base is None:
                raise AIGError(f"literal {lit} raised before its node")
            net = netlist.add_gate(GateType.NOT, (base,))
        net_of[lit] = net
        return net

    # Plan the raising: decide per reachable AND node whether it becomes a
    # MUX/XOR (absorbing its two child ANDs unless something else reads
    # them) and tally how often each literal polarity is consumed — the
    # polarity tally picks the emitted gate variant below.
    roots = aig.and_roots()
    plan: dict[int, Optional[tuple[int, int, int]]] = {}
    refs: dict[int, int] = {}
    for lit in roots:
        refs[lit] = refs.get(lit, 0) + 1
    stack = [lit_node(lit) for lit in roots]
    while stack:
        nid = stack.pop()
        if nid in plan or not aig.is_and(nid):
            continue
        match = _match_mux(aig, nid)
        if match is not None:
            s, e, t = match
            if lit_compl(s):
                s, e, t = aig_not(s), t, e
            match = (s, e, t)
            if t == aig_not(e):
                # XOR raising reads either polarity of its operands (the
                # complement folds into XOR-vs-XNOR parity), so it gets no
                # vote in the polarity tally — only reachability.
                stack.append(lit_node(s))
                stack.append(lit_node(e))
                plan[nid] = match
                continue
            reads = (s, e, t)
        else:
            f0, f1 = aig.fanins(nid)
            if lit_compl(f0) and lit_compl(f1):
                # Raised through De Morgan below: reads the positive edges.
                reads = (aig_not(f0), aig_not(f1))
            else:
                reads = (f0, f1)
        plan[nid] = match
        for lit in reads:
            refs[lit] = refs.get(lit, 0) + 1
            stack.append(lit_node(lit))

    for nid in sorted(plan):
        match = plan[nid]
        pos = nid << 1
        inverted = refs.get(pos ^ 1, 0) > refs.get(pos, 0)
        if match is not None:
            s, e, t = match
            if t == aig_not(e):
                # ~nid == mux(s, e, ~e) == s ^ e.  Read whichever polarity
                # of each operand already has a net and fold the leftover
                # complements into the gate's XOR-vs-XNOR parity.
                def pick(lit: int) -> int:
                    positive = lit & ~1
                    if positive in net_of:
                        return positive
                    if positive | 1 in net_of:
                        return positive | 1
                    return positive
                ls, le = pick(s), pick(e)
                parity = (lit_compl(s) ^ lit_compl(e) ^ lit_compl(ls) ^
                          lit_compl(le) ^ (0 if inverted else 1))
                gtype = GateType.XNOR if parity else GateType.XOR
                net_of[pos ^ (1 if inverted else 0)] = netlist.add_gate(
                    gtype, (lit_net(ls), lit_net(le)))
            else:
                net_of[pos ^ 1] = netlist.add_gate(
                    GateType.MUX, (lit_net(s), lit_net(e), lit_net(t)))
            continue
        f0, f1 = aig.fanins(nid)
        use_or = False
        if lit_compl(f0) and lit_compl(f1):
            # ~(~a & ~b) == a | b: raise through De Morgan, but only when
            # that strictly saves inverters — children may only provide
            # their complemented net (e.g. a raised MUX), and a shared NOT
            # on an AND operand is often cheaper than one per OR operand.
            cost_and = (f0 not in net_of) + (f1 not in net_of)
            cost_or = (aig_not(f0) not in net_of) + \
                (aig_not(f1) not in net_of)
            use_or = cost_or < cost_and
        if use_or:
            operands = (lit_net(aig_not(f0)), lit_net(aig_not(f1)))
            gtype = GateType.OR if inverted else GateType.NOR
        else:
            operands = (lit_net(f0), lit_net(f1))
            gtype = GateType.NAND if inverted else GateType.AND
        net_of[pos ^ (1 if inverted else 0)] = netlist.add_gate(
            gtype, operands)

    for nid in aig.latches:
        if nid in aig._next:
            netlist.set_fanins(dff_net[nid], (lit_net(aig._next[nid]),))
    for name, lit in aig.outputs:
        netlist.add_output(name, lit_net(lit))
    return netlist
