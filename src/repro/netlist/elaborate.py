"""RTL elaboration: lower a parsed Verilog design into the gate-level netlist.

:func:`elaborate` is the canonical path from the frontend to the IR:

* the design hierarchy is validated and flattened (one :class:`Scope` per
  module instance, parameters resolved through :mod:`repro.verilog.consteval`);
* multi-bit nets and word-level expressions are bit-blasted into
  :class:`~repro.netlist.logic.GateType` primitives via
  :mod:`repro.netlist.bitblast`;
* ``assign`` statements and ``always @(*)`` blocks become combinational
  gates (``if``/``case`` lower to mux trees, ``for`` loops are unrolled);
* edge-triggered ``always`` blocks become banks of D flip-flops, with
  unassigned paths holding their value;
* unsupported or non-synthesizable constructs raise
  :class:`~repro.netlist.environment.ElaborationError` with a scoped message.

Elaboration is demand driven: module items register as *drivers* for the
signal bits they produce and are forced when first read, which makes source
ordering irrelevant (continuous-assignment semantics) while still reporting
combinational cycles, undriven reads, multiple drivers and inferred latches.

Flip-flop data pins and child-instance input pins are forward references —
the state feeding logic that computes it — so both are created against
placeholder nets and patched with
:meth:`~repro.netlist.logic.Netlist.set_fanins` once the cone exists.

The module also provides the word-level simulation conveniences
:func:`simulate_vectors` / :func:`simulate_sequence`, which pack and unpack
the per-bit port naming convention used by the elaborator (``name`` for
scalars, ``name[i]`` for vector bits).  Both default to the compiled
bit-parallel engine (:mod:`repro.netlist.sim`); pass ``engine="interp"``
to force the original per-gate interpreter, which is kept as the
cross-check oracle.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Union

from repro.verilog import ast
from repro.verilog.consteval import (
    ConstEvalError,
    evaluate,
    module_parameters,
)
from repro.verilog.hierarchy import DesignHierarchy, HierarchyError
from repro.verilog.parser import parse

from ..obs import get_tracer
from . import bitblast as bb
from .environment import (
    UNROLL_LIMIT,
    Driver,
    ElaborationError,
    Scope,
    build_signal_table,
    const_int,
    instance_connections,
    instance_overrides,
    lvalue_targets,
    unroll_for,
)
from .logic import GateType, Netlist, simulate
from .sim import _split_bit_name, compile_netlist


def _collect_writes(stmt: Optional[ast.Statement]) -> set[str]:
    """Signals assigned anywhere in a procedural statement tree.

    ``for`` init/step targets are excluded: the loop variable is a
    compile-time constant during unrolling, not a driven signal.
    """
    out: set[str] = set()

    def visit(node: Optional[ast.Statement]) -> None:
        if node is None:
            return
        if isinstance(node, (ast.BlockingAssign, ast.NonBlockingAssign)):
            out.update(ast.lvalue_signals(node.lhs))
        elif isinstance(node, ast.Block):
            for sub in node.statements:
                visit(sub)
        elif isinstance(node, ast.If):
            visit(node.then_stmt)
            visit(node.else_stmt)
        elif isinstance(node, ast.Case):
            for item in node.items:
                visit(item.statement)
        elif isinstance(node, ast.For):
            visit(node.body)
        else:
            raise ElaborationError(
                f"unsupported procedural statement {type(node).__name__}"
            )

    visit(stmt)
    return out


class _ProcEnv:
    """Symbolic state of one procedural block during lowering.

    ``wr`` holds the value each signal will take when the block completes
    (``None`` bits are not-yet-assigned; only possible in combinational
    blocks — sequential rows start from the flip-flop outputs, i.e. hold).
    ``rd`` holds blocking-assignment overrides in sequential blocks, so reads
    after a blocking write see the new value while non-blocking writes keep
    old-value read semantics.
    """

    def __init__(self, elab: "Elaborator", scope: Scope, sequential: bool,
                 consts: dict[str, int]):
        self.elab = elab
        self.scope = scope
        self.sequential = sequential
        self.consts = consts
        self.wr: dict[str, list[Optional[int]]] = {}
        self.rd: dict[str, list[int]] = {}

    def read(self, name: str,
             indices: Optional[list[int]] = None) -> list[int]:
        """Read a signal's bits; ``indices`` restricts resolution to those
        bit positions (the returned list then matches ``indices`` order)."""
        if self.sequential:
            row: Optional[list[Optional[int]]] = self.rd.get(name)
        else:
            row = self.wr.get(name)
        wanted = indices if indices is not None \
            else list(range(self.scope.width(name)))
        return [
            row[i] if row is not None and row[i] is not None
            else self.scope.resolve_bit(name, i)
            for i in wanted
        ]

    def write(self, targets: list[tuple[str, int]], bits: list[int],
              blocking: bool) -> None:
        for (name, index), net in zip(targets, bits):
            row = self.wr.get(name)
            if row is None:
                if self.sequential:
                    row = list(self.scope.resolve_signal(name))
                else:
                    row = [None] * self.scope.width(name)
                self.wr[name] = row
            row[index] = net
            if self.sequential and blocking:
                override = self.rd.get(name)
                if override is None:
                    override = self.scope.resolve_signal(name)
                    self.rd[name] = override
                override[index] = net

    def branch(self) -> "_ProcEnv":
        child = _ProcEnv(self.elab, self.scope, self.sequential,
                         dict(self.consts))
        child.wr = {name: list(row) for name, row in self.wr.items()}
        child.rd = {name: list(row) for name, row in self.rd.items()}
        return child

    def merge(self, cond: int, env_t: "_ProcEnv", env_f: "_ProcEnv") -> None:
        """Fold two branch environments back with per-bit muxes on ``cond``."""
        netlist = self.elab.netlist
        for name in set(env_t.wr) | set(env_f.wr):
            base = self.wr.get(name)
            if base is None and self.sequential:
                # Sequential fallback is the register's current value (hold).
                base = self.scope.resolve_signal(name)
            trow = env_t.wr.get(name)
            frow = env_f.wr.get(name)
            width = self.scope.width(name)
            merged: list[Optional[int]] = []
            for i in range(width):
                vt = trow[i] if trow is not None else (
                    base[i] if base is not None else None)
                vf = frow[i] if frow is not None else (
                    base[i] if base is not None else None)
                if vt == vf:
                    merged.append(vt)
                elif vt is None or vf is None:
                    self.scope.latched.add((name, i))
                    merged.append(None)
                else:
                    merged.append(bb.b_mux(netlist, cond, vf, vt))
            self.wr[name] = merged
        for name in set(env_t.rd) | set(env_f.rd):
            fallback = self.rd.get(name)
            if fallback is None:
                fallback = self.scope.resolve_signal(name)
            trow = env_t.rd.get(name, fallback)
            frow = env_f.rd.get(name, fallback)
            self.rd[name] = [
                vt if vt == vf else bb.b_mux(netlist, cond, vf, vt)
                for vt, vf in zip(trow, frow)
            ]


class Elaborator:
    """Lowers one parsed design (source + top module) into a netlist."""

    def __init__(self, source: ast.Source, top: str,
                 params: Optional[Mapping[str, int]] = None):
        self.source = source
        self.top = top
        self.params = dict(params or {})
        self.netlist = Netlist(name=top)

    # -- top level ----------------------------------------------------------

    def run(self) -> Netlist:
        try:
            DesignHierarchy(self.source, self.top)
        except HierarchyError as exc:
            raise ElaborationError(str(exc)) from exc
        module = self.source.module(self.top)

        def bind_inputs(scope: Scope) -> None:
            for port in module.ports:
                if port.direction != "input":
                    continue
                width = scope.width(port.name)
                for i in range(width):
                    name = port.name if width == 1 else f"{port.name}[{i}]"
                    scope.bind(port.name, i, self.netlist.add_input(name))

        scope = self._elaborate_scope(module, self.top, self.params,
                                      bind_inputs)
        for port in module.ports:
            if port.direction != "output":
                continue
            bits = scope.resolve_signal(port.name)
            width = len(bits)
            for i, net in enumerate(bits):
                name = port.name if width == 1 else f"{port.name}[{i}]"
                self.netlist.add_output(name, net)
        return self.netlist

    # -- per-scope elaboration ----------------------------------------------

    def _elaborate_scope(self, module: ast.Module, path: str,
                         overrides: Mapping[str, int],
                         bind_inputs: Callable[[Scope], None]) -> Scope:
        try:
            params = module_parameters(module, overrides)
        except ConstEvalError as exc:
            raise ElaborationError(
                f"cannot resolve parameters of module '{module.name}': {exc}"
            ) from exc
        scope = Scope(path, module, params)
        build_signal_table(scope)
        bind_inputs(scope)
        patches: list[Callable[[], None]] = []

        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                continue
            if isinstance(item, ast.NetDecl):
                if item.init is not None:
                    self._register_assign(
                        scope, ast.Identifier(name=item.name), item.init,
                        label=f"initializer of '{item.name}'")
                continue
            if isinstance(item, ast.Assign):
                self._register_assign(scope, item.lhs, item.rhs,
                                      label="continuous assignment")
            elif isinstance(item, ast.Always):
                if item.is_sequential:
                    self._handle_seq_always(scope, item, patches)
                else:
                    self._register_comb_always(scope, item)
            elif isinstance(item, ast.Initial):
                continue  # ignored by synthesis
            elif isinstance(item, ast.Instance):
                self._handle_instance(scope, item, patches)
            else:
                raise ElaborationError(
                    f"unsupported module item {type(item).__name__} in "
                    f"module '{module.name}'"
                )

        scope.force_all()
        for patch in patches:
            patch()
        return scope

    # -- continuous assignments ----------------------------------------------

    def _register_assign(self, scope: Scope, lhs: ast.Expression,
                         rhs: ast.Expression, label: str) -> None:
        targets = lvalue_targets(scope, lhs)

        def force() -> None:
            bits = self.lower_expr(scope, rhs, width=len(targets))
            bits = bb.extend(self.netlist, bits, len(targets))
            for (name, index), net in zip(targets, bits):
                scope.bind(name, index, net, driver=driver)

        driver = Driver(f"{label} in {scope.path}", force)
        for name, index in targets:
            scope.register_driver(name, index, driver)

    # -- always blocks -------------------------------------------------------

    def _register_comb_always(self, scope: Scope, item: ast.Always) -> None:
        writes = _collect_writes(item.statement)
        if not writes:
            return

        def force() -> None:
            env = _ProcEnv(self, scope, sequential=False, consts={})
            self.exec_stmt(env, item.statement)
            for name in writes:
                row = env.wr.get(name)
                if row is None:
                    continue
                for index, net in enumerate(row):
                    if net is not None:
                        scope.bind(name, index, net, driver=driver)

        driver = Driver(f"always @(*) block in {scope.path}", force)
        for name in sorted(writes):
            for index in range(scope.width(name)):
                scope.register_driver(name, index, driver)

    def _handle_seq_always(self, scope: Scope, item: ast.Always,
                           patches: list[Callable[[], None]]) -> None:
        writes = _collect_writes(item.statement)
        if not writes:
            return
        dffs: list[tuple[str, int, int]] = []
        for name in sorted(writes):
            width = scope.width(name)
            for index in range(width):
                qname = f"{scope.path}.{name}"
                if width > 1:
                    qname += f"[{index}]"
                gid = self.netlist.add_dff(self.netlist.const0(), name=qname)
                scope.bind(name, index, gid)
                dffs.append((name, index, gid))

        def patch() -> None:
            env = _ProcEnv(self, scope, sequential=True, consts={})
            self.exec_stmt(env, item.statement)
            for name, index, gid in dffs:
                row = env.wr.get(name)
                data = row[index] if row is not None else scope.bits[name][index]
                self.netlist.set_fanins(gid, (data,))

        patches.append(patch)

    # -- instances ------------------------------------------------------------

    def _handle_instance(self, scope: Scope, inst: ast.Instance,
                         patches: list[Callable[[], None]]) -> None:
        child_path = f"{scope.path}.{inst.instance_name}"
        if not self.source.has_module(inst.module_name):
            raise ElaborationError(
                f"instance '{child_path}' refers to module "
                f"'{inst.module_name}' which is not defined in the source"
            )
        child_module = self.source.module(inst.module_name)
        overrides = instance_overrides(scope.params, inst, child_module,
                                       child_path)
        conn_map = instance_connections(inst, child_module, child_path)

        placeholders: dict[str, list[int]] = {}

        def bind_child_inputs(child_scope: Scope) -> None:
            for port in child_module.ports:
                if port.direction != "input":
                    continue
                width = child_scope.width(port.name)
                bufs = []
                for i in range(width):
                    pname = f"{child_path}.{port.name}"
                    if width > 1:
                        pname += f"[{i}]"
                    buf = self.netlist.add_gate(
                        GateType.BUF, (self.netlist.const0(),), name=pname)
                    child_scope.bind(port.name, i, buf)
                    bufs.append(buf)
                placeholders[port.name] = bufs

        child_scope = self._elaborate_scope(child_module, child_path,
                                            overrides, bind_child_inputs)

        for port in child_module.ports:
            if port.direction != "output":
                continue
            expr = conn_map.get(port.name)
            if expr is None:
                continue
            targets = lvalue_targets(scope, expr)
            bits = bb.extend(self.netlist,
                             child_scope.resolve_signal(port.name),
                             len(targets))
            for (name, index), net in zip(targets, bits):
                scope.bind(name, index, net)

        def patch() -> None:
            for port_name, bufs in placeholders.items():
                expr = conn_map.get(port_name)
                if expr is None:
                    bits = bb.constant(self.netlist, 0, len(bufs))
                else:
                    bits = bb.extend(
                        self.netlist,
                        self.lower_expr(scope, expr, width=len(bufs)),
                        len(bufs))
                for buf, net in zip(bufs, bits):
                    self.netlist.set_fanins(buf, (net,))

        patches.append(patch)

    # -- statement lowering ---------------------------------------------------

    def exec_stmt(self, env: _ProcEnv, stmt: Optional[ast.Statement]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for sub in stmt.statements:
                self.exec_stmt(env, sub)
            return
        if isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            self._exec_assign(env, stmt)
            return
        if isinstance(stmt, ast.If):
            self._exec_if(env, stmt)
            return
        if isinstance(stmt, ast.Case):
            self._exec_case(env, stmt)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(env, stmt)
            return
        raise ElaborationError(
            f"unsupported procedural statement {type(stmt).__name__} in "
            f"{env.scope.path}"
        )

    def _exec_assign(self, env: _ProcEnv,
                     stmt: Union[ast.BlockingAssign, ast.NonBlockingAssign]
                     ) -> None:
        if isinstance(stmt.lhs, ast.Identifier) and stmt.lhs.name in env.consts:
            raise ElaborationError(
                f"assignment to loop variable '{stmt.lhs.name}' outside the "
                f"for-loop step is not supported in {env.scope.path}"
            )
        targets = lvalue_targets(env.scope, stmt.lhs, env.consts)
        bits = self.lower_expr(env.scope, stmt.rhs, reader=env.read,
                               consts=env.consts, width=len(targets))
        bits = bb.extend(self.netlist, bits, len(targets))
        env.write(targets, bits, blocking=isinstance(stmt, ast.BlockingAssign))

    def _exec_if(self, env: _ProcEnv, stmt: ast.If) -> None:
        cond_bits = self.lower_expr(env.scope, stmt.cond, reader=env.read,
                                    consts=env.consts)
        cond = bb.reduce_or(self.netlist, cond_bits)
        gtype = self.netlist.gate(cond).gtype
        if gtype == GateType.CONST1:
            self.exec_stmt(env, stmt.then_stmt)
            return
        if gtype == GateType.CONST0:
            self.exec_stmt(env, stmt.else_stmt)
            return
        env_t = env.branch()
        self.exec_stmt(env_t, stmt.then_stmt)
        env_f = env.branch()
        self.exec_stmt(env_f, stmt.else_stmt)
        env.merge(cond, env_t, env_f)

    def _exec_case(self, env: _ProcEnv, stmt: ast.Case) -> None:
        sel = self.lower_expr(env.scope, stmt.expr, reader=env.read,
                              consts=env.consts)
        arms: list[tuple[int, Optional[ast.Statement]]] = []
        default_stmt: Optional[ast.Statement] = None
        have_default = False
        for item in stmt.items:
            if item.conditions is None:
                if not have_default:
                    default_stmt = item.statement
                    have_default = True
                continue
            cond = self.netlist.const0()
            for expr in item.conditions:
                label = self.lower_expr(env.scope, expr, reader=env.read,
                                        consts=env.consts)
                cond = bb.b_or(self.netlist, cond,
                               bb.v_eq(self.netlist, sel, label))
            arms.append((cond, item.statement))

        def run_arms(env: _ProcEnv, k: int) -> None:
            if k == len(arms):
                self.exec_stmt(env, default_stmt)
                return
            cond, arm_stmt = arms[k]
            gtype = self.netlist.gate(cond).gtype
            if gtype == GateType.CONST1:
                self.exec_stmt(env, arm_stmt)
                return
            if gtype == GateType.CONST0:
                run_arms(env, k + 1)
                return
            env_t = env.branch()
            self.exec_stmt(env_t, arm_stmt)
            env_f = env.branch()
            run_arms(env_f, k + 1)
            env.merge(cond, env_t, env_f)

        run_arms(env, 0)

    def _exec_for(self, env: _ProcEnv, stmt: ast.For) -> None:
        for _ in unroll_for(stmt, env.scope.params, env.consts,
                            env.scope.path):
            self.exec_stmt(env, stmt.body)

    # -- expression lowering ---------------------------------------------------

    def lower_expr(self, scope: Scope, expr: ast.Expression,
                   reader: Optional[
                       Callable[..., list[int]]] = None,
                   consts: Optional[Mapping[str, int]] = None,
                   width: int = 0) -> list[int]:
        """Bit-blast an expression into a net-id vector (LSB first).

        ``width`` is the context width demanded by the assignment target (0
        for self-determined).  As in Verilog, it propagates through the
        width-transparent operators (``+ - & | ^ ~^ ~``, unary ``+``/``-``,
        ternary branches, the left shift operand) so carries are computed at
        the target width; comparison operands, concatenation parts, selects
        and shift amounts remain self-determined.
        """
        netlist = self.netlist

        def scope_read(name: str,
                       indices: Optional[list[int]] = None) -> list[int]:
            if indices is None:
                return scope.resolve_signal(name)
            return [scope.resolve_bit(name, i) for i in indices]

        read = reader if reader is not None else scope_read
        env = dict(scope.params)
        if consts:
            env.update(consts)

        def lower(node: ast.Expression, ctx: int = 0) -> list[int]:
            if isinstance(node, ast.Identifier):
                if node.name in env:
                    value = env[node.name]
                    base = bb.natural_width(value)
                    return bb.constant(netlist, value & ((1 << base) - 1),
                                       max(base, ctx))
                if node.name in scope.signals:
                    return bb.extend(netlist, read(node.name),
                                     max(scope.width(node.name), ctx))
                raise ElaborationError(
                    f"identifier '{node.name}' in {scope.path} is neither a "
                    f"declared signal nor a constant"
                )
            if isinstance(node, ast.IntConst):
                base = node.width if node.width is not None else \
                    bb.natural_width(node.value)
                return bb.constant(netlist, node.value & ((1 << base) - 1),
                                   max(base, ctx))
            if isinstance(node, ast.UnaryOp):
                return lower_unary(node, ctx)
            if isinstance(node, ast.BinaryOp):
                return lower_binary(node, ctx)
            if isinstance(node, ast.Ternary):
                cond = bb.reduce_or(netlist, lower(node.cond))
                true_bits = lower(node.true_value, ctx)
                false_bits = lower(node.false_value, ctx)
                return bb.v_mux(netlist, cond, false_bits, true_bits)
            if isinstance(node, ast.Concat):
                bits: list[int] = []
                for part in reversed(node.parts):
                    bits.extend(lower(part))
                return bits
            if isinstance(node, ast.Repeat):
                count = const_int(node.count, env, "replication count")
                if count < 1:
                    raise ElaborationError(
                        f"replication count must be positive, got {count}"
                    )
                return lower(node.value) * count
            if isinstance(node, ast.BitSelect):
                return lower_bit_select(node)
            if isinstance(node, ast.PartSelect):
                return lower_part_select(node)
            raise ElaborationError(
                f"unsupported expression {type(node).__name__} in {scope.path}"
            )

        def lower_unary(node: ast.UnaryOp, ctx: int) -> list[int]:
            op = node.op
            operand = lower(node.operand,
                            ctx if op in ("~", "+", "-") else 0)
            if op == "~":
                return bb.v_not(netlist, operand)
            if op == "+":
                return operand
            if op == "-":
                return bb.v_neg(netlist, operand)
            if op == "!":
                return [bb.b_not(netlist, bb.reduce_or(netlist, operand))]
            if op == "&":
                return [bb.reduce_and(netlist, operand)]
            if op == "|":
                return [bb.reduce_or(netlist, operand)]
            if op == "^":
                return [bb.reduce_xor(netlist, operand)]
            if op == "~&":
                return [bb.b_not(netlist, bb.reduce_and(netlist, operand))]
            if op == "~|":
                return [bb.b_not(netlist, bb.reduce_or(netlist, operand))]
            if op in ("~^", "^~"):
                return [bb.b_not(netlist, bb.reduce_xor(netlist, operand))]
            raise ElaborationError(f"unsupported unary operator {op!r}")

        def lower_binary(node: ast.BinaryOp, ctx: int) -> list[int]:
            op = node.op
            if op in ("/", "%", "**"):
                try:
                    value = evaluate(node, env)
                except ConstEvalError as exc:
                    raise ElaborationError(
                        f"non-constant '{op}' is not synthesizable in "
                        f"{scope.path}: {exc}"
                    ) from exc
                base = bb.natural_width(value)
                return bb.constant(netlist, value & ((1 << base) - 1),
                                   max(base, ctx))
            if op in ("<<", "<<<", ">>", ">>>"):
                left = lower(node.left, ctx)
                shifter = bb.shift_left_const if op in ("<<", "<<<") \
                    else bb.shift_right_const
                try:
                    amount = evaluate(node.right, env)
                except ConstEvalError:
                    amount_bits = lower(node.right)
                    dyn = bb.shift_left if op in ("<<", "<<<") \
                        else bb.shift_right
                    return dyn(netlist, left, amount_bits)
                if amount < 0:
                    raise ElaborationError(
                        f"negative shift amount {amount} in {scope.path}"
                    )
                return shifter(netlist, left, amount)
            sub_ctx = ctx if op in ("+", "-", "&", "|", "^", "~^", "^~") \
                else 0
            left = lower(node.left, sub_ctx)
            right = lower(node.right, sub_ctx)
            if op == "+":
                return bb.v_add(netlist, left, right)
            if op == "-":
                return bb.v_sub(netlist, left, right)
            if op == "*":
                product = bb.v_mul(netlist, left, right)
                return bb.extend(netlist, product, max(len(product), ctx))
            if op == "&":
                return bb.v_and(netlist, left, right)
            if op == "|":
                return bb.v_or(netlist, left, right)
            if op == "^":
                return bb.v_xor(netlist, left, right)
            if op in ("~^", "^~"):
                return bb.v_xnor(netlist, left, right)
            if op in ("==", "==="):
                return [bb.v_eq(netlist, left, right)]
            if op in ("!=", "!=="):
                return [bb.v_ne(netlist, left, right)]
            if op == "<":
                return [bb.v_ult(netlist, left, right)]
            if op == ">":
                return [bb.v_ult(netlist, right, left)]
            if op == "<=":
                return [bb.v_ule(netlist, left, right)]
            if op == ">=":
                return [bb.v_ule(netlist, right, left)]
            if op == "&&":
                return [bb.b_and(netlist, bb.reduce_or(netlist, left),
                                 bb.reduce_or(netlist, right))]
            if op == "||":
                return [bb.b_or(netlist, bb.reduce_or(netlist, left),
                                bb.reduce_or(netlist, right))]
            raise ElaborationError(f"unsupported binary operator {op!r}")

        def lower_bit_select(node: ast.BitSelect) -> list[int]:
            target = node.target
            strict = isinstance(target, ast.Identifier) and \
                target.name not in env and target.name in scope.signals
            try:
                index = evaluate(node.index, env)
            except ConstEvalError:
                tvec = lower(target)
                index_bits = lower(node.index)
                return [bb.select_bit(netlist, tvec, index_bits)]
            if strict:
                # Demand only the selected bit so per-bit feedback through a
                # vector (e.g. a carry chain) is not misreported as a cycle.
                width = scope.width(target.name)
                if not 0 <= index < width:
                    raise ElaborationError(
                        f"bit select {target.name}[{index}] out of range "
                        f"[{width - 1}:0] in {scope.path}"
                    )
                return read(target.name, [index])
            tvec = lower(target)
            if 0 <= index < len(tvec):
                return [tvec[index]]
            return [netlist.const0()]

        def lower_part_select(node: ast.PartSelect) -> list[int]:
            target = node.target
            strict = isinstance(target, ast.Identifier) and \
                target.name not in env and target.name in scope.signals
            msb = const_int(node.msb, env, "part-select msb")
            lsb = const_int(node.lsb, env, "part-select lsb")
            if msb < lsb or lsb < 0:
                raise ElaborationError(
                    f"part select [{msb}:{lsb}] must be written msb:lsb "
                    f"with a non-negative lsb"
                )
            if strict:
                width = scope.width(target.name)
                if msb >= width:
                    raise ElaborationError(
                        f"part select {target.name}[{msb}:{lsb}] out of "
                        f"range [{width - 1}:0] in {scope.path}"
                    )
                return read(target.name, list(range(lsb, msb + 1)))
            tvec = lower(target)
            return [
                tvec[i] if i < len(tvec) else netlist.const0()
                for i in range(lsb, msb + 1)
            ]

        return lower(expr, width)


def elaborate(source: Union[str, ast.Source], top: Optional[str] = None,
              params: Optional[Mapping[str, int]] = None,
              optimize: Union[bool, list, tuple] = False) -> Netlist:
    """Synthesize a parsed (or raw-text) Verilog design into a :class:`Netlist`.

    ``top`` may be omitted when the source contains exactly one module.
    ``params`` overrides parameters of the top module.  Vector ports become
    one primary input/output per bit named ``port[i]`` (plain ``port`` for
    scalars); use :func:`simulate_vectors` to drive the result word-wise.

    ``optimize`` runs the :mod:`repro.netlist.opt` pipeline on the lowered
    netlist: ``True`` selects the default pipeline, a list/tuple of pass
    names or :class:`~repro.netlist.opt.Pass` objects selects a custom one.
    The per-pass statistics are attached to the returned netlist as
    ``netlist.opt_stats``.
    """
    tracer = get_tracer()
    with tracer.span("elaborate") as span:
        if isinstance(source, str):
            with tracer.span("elaborate.parse", bytes=len(source)):
                source = parse(source)
        if top is None:
            if len(source.modules) != 1:
                names = ", ".join(source.module_names()) or "<none>"
                raise ElaborationError(
                    f"a top module name is required when the source defines "
                    f"multiple modules (found: {names})"
                )
            top = source.modules[0].name
        if not source.has_module(top):
            raise ElaborationError(f"top module '{top}' not found in source")
        span.set(top=top)
        with tracer.span("elaborate.lower", top=top) as lower_span:
            netlist = Elaborator(source, top, params).run()
            lower_span.set(gates=netlist.num_gates)
        span.set(gates=netlist.num_gates)
        if optimize:
            from .opt import optimize as run_pipeline
            passes = None if optimize is True else list(optimize)
            netlist = run_pipeline(netlist, passes=passes).netlist
    return netlist


# ---------------------------------------------------------------------------
# Word-level simulation conveniences
# ---------------------------------------------------------------------------


#: Engines accepted by :func:`simulate_vectors` / :func:`simulate_sequence`.
SIMULATION_ENGINES = ("compiled", "interp")


def _check_engine(engine: str) -> None:
    """Reject unknown engine names up front, naming the valid choices."""
    if engine not in SIMULATION_ENGINES:
        valid = ", ".join(repr(name) for name in SIMULATION_ENGINES)
        raise ValueError(
            f"unknown simulation engine {engine!r} "
            f"(valid engines: {valid})"
        )


def simulate_vectors(netlist: Netlist, inputs: Mapping[str, int],
                     state: Optional[dict[int, int]] = None,
                     order: Optional[list[int]] = None,
                     engine: str = "compiled"
                     ) -> tuple[dict[str, int], dict[int, int]]:
    """Run one word-level cycle of a netlist.

    ``inputs`` maps *port* names (the elaborator's pre-bit-blasting names) to
    unsigned integers; outputs are packed back the same way.  ``engine``
    selects the compiled bit-parallel engine (default) or the per-gate
    interpreter (``"interp"``, the cross-check oracle); ``order`` is only
    consulted by the interpreter — the compiled engine levelizes once at
    compile time and caches the result on the netlist.
    """
    _check_engine(engine)
    if engine == "compiled":
        compiled = compile_netlist(netlist)
        outputs, next_bits = compiled.run_words(
            inputs, compiled.pack_state(state))
        return outputs, dict(zip(compiled.registers, next_bits))
    bit_inputs: dict[str, int] = {}
    for name in netlist.input_names():
        base, index = _split_bit_name(name)
        if base not in inputs:
            raise KeyError(f"missing value for input port '{base}'")
        bit_inputs[name] = (int(inputs[base]) >> index) & 1
    bit_outputs, next_state = simulate(netlist, bit_inputs, state, order)
    outputs: dict[str, int] = {}
    for name, bit in bit_outputs.items():
        base, index = _split_bit_name(name)
        outputs[base] = outputs.get(base, 0) | (bit << index)
    return outputs, next_state


def simulate_sequence(netlist: Netlist,
                      vectors: Iterable[Mapping[str, int]],
                      state: Optional[dict[int, int]] = None,
                      engine: str = "compiled") -> list[dict[str, int]]:
    """Simulate a sequence of word-level input vectors (one per clock cycle).

    With the default compiled engine the netlist is levelized and code-
    generated once (cached across calls); with ``engine="interp"`` the
    topological order is computed once up front, so long runs pay for a
    single DFS regardless of cycle count.
    """
    _check_engine(engine)
    if engine == "compiled":
        compiled = compile_netlist(netlist)
        run_words = compiled.run_words
        packed_state: tuple[int, ...] = compiled.pack_state(state)
        results: list[dict[str, int]] = []
        for vector in vectors:
            outputs, packed_state = run_words(vector, packed_state)
            results.append(outputs)
        return results
    order = netlist.topological_order()
    state = dict(state or {})
    results = []
    for vector in vectors:
        outputs, state = simulate_vectors(netlist, vector, state, order,
                                          engine="interp")
        results.append(outputs)
    return results
