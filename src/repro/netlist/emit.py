"""Structural Verilog emission: the inverse of elaboration.

:func:`netlist_to_verilog` prints a gate-level :class:`Netlist` as a
synthesizable Verilog module that the project's own frontend parses and
re-elaborates.  Bit-blasted port names (``a[3]``) are regrouped into
vector port declarations, combinational gates become ``assign``
statements over generated wires, and flip-flops become ``reg``
declarations driven from one ``always @(posedge <clock>)`` block.

Round-trip fidelity is the design goal: re-elaborating the emitted text
yields a netlist with the same primary input/output interface, and —
for registers owned by the top scope, which the elaborator names
``<top>.<reg>[<bit>]`` — the same register-correspondence names, so
:func:`repro.netlist.sat.check_equivalence` can prove the round trip
lossless.  Registers inherited from flattened sub-instances keep their
hierarchical names only in sanitized form (dots become underscores), so
they re-elaborate as fresh registers; outputs still prove equivalent
whenever the optimizer has already swept such registers into top-level
state.

Flip-flops in this IR are implicitly clocked; the emitted ``always``
block needs an explicit clock net, so the emitter reuses a scalar
primary input named ``clock`` (default ``"clk"``) when the design has
one and otherwise adds a fresh clock input (changing the interface —
flagged in the emitted header comment).
"""

from __future__ import annotations

import re

from .logic import GateType, Netlist, NetlistError
from .sim import _split_bit_name

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


class EmitError(NetlistError):
    """Raised when a netlist cannot be printed as Verilog."""


def _sanitize(name: str, used: set[str]) -> str:
    """Turn an arbitrary net name into a fresh Verilog identifier."""
    ident = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not ident or not _IDENT.match(ident):
        ident = f"_{ident}"
    while ident in used:
        ident += "_"
    return ident


def _group_bits(names: list[str], kind: str) -> dict[str, dict[int, int]]:
    """Group bit-blasted names into ``{base: {index: position}}`` words.

    A plain name is a scalar (represented as ``{0: pos}`` with a marker
    index set of exactly ``{0}`` and the original name equal to the base);
    ``base[i]`` names form vectors, which must cover ``0..max`` densely.
    """
    words: dict[str, dict[int, int]] = {}
    scalars: set[str] = set()
    for pos, name in enumerate(names):
        base, index = _split_bit_name(name)
        if base == name:
            scalars.add(base)
        if base in words and index in words[base]:
            raise EmitError(f"duplicate {kind} bit '{name}'")
        words.setdefault(base, {})[index] = pos
    for base, bits in words.items():
        if base in scalars:
            if len(bits) != 1:
                raise EmitError(
                    f"{kind} '{base}' is both a scalar and a vector")
            continue
        if sorted(bits) != list(range(len(bits))):
            raise EmitError(
                f"{kind} vector '{base}' has gaps in its bit indices")
        if len(bits) == 1:
            # A lone '<base>[0]' port cannot survive the frontend: the
            # elaborator names width-1 ports plain '<base>', so the
            # re-elaborated interface would no longer match.  (The
            # elaborator itself never produces this shape.)
            raise EmitError(
                f"{kind} '{base}[0]' is a single-bit vector; the frontend "
                f"would re-elaborate it as scalar '{base}', breaking the "
                f"round trip")
        if not _IDENT.match(base):
            raise EmitError(f"{kind} '{base}' is not a Verilog identifier")
    return words


def _port_decl(direction: str, base: str, bits: dict[int, int],
               names: list[str], reg: bool = False) -> str:
    kind = f"{direction} reg" if reg else direction
    if len(bits) == 1 and names[next(iter(bits.values()))] == base:
        return f"{kind} {base}"
    return f"{kind} [{len(bits) - 1}:0] {base}"


def netlist_to_verilog(netlist: Netlist, clock: str = "clk") -> str:
    """Print a netlist as a structural Verilog module."""
    gates = netlist.gates
    input_names = netlist.input_names()
    output_names = netlist.output_names()
    in_words = _group_bits(input_names, "input")
    out_words = _group_bits(output_names, "output")
    overlap = set(in_words) & set(out_words)
    if overlap:
        raise EmitError(
            f"ports used as both input and output: {sorted(overlap)}")

    used: set[str] = set(in_words) | set(out_words)

    # -- registers: regroup flip-flops into words, preferring the names the
    #    elaborator would re-create ("<top>.<reg>[<bit>]" -> "<reg>").
    reg_map = netlist.register_map()
    prefix = f"{netlist.name}."
    reg_words: dict[str, dict[int, int]] = {}
    scalar_regs: set[str] = set()
    for name in sorted(reg_map):
        local = name[len(prefix):] if name.startswith(prefix) else name
        base, index = _split_bit_name(local)
        if local == base:
            scalar_regs.add(base)
        word = reg_words.setdefault(base, {})
        if index in word:
            raise EmitError(f"duplicate register bit '{name}'")
        word[index] = reg_map[name]
    for base in scalar_regs:
        if len(reg_words[base]) != 1:
            raise EmitError(
                f"register '{base}' is both a scalar and a vector")

    # An output word whose every bit is driven directly by the matching
    # register word can be declared `output reg` and written in place —
    # exactly what `output reg [W-1:0] q` elaborated from, so the round
    # trip restores the original declaration.
    output_regs: set[str] = set()
    out_net = dict(netlist.outputs)
    for base, bits in out_words.items():
        word = reg_words.get(base)
        if word is None or sorted(word) != sorted(bits):
            continue
        if all(out_net[output_names[pos]] == word[index]
               for index, pos in bits.items()):
            output_regs.add(base)

    reg_decl_names: dict[str, str] = {}
    for base in sorted(reg_words):
        if base in output_regs:
            decl = base  # shares the output port declaration
        elif _IDENT.match(base) and base not in used:
            decl = base
        else:
            decl = _sanitize(base, used)
        reg_decl_names[base] = decl
        used.add(decl)

    # -- clock: reuse a scalar input, or add one.
    clock_name = None
    added_clock = False
    if reg_map:
        scalar_inputs = {
            name for name in input_names
            if _split_bit_name(name)[0] == name
        }
        if clock in scalar_inputs:
            clock_name = clock
        else:
            clock_name = _sanitize(clock, used)
            used.add(clock_name)
            added_clock = True

    # -- wire naming for combinational gates: the prefix must not produce
    #    any `<prefix><digits>` name a port or register already claimed,
    #    re-scanning all names after every bump ("w3" forces "w_", which
    #    "w_5" may force further).
    wire_prefix = "w"
    while any(re.fullmatch(f"{re.escape(wire_prefix)}\\d+", name)
              for name in used):
        wire_prefix += "_"

    reg_of_gid: dict[int, str] = {}
    for base, word in reg_words.items():
        decl = reg_decl_names[base]
        for index, gid in word.items():
            reg_of_gid[gid] = decl if base in scalar_regs \
                else f"{decl}[{index}]"

    def token(net: int) -> str:
        gate = gates[net]
        gtype = gate.gtype
        if gtype == GateType.INPUT:
            name = gate.name or f"pi_{net}"
            base, index = _split_bit_name(name)
            return base if name == base else f"{base}[{index}]"
        if gtype == GateType.CONST0:
            return "1'b0"
        if gtype == GateType.CONST1:
            return "1'b1"
        if gtype == GateType.DFF:
            return reg_of_gid[net]
        return f"{wire_prefix}{net}"

    _OPS = {
        GateType.AND: " & ", GateType.NAND: " & ",
        GateType.OR: " | ", GateType.NOR: " | ",
        GateType.XOR: " ^ ", GateType.XNOR: " ^ ",
    }

    def gate_expr(gid: int) -> str:
        gate = gates[gid]
        gtype = gate.gtype
        operands = [token(f) for f in gate.fanins]
        if gtype == GateType.BUF:
            return operands[0]
        if gtype == GateType.NOT:
            return f"~{operands[0]}"
        if gtype == GateType.MUX:
            select, data0, data1 = operands
            return f"{select} ? {data1} : {data0}"
        joined = _OPS[gtype].join(operands)
        if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
            return f"~({joined})"
        return joined

    # -- assemble the module text.
    ports: list[str] = []
    seen_bases: set[str] = set()
    for name in input_names:
        base, _ = _split_bit_name(name)
        if base in seen_bases:
            continue
        seen_bases.add(base)
        ports.append(_port_decl("input", base, in_words[base], input_names))
    if added_clock:
        ports.append(f"input {clock_name}")
    for name in output_names:
        base, _ = _split_bit_name(name)
        if base in seen_bases:
            continue
        seen_bases.add(base)
        ports.append(_port_decl("output", base, out_words[base],
                                output_names, reg=base in output_regs))

    lines = [f"// emitted by repro.netlist.emit from netlist "
             f"'{netlist.name}'"]
    if added_clock:
        lines.append(f"// note: clock input '{clock_name}' was added "
                     f"(no scalar input named '{clock}' existed)")
    lines.append(f"module {netlist.name} (")
    lines.extend(f"  {port}," for port in ports[:-1])
    if ports:
        lines.append(f"  {ports[-1]}")
    lines.append(");")

    for base in sorted(reg_words):
        if base in output_regs:
            continue
        decl = reg_decl_names[base]
        if base in scalar_regs:
            lines.append(f"  reg {decl};")
        else:
            # Declare at least two bits: a '[0:0]' reg would re-elaborate
            # under the plain name, losing the '<base>[0]' register
            # correspondence.  A padded upper bit elaborates into a dead
            # hold flip-flop that matches nothing and stays free in the
            # equivalence check.
            width = max(max(reg_words[base]) + 1, 2)
            lines.append(f"  reg [{width - 1}:0] {decl};")

    comb = [
        gid for gid in netlist.topological_order()
        if not gates[gid].is_source and not gates[gid].is_register
    ]
    for gid in comb:
        lines.append(f"  wire {wire_prefix}{gid};")
    for gid in comb:
        lines.append(f"  assign {wire_prefix}{gid} = {gate_expr(gid)};")

    for name, net in netlist.outputs:
        base, index = _split_bit_name(name)
        if base in output_regs:
            continue
        target = base if name == base else f"{base}[{index}]"
        lines.append(f"  assign {target} = {token(net)};")

    if reg_map:
        lines.append(f"  always @(posedge {clock_name}) begin")
        for base in sorted(reg_words):
            word = reg_words[base]
            for index in sorted(word):
                gid = word[index]
                data = gates[gid].fanins[0]
                lines.append(
                    f"    {reg_of_gid[gid]} <= {token(data)};")
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
