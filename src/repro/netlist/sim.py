"""Compiled, pattern-parallel netlist simulation engine.

:func:`repro.netlist.logic.simulate` is an interpreter: one dict lookup, one
type dispatch and one Python-level boolean op per gate per stimulus pattern.
This module trades a one-off compile step for a much faster steady state:

* :func:`compile_netlist` levelizes the netlist once and emits a flat,
  straight-line Python function (generated source + ``exec``) with one
  bitwise expression per live gate — no per-gate dict lookups or type
  dispatch.  Constants are folded at compile time, BUF chains collapse into
  aliases, and gates outside the output/next-state cone are skipped.
* Every net is represented as a single Python int holding up to W stimulus
  patterns, one per bit, so ``a & b`` evaluates an AND gate across all W
  patterns in one interpreter step.  ``NOT x`` is ``x ^ M`` where ``M`` is
  the W-bit all-ones mask.
* :class:`CompiledSim` wraps the compiled function in a stateful API
  (``reset`` / ``load_state`` / ``step`` / ``run_batch`` / ``run_parallel``)
  mirroring :class:`repro.netlist.interp.Interpreter`, so the same
  word-level test harnesses drive either engine.

Compilation results are cached on the netlist (keyed by its structural
``version``), so repeated :func:`simulate_compiled` calls — e.g. SAT
counterexample replay — compile at most once per netlist revision.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..obs import get_tracer
from .aig import _AND, AIG, lit_compl, lit_node
from .logic import GateType, Netlist, NetlistError

_BIT_SUFFIX = re.compile(r"^(.+)\[(\d+)\]$")


def _split_bit_name(name: str) -> tuple[str, int]:
    """``"port[7]" -> ("port", 7)``; plain names map to bit 0."""
    match = _BIT_SUFFIX.match(name)
    if match is None:
        return name, 0
    return match.group(1), int(match.group(2))


def input_word_widths(netlist: "Netlist | AIG") -> dict[str, int]:
    """Word width of each input port, derived from its bit-blasted names."""
    widths: dict[str, int] = {}
    for name in netlist.input_names():
        base, _ = _split_bit_name(name)
        widths[base] = widths.get(base, 0) + 1
    return widths


def _tuple_expr(items: Sequence[str]) -> str:
    if not items:
        return "()"
    return "(" + ", ".join(items) + ",)"


def _aig_codegen(aig: AIG, fn_name: str, node_ids: Iterable[int]
                 ) -> tuple[list[str], dict[int, str]]:
    """Shared straight-line codegen core for AIG evaluators.

    Emits the ``def``/unpack prologue plus one ``nX = a & b`` line per AND
    node in ``node_ids`` (which must be ascending, i.e. topological).
    Returns the source lines and a map from node id to its value *atom*
    (``"0"``, an input/state local, or the node's own local); use
    :func:`_aig_lit_expr` to read a literal with its complement applied.
    """
    input_pos = {nid: k for k, nid in enumerate(aig.inputs)}
    reg_pos = {nid: k for k, nid in enumerate(aig.latches)}
    lines = [f"def {fn_name}(I, S, M):"]
    if aig.inputs:
        unpack = _tuple_expr([f"i{k}" for k in range(len(aig.inputs))])
        lines.append(f"    {unpack} = I")
    if aig.latches:
        unpack = _tuple_expr([f"s{k}" for k in range(len(aig.latches))])
        lines.append(f"    {unpack} = S")
    exprs: dict[int, str] = {}
    for nid in node_ids:
        if nid == 0:
            exprs[nid] = "0"
        elif nid in input_pos:
            exprs[nid] = f"i{input_pos[nid]}"
        elif nid in reg_pos:
            exprs[nid] = f"s{reg_pos[nid]}"
        else:
            f0, f1 = aig.fanins(nid)
            lines.append(f"    n{nid} = {_aig_lit_expr(exprs, f0)} & "
                         f"{_aig_lit_expr(exprs, f1)}")
            exprs[nid] = f"n{nid}"
    return lines, exprs


def _aig_lit_expr(exprs: dict[int, str], lit: int) -> str:
    """Source expression for an AIG literal over the node atom map."""
    expr = exprs[lit_node(lit)]
    if not lit_compl(lit):
        return expr
    if expr == "0":
        return "M"
    return f"({expr} ^ M)"


class CompiledNetlist:
    """A netlist (or AIG) lowered to one straight-line Python function.

    The generated function has the signature ``_cycle(I, S, M)`` where ``I``
    is a tuple of packed primary-input values (``netlist.inputs`` order),
    ``S`` a tuple of packed flip-flop Q values (``netlist.registers`` /
    ``aig.latches`` order) and ``M`` the pattern mask (``(1 << W) - 1`` for
    W packed patterns).  It returns ``(outputs, next_state)`` tuples in
    ``netlist.outputs`` / register order.

    An :class:`~repro.netlist.aig.AIG` compiles directly — every node is
    already a two-input AND with complement edges, so codegen is one
    bitwise op per node with no BUF-collapse or constant-folding pre-pass
    (hash-consing did that at construction time).

    The generated source is kept on :attr:`source` for inspection.
    """

    def __init__(self, netlist: "Netlist | AIG"):
        self.netlist = netlist
        self.name = netlist.name
        self.version = netlist.version
        self.input_gids = list(netlist.inputs)
        self.input_names = netlist.input_names()
        self.output_names = netlist.output_names()
        if isinstance(netlist, AIG):
            self.registers = list(netlist.latches)
            self.register_names = netlist.latch_names()
        else:
            self.registers = netlist.registers
            gates = netlist.gates
            self.register_names = [
                gates[gid].name or f"dff_{gid}" for gid in self.registers
            ]
        #: (port base, bit index) per primary input / output, word packing.
        self._in_bits = [_split_bit_name(n) for n in self.input_names]
        self._out_bits = [_split_bit_name(n) for n in self.output_names]
        #: register word name -> [(bit index, state position)], for
        #: :meth:`CompiledSim.load_state` / ``flat_state``.
        self._reg_words: dict[str, list[tuple[int, int]]] = {}
        for pos, rname in enumerate(self.register_names):
            base, index = _split_bit_name(rname)
            self._reg_words.setdefault(base, []).append((index, pos))
        self.source = (self._generate_aig() if isinstance(netlist, AIG)
                       else self._generate())
        namespace: dict = {"__builtins__": {}}
        exec(compile(self.source, f"<compiled:{self.name}>", "exec"),
             namespace)
        self._fn = namespace["_cycle"]

    # -- code generation -----------------------------------------------------

    def _generate_aig(self) -> str:
        """Straight-line codegen from an AIG: one bitwise op per AND node."""
        aig = self.netlist
        missing = [aig.node_name(nid) or f"latch_{nid}"
                   for nid in self.registers if nid not in aig._next]
        if missing:
            raise NetlistError(
                f"cannot compile AIG: latches without a next-state "
                f"function: {', '.join(missing)}"
            )
        roots = aig.and_roots()
        cone = aig.cone(roots) if roots else set()
        lines, exprs = _aig_codegen(aig, "_cycle", sorted(cone))
        out_exprs = [_aig_lit_expr(exprs, lit) for _, lit in aig.outputs]
        ns_exprs = [_aig_lit_expr(exprs, aig._next[nid])
                    for nid in self.registers]
        lines.append(f"    return {_tuple_expr(out_exprs)}, "
                     f"{_tuple_expr(ns_exprs)}")
        return "\n".join(lines) + "\n"

    def _generate(self) -> str:
        netlist = self.netlist
        gates = netlist.gates
        roots = [net for _, net in netlist.outputs]
        roots.extend(gates[gid].fanins[0] for gid in self.registers)
        roots.extend(self.registers)
        cone = netlist.transitive_fanin(roots) if roots else set()

        input_pos = {gid: k for k, gid in enumerate(self.input_gids)}
        reg_pos = {gid: k for k, gid in enumerate(self.registers)}
        #: Every net's value as a source *atom*: a local variable name,
        #: ``"0"`` or ``"M"`` — aliases collapse BUF chains and folded
        #: constants without emitting code.
        exprs: dict[int, str] = {}
        consts: dict[int, int] = {}
        lines: list[str] = ["def _cycle(I, S, M):"]
        if self.input_gids:
            unpack = _tuple_expr([f"i{k}" for k in range(len(self.input_gids))])
            lines.append(f"    {unpack} = I")
        if self.registers:
            unpack = _tuple_expr([f"s{k}" for k in range(len(self.registers))])
            lines.append(f"    {unpack} = S")

        def emit(gid: int, expr: str) -> None:
            lines.append(f"    n{gid} = {expr}")
            exprs[gid] = f"n{gid}"

        def alias(gid: int, fid: int) -> None:
            exprs[gid] = exprs[fid]
            if fid in consts:
                consts[gid] = consts[fid]

        def set_const(gid: int, value: int) -> None:
            consts[gid] = value
            exprs[gid] = "M" if value else "0"

        def and_or(gid: int, fanins: tuple[int, ...], is_and: bool,
                   invert: bool) -> None:
            dominating = 0 if is_and else 1
            ops: list[str] = []
            seen: set[int] = set()
            for fid in fanins:
                c = consts.get(fid)
                if c is not None:
                    if c == dominating:
                        set_const(gid, dominating ^ invert)
                        return
                    continue  # identity operand folds away
                if fid in seen:
                    continue  # x & x == x, x | x == x
                seen.add(fid)
                ops.append(exprs[fid])
            if not ops:
                set_const(gid, (1 - dominating) ^ invert)
                return
            joined = (" & " if is_and else " | ").join(ops)
            if invert:
                emit(gid, f"({joined}) ^ M" if len(ops) > 1
                     else f"{ops[0]} ^ M")
            elif len(ops) == 1:
                exprs[gid] = ops[0]
            else:
                emit(gid, joined)

        def xor(gid: int, fanins: tuple[int, ...], invert: bool) -> None:
            parity = 1 if invert else 0
            counts: dict[int, int] = {}
            order_ids: list[int] = []
            for fid in fanins:
                c = consts.get(fid)
                if c is not None:
                    parity ^= c
                    continue
                if fid not in counts:
                    order_ids.append(fid)
                counts[fid] = counts.get(fid, 0) + 1
            ops = [exprs[fid] for fid in order_ids if counts[fid] % 2]
            if not ops:
                set_const(gid, parity)
                return
            if parity:
                ops.append("M")
            if len(ops) == 1:
                exprs[gid] = ops[0]
            else:
                emit(gid, " ^ ".join(ops))

        def mux(gid: int, fanins: tuple[int, ...]) -> None:
            sel, d0, d1 = fanins
            cs = consts.get(sel)
            if cs is not None:
                alias(gid, d1 if cs else d0)
                return
            if exprs[d0] == exprs[d1]:
                alias(gid, d0)
                return
            se, e0, e1 = exprs[sel], exprs[d0], exprs[d1]
            c0, c1 = consts.get(d0), consts.get(d1)
            if c0 == 0 and c1 == 1:
                exprs[gid] = se
            elif c0 == 1 and c1 == 0:
                emit(gid, f"{se} ^ M")
            elif c1 == 1:
                emit(gid, f"{se} | {e0}")
            elif c1 == 0:
                emit(gid, f"({se} ^ M) & {e0}")
            elif c0 == 0:
                emit(gid, f"{se} & {e1}")
            elif c0 == 1:
                emit(gid, f"({se} ^ M) | {e1}")
            else:
                emit(gid, f"({se} & {e1}) | (({se} ^ M) & {e0})")

        for gid in netlist.topological_order():
            if gid not in cone:
                continue
            gate = gates[gid]
            gtype = gate.gtype
            if gtype == GateType.INPUT:
                exprs[gid] = f"i{input_pos[gid]}"
            elif gtype == GateType.DFF:
                exprs[gid] = f"s{reg_pos[gid]}"
            elif gtype == GateType.CONST0:
                set_const(gid, 0)
            elif gtype == GateType.CONST1:
                set_const(gid, 1)
            elif gtype == GateType.BUF:
                alias(gid, gate.fanins[0])
            elif gtype == GateType.NOT:
                fid = gate.fanins[0]
                c = consts.get(fid)
                if c is not None:
                    set_const(gid, 1 - c)
                else:
                    emit(gid, f"{exprs[fid]} ^ M")
            elif gtype in (GateType.AND, GateType.NAND):
                and_or(gid, gate.fanins, is_and=True,
                       invert=gtype == GateType.NAND)
            elif gtype in (GateType.OR, GateType.NOR):
                and_or(gid, gate.fanins, is_and=False,
                       invert=gtype == GateType.NOR)
            elif gtype in (GateType.XOR, GateType.XNOR):
                xor(gid, gate.fanins, invert=gtype == GateType.XNOR)
            elif gtype == GateType.MUX:
                mux(gid, gate.fanins)
            else:  # pragma: no cover - GateType is closed
                raise NetlistError(f"cannot compile gate type {gtype.value}")

        out_exprs = [exprs[net] for _, net in netlist.outputs]
        ns_exprs = [exprs[gates[gid].fanins[0]] for gid in self.registers]
        lines.append(f"    return {_tuple_expr(out_exprs)}, "
                     f"{_tuple_expr(ns_exprs)}")
        return "\n".join(lines) + "\n"

    # -- raw packed interface ------------------------------------------------

    def run(self, inputs: Sequence[int], state: Sequence[int],
            mask: int = 1) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """One packed cycle over raw per-net values.

        ``inputs`` / ``state`` follow ``netlist.inputs`` /
        ``netlist.registers`` order; each int carries one pattern per bit
        under ``mask``.  Returns packed ``(outputs, next_state)`` tuples.
        """
        return self._fn(tuple(inputs), tuple(state), mask)

    # -- word-level single-pattern interface ---------------------------------

    def run_words(self, inputs: Mapping[str, int], state: Sequence[int]
                  ) -> tuple[dict[str, int], tuple[int, ...]]:
        """One single-pattern cycle with word-level port values.

        ``inputs`` maps port base names to unsigned integers (the
        :func:`~repro.netlist.elaborate.simulate_vectors` convention);
        outputs are packed back the same way.
        """
        try:
            packed = tuple(
                (int(inputs[base]) >> index) & 1
                for base, index in self._in_bits
            )
        except KeyError as exc:
            raise KeyError(
                f"missing value for input port '{exc.args[0]}'"
            ) from None
        out_bits, next_state = self._fn(packed, tuple(state), 1)
        outputs: dict[str, int] = {}
        for (base, index), bit in zip(self._out_bits, out_bits):
            outputs[base] = outputs.get(base, 0) | (bit << index)
        return outputs, next_state

    def pack_state(self, state: Optional[Mapping[int, int]]
                   ) -> tuple[int, ...]:
        """A ``{register gid: Q bit}`` map as a registers-order state tuple."""
        if not state:
            return (0,) * len(self.registers)
        return tuple(int(bool(state.get(gid, 0))) for gid in self.registers)


def compile_netlist(netlist: Union[Netlist, AIG]) -> CompiledNetlist:
    """Compile (or fetch the cached compilation of) a netlist or AIG.

    The result is cached on the netlist/AIG and keyed by its structural
    ``version``, so callers may invoke this per cycle without paying
    recompilation; any mutation triggers a fresh compile on the next call.
    """
    cached = netlist._compiled_cache
    if cached is not None and cached.version == netlist.version:
        return cached
    with get_tracer().span("sim.compile", design=netlist.name) as span:
        compiled = CompiledNetlist(netlist)
        span.set(inputs=len(compiled.input_names),
                 registers=len(compiled.registers))
    netlist._compiled_cache = compiled
    return compiled


def simulate_compiled(netlist: Netlist, input_values: Mapping[str, int],
                      state: Optional[Mapping[int, int]] = None
                      ) -> tuple[dict[str, int], dict[int, int]]:
    """Drop-in replacement for :func:`repro.netlist.logic.simulate`.

    Same bit-level contract — ``input_values`` maps primary-input *bit*
    names to 0/1, ``state`` maps register gate ids to Q values — but one
    compiled straight-line call instead of a per-gate interpretation loop.
    """
    compiled = compile_netlist(netlist)
    packed = []
    for name in compiled.input_names:
        if name not in input_values:
            raise NetlistError(f"missing value for input '{name}'")
        packed.append(int(bool(input_values[name])))
    out_bits, ns_bits = compiled._fn(tuple(packed),
                                     compiled.pack_state(state), 1)
    outputs = dict(zip(compiled.output_names, out_bits))
    next_state = dict(zip(compiled.registers, ns_bits))
    return outputs, next_state


#: Cached elementary truth tables, keyed by variable count.
_ELEMENTARY: dict[int, tuple[int, ...]] = {}


def elementary_words(num_vars: int) -> tuple[int, ...]:
    """The packed *elementary* truth tables over ``num_vars`` variables.

    Word ``i`` enumerates variable ``i`` across all ``2**num_vars``
    assignments — bit ``m`` of word ``i`` is ``(m >> i) & 1``, so var 0 is
    ``0b...0101...``, var 1 is ``0b...0011...``, and so on.  Feeding these
    words into :func:`packed_eval` as a cone's leaf values turns the
    word-parallel simulator into a truth-table computer: each evaluated
    node's word *is* its truth table over those leaves.  This is the input
    convention the cut kernel (:mod:`repro.netlist.opt.cut`) builds on.
    """
    cached = _ELEMENTARY.get(num_vars)
    if cached is None:
        span = 1 << num_vars
        words = []
        for i in range(num_vars):
            block = (1 << (1 << i)) - 1
            word = 0
            for start in range(1 << i, span, 1 << (i + 1)):
                word |= block << start
            words.append(word)
        cached = tuple(words)
        _ELEMENTARY[num_vars] = cached
    return cached


def packed_eval(aig: AIG, words: dict[int, int], mask: int,
                nodes: Iterable[int]) -> dict[int, int]:
    """Word-parallel evaluation of AND ``nodes`` over preset leaf words.

    The packed-evaluation core shared by :func:`aig_signatures` (random
    stimulus over the whole graph, FRAIG/CEC signatures) and the per-cut
    truth tables of :mod:`repro.netlist.opt.cut` (elementary words over a
    cut's leaves).  ``words`` maps node id to packed value — one pattern
    per bit under ``mask`` — and must already hold every non-AND node the
    cone reads; each AND node in ``nodes`` (ascending ids, which is
    topological order) is assigned ``f0 & f1`` with complement edges read
    as ``value ^ mask``.  ``words`` is updated in place and returned.
    """
    f0s, f1s = aig._fanin0, aig._fanin1
    for nid in nodes:
        f0 = f0s[nid]
        f1 = f1s[nid]
        a = words[f0 >> 1]
        if f0 & 1:
            a ^= mask
        b = words[f1 >> 1]
        if f1 & 1:
            b ^= mask
        words[nid] = a & b
    return words


def aig_signatures(aig: AIG, inputs: Sequence[int], state: Sequence[int],
                   mask: int) -> tuple[int, ...]:
    """Packed simulation values for *every* node of an AIG.

    ``inputs`` / ``state`` follow ``aig.inputs`` / ``aig.latches`` order;
    each int packs one stimulus pattern per bit under ``mask``.  The result
    is indexed by node id and holds each node's (positive-literal) value —
    the simulation *signature* FRAIG partitions candidate-equivalence
    classes by.  One :func:`packed_eval` sweep over the node array: the
    same word-packing core computes cut truth tables when fed
    :func:`elementary_words` instead of random stimulus.
    """
    words: dict[int, int] = {0: 0}
    words.update(zip(aig.inputs, inputs))
    words.update(zip(aig.latches, state))
    kinds = aig._kind
    packed_eval(aig, words, mask,
                (nid for nid in range(aig.num_nodes) if kinds[nid] == _AND))
    return tuple(words[nid] for nid in range(aig.num_nodes))


class CompiledSim:
    """Stateful driver around a :class:`CompiledNetlist`.

    Mirrors the :class:`repro.netlist.interp.Interpreter` surface —
    :meth:`reset`, :meth:`load_state`, :meth:`flat_state`, :meth:`step`,
    :meth:`run_batch` — plus :meth:`run_parallel`, which packs up to W
    independent stimulus sequences into the bit lanes of each net so every
    bitwise op advances all W sequences at once.
    """

    def __init__(self, netlist: "Netlist | CompiledNetlist"):
        self.compiled = (
            netlist if isinstance(netlist, CompiledNetlist)
            else compile_netlist(netlist)
        )
        self._state: list[int] = [0] * len(self.compiled.registers)

    def reset(self) -> None:
        """Clear all register state back to zero."""
        self._state = [0] * len(self.compiled.registers)

    def load_state(self, flat: Mapping[str, int]) -> None:
        """Seed register state from word-level register names.

        Keys are the flip-flop names used by the elaborator (dotted
        hierarchical paths, e.g. ``"counter.q"``) with word values —
        the shape produced by
        :meth:`repro.netlist.sat.Counterexample.packed_state` and
        consumed by :meth:`Interpreter.load_state`.  Unknown names and
        out-of-range values are rejected; unmentioned registers reset to 0.
        """
        reg_words = self.compiled._reg_words
        state = [0] * len(self.compiled.registers)
        for name, value in flat.items():
            bits = reg_words.get(name)
            if bits is None:
                raise NetlistError(
                    f"'{name}' does not name a register of the design"
                )
            width = max(index for index, _ in bits) + 1
            if not 0 <= int(value) < (1 << width):
                raise NetlistError(
                    f"value {value} does not fit register '{name}' "
                    f"([{width - 1}:0])"
                )
            for index, pos in bits:
                state[pos] = (int(value) >> index) & 1
        self._state = state

    def flat_state(self) -> dict[str, int]:
        """Current register state as word-level register names."""
        flat: dict[str, int] = {}
        for name, bits in sorted(self.compiled._reg_words.items()):
            word = 0
            for index, pos in bits:
                word |= self._state[pos] << index
            flat[name] = word
        return flat

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Execute one clock cycle: returns outputs, then advances state."""
        outputs, next_state = self.compiled.run_words(inputs, self._state)
        self._state = list(next_state)
        return outputs

    def run_batch(self, vectors: Iterable[Mapping[str, int]]
                  ) -> list[dict[str, int]]:
        """Execute a sequence of word-level input vectors, one per cycle."""
        compiled = self.compiled
        run_words = compiled.run_words
        state: Sequence[int] = self._state
        results: list[dict[str, int]] = []
        for vector in vectors:
            outputs, state = run_words(vector, state)
            results.append(outputs)
        self._state = list(state)
        return results

    def run_parallel(self, sequences: Sequence[Sequence[Mapping[str, int]]]
                     ) -> list[list[dict[str, int]]]:
        """Run W independent stimulus sequences in packed bit lanes.

        Each sequence starts from a private copy of the current register
        state; lane ``j`` of every net holds sequence ``j``'s value, so the
        result is bit-for-bit what :meth:`run_batch` would produce for each
        sequence individually — at roughly ``1/W`` of the per-gate work.
        Sequences may have different lengths (shorter lanes simply stop
        producing outputs).  The simulator's own state is left untouched.
        """
        lanes = len(sequences)
        if lanes == 0:
            return []
        compiled = self.compiled
        fn = compiled._fn
        in_bits = compiled._in_bits
        out_bits = compiled._out_bits
        mask = (1 << lanes) - 1
        # Replicate each current state bit across all lanes.
        state = tuple(mask if bit else 0 for bit in self._state)
        lengths = [len(seq) for seq in sequences]
        results: list[list[dict[str, int]]] = [[] for _ in range(lanes)]
        for t in range(max(lengths)):
            packed: list[int] = []
            for base, index in in_bits:
                acc = 0
                for j, seq in enumerate(sequences):
                    if t < lengths[j]:
                        try:
                            word = seq[t][base]
                        except KeyError:
                            raise KeyError(
                                f"missing value for input port '{base}'"
                            ) from None
                        acc |= ((int(word) >> index) & 1) << j
                packed.append(acc)
            outs, state = fn(tuple(packed), state, mask)
            for j in range(lanes):
                if t >= lengths[j]:
                    continue
                outputs: dict[str, int] = {}
                for (base, index), value in zip(out_bits, outs):
                    bit = (value >> j) & 1
                    outputs[base] = outputs.get(base, 0) | (bit << index)
                results[j].append(outputs)
        return results
