"""A high-performance CDCL SAT solver built on flat integer arrays.

This is the hot path of every formal query in the repository — FRAIG
candidate proofs, miter-based CEC, counterexample refinement all bottom
out here — so the engine is organized the way MiniSat/Glucose organize
theirs, translated to what is fast in CPython:

* **clause arena** — all clause literals live in one ``array('i')``
  pool; a clause is an integer *cref* indexing parallel offset/length/LBD
  tables.  No per-clause Python object, no list-of-lists pointer chasing.
* **dense watch tables** — two-watched-literal lists are indexed by
  *encoded literal* (``var << 1 | sign``) in a plain list of length
  ``2 * (num_vars + 1)``: one index op instead of a dict hash per visit.
* **binary-clause special-casing** — two-literal clauses never enter the
  arena; each literal carries a flat implication list, so propagating a
  binary costs one list scan and zero watch surgery.
* **VSIDS on a binary heap** — decisions pop the max-activity variable
  in O(log n) (the old engine scanned all variables per decision) from a
  C-implemented lazy heap: entries are ``(-activity, var)`` pushed on
  unassignment and invalidated rather than moved (a variable is only
  bumped while assigned, so its freshest entry is always current), and
  zero-activity variables bypass the heap through an O(1) LIFO pool
  since their ties may break arbitrarily.  Activities bump on conflict
  and decay geometrically, with the usual 1e100 rescale.
* **phase saving** — each variable remembers its last assigned polarity
  and is re-decided that way, so restarts keep the satisfying prefix the
  search had already built.
* **Luby restarts** — restart intervals follow the Luby sequence
  (``luby(i) * 100`` conflicts), the strategy with optimal worst-case
  behaviour for randomized search.
* **LBD clause-database reduction** — learned clauses are scored by
  *literal block distance* at learn time; when the learned set outgrows
  its budget the worst half (highest LBD, longest) is dropped — glue
  clauses (LBD <= 2) and reason clauses of the current trail are always
  kept — and the arena is garbage-collected when enough of it is dead.

Propagation runs as a tight loop over local variable bindings (no
attribute lookups or dict hashing per literal), and conflict analysis
writes into preallocated ``seen`` buffers.

The solver is **incremental** in the MiniSat style: :meth:`Solver.solve`
accepts *assumptions* (literals forced as the first decisions; an UNSAT
verdict then only holds under those assumptions), and between calls new
variables and clauses may be added with :meth:`Solver.ensure_vars` /
:meth:`Solver.add_clause` / :meth:`Solver.add_clauses`.  Learned clauses
and variable activities carry over, so a sequence of related queries —
FRAIG's candidate-equivalence checks over one shared cone encoding —
gets cheaper as it proceeds.

``Solver(num_vars, clauses)`` streams ``clauses`` straight into the
arena: any iterable of literal iterables works and nothing is
materialized per clause, so one-shot callers (the CEC path) pay no
intermediate copy.

The original compact solver survives as
:class:`repro.netlist.sat.reference.ReferenceSolver` — the randomized
tests cross-check this engine against it, and ``scripts/bench.py``
measures the old-vs-new split into ``BENCH_sat.json``.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Callable, Iterable, Optional

#: Restart interval in conflicts is ``luby(i) * _RESTART_BASE``.
_RESTART_BASE = 100
#: Variable activity decay: ``var_inc`` grows by 1/0.95 per conflict.
_VAR_DECAY = 0.95
#: Learned clauses with LBD at or below this are "glue" and never reduced.
_GLUE_LBD = 2
#: Vivify the surviving learned clauses every this many DB reductions.
_VIVIFY_PERIOD = 2
#: At most this many learned clauses are probed per vivification round.
_VIVIFY_MAX_CLAUSES = 128
#: Propagation budget per vivification round (stops runaway probing).
_VIVIFY_PROP_BUDGET = 200_000


def luby(i: int) -> int:
    """The ``i``-th term (1-based) of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if i < 1:
        raise ValueError("luby is defined for i >= 1")
    while True:
        k = i.bit_length()
        if i + 1 == 1 << k:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


@dataclass
class SolverStats:
    """Search statistics, cumulative over a :class:`Solver`'s lifetime."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    restarts: int = 0
    #: Sum of learned-clause LBD scores (``lbd_sum / learned_clauses`` is
    #: the mean glue level — lower means tighter learning).
    lbd_sum: int = 0
    #: Learned clauses dropped by database reduction.
    reduced_clauses: int = 0
    #: Arena garbage-collection compactions.
    gc_runs: int = 0
    #: Learned clauses strengthened (or deleted) by inprocessing
    #: vivification — see ``Solver._vivify``.
    vivified: int = 0

    @property
    def mean_lbd(self) -> float:
        """Mean glue level of the learned clauses (0.0 before any learn)."""
        if self.learned_clauses == 0:
            return 0.0
        return self.lbd_sum / self.learned_clauses

    def accumulate(self, other: "SolverStats") -> None:
        """Add another stats record into this one (multi-solver rollups:
        FRAIG aggregates its per-round solver instances this way)."""
        self.decisions += other.decisions
        self.conflicts += other.conflicts
        self.propagations += other.propagations
        self.learned_clauses += other.learned_clauses
        self.learned_literals += other.learned_literals
        self.restarts += other.restarts
        self.lbd_sum += other.lbd_sum
        self.reduced_clauses += other.reduced_clauses
        self.gc_runs += other.gc_runs
        self.vivified += other.vivified

    def to_dict(self) -> dict:
        return {
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
            "learned_literals": self.learned_literals,
            "restarts": self.restarts,
            "lbd_sum": self.lbd_sum,
            "mean_lbd": self.mean_lbd,
            "reduced_clauses": self.reduced_clauses,
            "gc_runs": self.gc_runs,
            "vivified": self.vivified,
        }


class Model:
    """Lazy satisfying assignment: a mapping from variable to bool.

    Materializing a dict over every variable per :meth:`Solver.solve`
    call costs O(num_vars) — pure waste for incremental callers like
    FRAIG that read a handful of leaf variables out of thousands.  This
    snapshots the assignment with one C-level list copy and answers
    lookups on demand, while still comparing equal to the plain dict the
    historical API returned.
    """

    __slots__ = ("_val", "_n")

    def __init__(self, val: list[int], num_vars: int) -> None:
        self._val = val
        self._n = num_vars

    def __getitem__(self, var: int) -> bool:
        if not 1 <= var <= self._n:
            raise KeyError(var)
        return self._val[var << 1] > 0

    def get(self, var: int, default=None):
        if 1 <= var <= self._n:
            return self._val[var << 1] > 0
        return default

    def __contains__(self, var: object) -> bool:
        return isinstance(var, int) and 1 <= var <= self._n

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return iter(range(1, self._n + 1))

    def keys(self):
        return range(1, self._n + 1)

    def values(self):
        return (self._val[v << 1] > 0 for v in range(1, self._n + 1))

    def items(self):
        return ((v, self._val[v << 1] > 0) for v in range(1, self._n + 1))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Model):
            return self._n == other._n and \
                all(a == b for a, b in zip(self.values(), other.values()))
        if isinstance(other, dict):
            return len(other) == self._n and \
                all(other.get(v) == (self._val[v << 1] > 0)
                    for v in range(1, self._n + 1))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Model({dict(self.items())!r})"


@dataclass
class SolverResult:
    """SAT/UNSAT verdict plus a model (var -> bool) when satisfiable."""

    satisfiable: bool
    model: Optional["Model | dict[int, bool]"] = None
    stats: SolverStats = field(default_factory=SolverStats)


class Solver:
    """CDCL solver over clauses of non-zero integer (DIMACS) literals.

    Internally literals are *encoded*: variable ``v``'s positive literal
    is ``v << 1``, its negation ``v << 1 | 1``, so ``lit ^ 1`` negates,
    ``lit >> 1`` recovers the variable, and every per-literal table is a
    dense list.  The public API speaks DIMACS throughout.
    """

    def __init__(self, num_vars: int,
                 clauses: Iterable[Iterable[int]] = ()) -> None:
        self.num_vars = num_vars
        n = num_vars + 1
        # Clause arena: one flat literal pool + parallel cref tables.
        self.lits = array("i")
        self.c_off = array("i")
        self.c_len = array("i")
        self.c_lbd = array("i")     # 0 = problem clause, >0 = learned
        # Dense per-encoded-literal tables.
        self.watches: list[list[int]] = [[] for _ in range(2 * n)]
        self.bins: list[list[int]] = [[] for _ in range(2 * n)]
        # Per-encoded-literal value: 1 true, -1 false, 0 unassigned
        # (``val[l]`` and ``val[l ^ 1]`` are kept mirrored).
        self.val = [0] * (2 * n)
        # Per-variable state, 1-indexed.
        self.level = [0] * n
        self.reason = [-1] * n      # -1 decision/none, >=0 cref,
        #                             <=-2 binary: other lit is -2 - reason
        self.activity = [0.0] * n
        self.saved = [1] * n        # saved phase bit (1 = negative first)
        self.seen = bytearray(n)    # conflict-analysis scratch
        # VSIDS decision order: a binary min-heap of ``(-activity, var)``
        # entries (C-implemented heapq) for variables with nonzero
        # activity, plus an O(1) LIFO pool for zero-activity ones (ties
        # may break arbitrarily, so they skip heap discipline — the
        # dominant case for FRAIG's conflict-light incremental queries).
        # The heap is *lazy*: entries are pushed on unassignment and
        # invalidated rather than moved — a variable is only ever bumped
        # while assigned, so an unassigned variable's freshest entry
        # always carries its current activity, and stale entries are
        # recognized (assigned var, or activity mismatch) and dropped at
        # pop time.
        self.heap: list[tuple[float, int]] = []
        self.pool: list[int] = list(range(1, n))
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.stats = SolverStats()
        self.var_inc = 1.0
        self.learnts: list[int] = []
        self.max_learnts = 0
        self.num_problem = 0
        self.wasted = 0             # dead literal slots in the arena
        self._unsat = False
        self._pending_units: list[int] = []
        # MiniSat-style progress reporting: every ``_progress_interval``
        # conflicts the solve loop calls ``_progress_cb`` with a snapshot
        # dict (see set_progress).  None means disabled — the only cost
        # then is one identity check per conflict.
        self._progress_cb: Optional[Callable[[dict], None]] = None
        self._progress_interval = 2000
        # DRAT proof sink (see set_proof).  None means disabled — the only
        # cost then is one attribute check per conflict.
        self._proof = None
        self._reduce_count = 0
        for clause in clauses:
            self._add_problem(clause)

    def set_progress(self, callback: Optional[Callable[[dict], None]],
                     interval: int = 2000) -> None:
        """Install (or clear, with ``None``) a search-progress callback.

        ``callback`` receives a dict every ``interval`` conflicts:
        ``conflicts``, ``restarts``, ``decisions``, ``propagations``,
        ``trail`` (current assignment depth), ``learned`` (live learned
        clauses), ``mean_lbd``, and ``props_per_second`` /
        ``conflicts_per_second`` measured over the current :meth:`solve`
        call — the numbers a MiniSat progress line prints.
        ``repro.obs.attach_solver_progress`` routes these into the
        active tracer as instant events and counter-track time series.
        """
        if interval < 1:
            raise ValueError("progress interval must be >= 1")
        self._progress_cb = callback
        self._progress_interval = interval

    def set_proof(self, sink) -> None:
        """Install (or clear, with ``None``) a DRAT proof sink.

        ``sink`` needs two methods, both taking an iterable of signed
        DIMACS literals: ``add(lits)`` is called for every learned clause
        (and with an empty iterable when the empty clause is derived),
        ``delete(lits)`` for every clause erased by reduce-DB.
        ``repro.netlist.sat.proof.ProofLog`` is the standard sink; the
        resulting proof is checkable with ``check_drat``.  Mirrors the
        null-object discipline of :meth:`set_progress`: when no sink is
        installed the solve loop pays one identity check per conflict.
        """
        self._proof = sink

    def seed_phases(self, phases) -> None:
        """Preload saved phases from a ``{var: bool}`` mapping.

        Phase saving re-decides each variable with its remembered
        polarity; seeding the memory before the first decision steers the
        search toward a known near-solution — the CEC path seeds from
        packed-simulation signatures, where each variable's majority
        value over the random patterns is a cheap guess at its value in
        a satisfying assignment.  Unknown variables are ignored.
        """
        saved = self.saved
        num_vars = self.num_vars
        for var, value in phases.items():
            if 1 <= var <= num_vars:
                saved[var] = 0 if value else 1

    def seed_activity(self, weights) -> None:
        """Boost initial VSIDS activities from a ``{var: weight}`` map.

        Weights are scaled by the current bump increment, so callers pass
        relative importance in ``[0, 1]`` — the CEC path passes
        fanout-normalized weights so highly shared miter nodes are
        decided first.  Seeded variables enter the decision heap
        immediately; the ordinary decay schedule erodes the seed, so a
        bad hint costs at most the opening decisions.
        """
        act = self.activity
        heap = self.heap
        val = self.val
        var_inc = self.var_inc
        num_vars = self.num_vars
        for var, weight in weights.items():
            if weight <= 0.0 or not 1 <= var <= num_vars:
                continue
            a = act[var] + weight * var_inc
            act[var] = a
            if val[var << 1] == 0:
                heappush(heap, (-a, var))

    def _progress_report(self, solve_start: float,
                         props_start: int, conf_start: int) -> dict:
        stats = self.stats
        elapsed = time.perf_counter() - solve_start
        props = stats.propagations - props_start
        confs = stats.conflicts - conf_start
        return {
            "conflicts": stats.conflicts,
            "restarts": stats.restarts,
            "decisions": stats.decisions,
            "propagations": stats.propagations,
            "trail": len(self.trail),
            "learned": len(self.learnts),
            "mean_lbd": round(stats.mean_lbd, 2),
            "props_per_second": round(props / elapsed) if elapsed > 0 else 0,
            "conflicts_per_second": (round(confs / elapsed)
                                     if elapsed > 0 else 0),
        }

    # -- clause management --------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe to ``num_vars`` (incremental use)."""
        grow = num_vars - self.num_vars
        if grow <= 0:
            return
        self.val.extend([0] * (2 * grow))
        self.watches.extend([] for _ in range(2 * grow))
        self.bins.extend([] for _ in range(2 * grow))
        self.level.extend([0] * grow)
        self.reason.extend([-1] * grow)
        self.activity.extend([0.0] * grow)
        self.saved.extend([1] * grow)
        self.seen.extend(bytes(grow))
        self.pool.extend(range(self.num_vars + 1, num_vars + 1))
        self.num_vars = num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a problem clause between :meth:`solve` calls.

        The clause is simplified against the root-level assignment so the
        watched-literal invariant survives: literals already false at level
        0 are dropped and clauses already satisfied at level 0 vanish.
        """
        self._add_problem(lits)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Bulk clause ingestion: stream an iterable of clauses into the
        arena with no per-clause overhead beyond :meth:`add_clause`'s
        simplification.  This is the entry point encoders should use."""
        add = self._add_problem
        for clause in clauses:
            add(clause)

    def _add_problem(self, clause: Iterable[int]) -> None:
        val = self.val
        level = self.level
        num_vars = self.num_vars
        out: list[int] = []
        seen: set[int] = set()
        for lit in clause:
            var = lit if lit > 0 else -lit
            if var == 0 or var > num_vars:
                raise ValueError(f"literal {lit} references an unknown var "
                                 f"(call ensure_vars first)")
            enc = (var << 1) | (lit < 0)
            if enc ^ 1 in seen:
                return  # tautology
            if enc in seen:
                continue
            v = val[enc]
            if v and level[var] == 0:
                if v > 0:
                    return  # satisfied at root
                continue    # false at root: drop the literal
            seen.add(enc)
            out.append(enc)
        self.num_problem += 1
        n = len(out)
        if n == 0:
            self._unsat = True
        elif n == 1:
            self._pending_units.append(out[0])
        elif n == 2:
            a, b = out
            self.bins[a].append(b)
            self.bins[b].append(a)
        else:
            self._new_clause(out, 0)

    def _new_clause(self, enc_lits: list[int], lbd: int) -> int:
        """Append a clause (>= 3 literals) to the arena; returns its cref.

        Watcher lists are flat ``[cref, blocker, cref, blocker, ...]``
        pairs: the blocker is the other watched literal, checked before
        touching the arena so visits to satisfied clauses cost one list
        read (MiniSat's blocking-literal optimization).
        """
        lits = self.lits
        cref = len(self.c_off)
        self.c_off.append(len(lits))
        self.c_len.append(len(enc_lits))
        self.c_lbd.append(lbd)
        lits.extend(enc_lits)
        w0 = self.watches[enc_lits[0]]
        w0.append(cref)
        w0.append(enc_lits[1])
        w1 = self.watches[enc_lits[1]]
        w1.append(cref)
        w1.append(enc_lits[0])
        return cref

    # -- assignment ---------------------------------------------------------

    def _assign(self, enc: int, reason: int) -> None:
        """Assign encoded literal ``enc`` true (cold path: decisions,
        units, assumptions — propagation inlines this)."""
        val = self.val
        val[enc] = 1
        val[enc ^ 1] = -1
        var = enc >> 1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.saved[var] = enc & 1
        self.trail.append(enc)

    def _cancel_until(self, target_level: int) -> None:
        trail_lim = self.trail_lim
        if len(trail_lim) <= target_level:
            return
        target = trail_lim[target_level]
        val = self.val
        act = self.activity
        pool = self.pool
        heap = self.heap
        trail = self.trail
        for enc in trail[target:]:
            val[enc] = 0
            val[enc ^ 1] = 0
            var = enc >> 1
            a = act[var]
            if a == 0.0:
                pool.append(var)   # may duplicate; _decide skips stale
            else:
                heappush(heap, (-a, var))
        del trail[target:]
        del trail_lim[target_level:]
        self.qhead = target

    # -- unit propagation ---------------------------------------------------

    def _propagate(self):
        """Exhaust the propagation queue.

        Returns ``None``, a conflicting cref (int), or a 2-tuple of
        encoded literals for a conflicting binary clause.  This is the
        innermost loop of every formal query: everything it touches is a
        local binding over a flat list, and satisfied clauses are skipped
        on their blocking literal without reading the arena at all.
        """
        val = self.val
        bins = self.bins
        watches = self.watches
        lits = self.lits
        c_off = self.c_off
        c_len = self.c_len
        level = self.level
        reason = self.reason
        saved = self.saved
        trail = self.trail
        lvl = len(self.trail_lim)
        qhead = self.qhead
        start = ntrail = len(trail)
        while qhead < ntrail:
            p = trail[qhead]
            qhead += 1
            f = p ^ 1  # the literal just falsified
            bl = bins[f]
            if bl:
                for q in bl:
                    v = val[q]
                    if v < 0:
                        self.qhead = qhead
                        self.stats.propagations += len(trail) - start
                        return (f, q)
                    if v == 0:
                        val[q] = 1
                        val[q ^ 1] = -1
                        var = q >> 1
                        level[var] = lvl
                        reason[var] = -2 - f
                        saved[var] = q & 1
                        trail.append(q)
                        ntrail += 1
            wl = watches[f]
            if not wl:
                continue
            i = j = 0
            n = len(wl)
            while i < n:
                blocker = wl[i + 1]
                if val[blocker] > 0:
                    wl[j] = wl[i]
                    wl[j + 1] = blocker
                    i += 2
                    j += 2
                    continue
                cref = wl[i]
                i += 2
                ln = c_len[cref]
                if ln == 0:
                    continue  # reduced away: drop the watcher lazily
                off = c_off[cref]
                first = lits[off]
                if first == f:
                    first = lits[off + 1]
                    lits[off] = first
                    lits[off + 1] = f
                if val[first] > 0:
                    wl[j] = cref
                    wl[j + 1] = first
                    j += 2
                    continue
                end = off + ln
                k = off + 2
                while k < end:
                    lk = lits[k]
                    if val[lk] >= 0:
                        lits[off + 1] = lk
                        lits[k] = f
                        wo = watches[lk]
                        wo.append(cref)
                        wo.append(first)
                        break
                    k += 1
                else:
                    wl[j] = cref
                    wl[j + 1] = first
                    j += 2
                    if val[first] < 0:
                        wl[j:] = wl[i:]  # keep the unvisited tail watched
                        self.qhead = qhead
                        self.stats.propagations += len(trail) - start
                        return cref
                    val[first] = 1
                    val[first ^ 1] = -1
                    var = first >> 1
                    level[var] = lvl
                    reason[var] = cref
                    saved[var] = first & 1
                    trail.append(first)
                    ntrail += 1
            del wl[j:]
        self.qhead = qhead
        self.stats.propagations += ntrail - start
        return None

    # -- conflict analysis (first UIP) --------------------------------------

    def _rescale(self) -> None:
        act = self.activity
        for var in range(1, self.num_vars + 1):
            act[var] *= 1e-100
        self.var_inc *= 1e-100
        # Every queued heap entry now carries a stale activity; rebuild
        # them against the rescaled values (rare: once per 1e100 bumps).
        entries = {var for _, var in self.heap}
        self.heap = [(-act[var], var) for var in entries]
        heapify(self.heap)

    def _analyze(self, conflict) -> tuple[list[int], int, int]:
        """Derive the first-UIP learned clause from ``conflict``.

        Returns ``(learned, back_level, lbd)`` with ``learned`` in encoded
        literals, the UIP at index 0 and (when present) the assertion-level
        watch at index 1.  The clause is minimized before it is returned:
        any literal whose reason clause is subsumed by the rest of the
        learned clause (plus root-level falsehoods) resolves away.

        Activity bumps are applied inline against the preallocated
        ``seen`` buffer; heap positions are repaired once per conflict
        rather than per bump.
        """
        lits = self.lits
        c_off = self.c_off
        c_len = self.c_len
        seen = self.seen
        level = self.level
        reason = self.reason
        act = self.activity
        var_inc = self.var_inc
        trail = self.trail
        current = len(self.trail_lim)
        learned: list[int] = [0]
        counter = 0
        index = len(trail)
        p = 0  # encoded literals are >= 2, so 0 means "conflict clause"
        if type(conflict) is int:
            off = c_off[conflict]
            reason_lits = lits[off:off + c_len[conflict]]
        else:
            reason_lits = conflict
        while True:
            for q in reason_lits:
                if q == p:
                    continue
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    # Bumped variables are on the trail (assigned), so no
                    # heap entry needs repair — _cancel_until pushes the
                    # fresh activity when they unassign.
                    act[var] += var_inc
                    if act[var] > 1e100:
                        self._rescale()
                        var_inc = self.var_inc
                    if level[var] >= current:
                        counter += 1
                    else:
                        learned.append(q)
            while True:
                index -= 1
                p = trail[index]
                if seen[p >> 1]:
                    break
            var = p >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            r = reason[var]
            if r >= 0:
                off = c_off[r]
                reason_lits = lits[off:off + c_len[r]]
            else:
                reason_lits = (-2 - r,)
        learned[0] = p ^ 1
        # Minimize: a literal q is redundant when every other literal of
        # its reason clause is already in the learned clause (``seen``) or
        # false at the root — resolving on q then changes nothing.
        if len(learned) > 2:
            kept = [learned[0]]
            for q in learned[1:]:
                var = q >> 1
                r = reason[var]
                if r == -1:
                    kept.append(q)
                elif r >= 0:
                    off = c_off[r]
                    for idx in range(off, off + c_len[r]):
                        v2 = lits[idx] >> 1
                        if v2 != var and not seen[v2] and level[v2] > 0:
                            kept.append(q)
                            break
                else:
                    v2 = (-2 - r) >> 1
                    if not seen[v2] and level[v2] > 0:
                        kept.append(q)
            for q in learned[1:]:
                seen[q >> 1] = 0
            learned = kept
        else:
            for q in learned[1:]:
                seen[q >> 1] = 0
        if len(learned) == 1:
            return learned, 0, 1
        best = 1
        best_level = level[learned[1] >> 1]
        for i in range(2, len(learned)):
            lv = level[learned[i] >> 1]
            if lv > best_level:
                best = i
                best_level = lv
        learned[1], learned[best] = learned[best], learned[1]
        lbd = len({level[q >> 1] for q in learned})
        return learned, best_level, lbd

    # -- learned-clause database reduction ----------------------------------

    def _locked(self, cref: int) -> bool:
        """True when ``cref`` is the reason of a current-trail assignment.

        The implied literal of a reason clause always sits at the clause's
        first arena slot (propagation swaps it there when assigning and
        never displaces a true first literal), so one lookup suffices.
        """
        first = self.lits[self.c_off[cref]]
        return self.val[first] > 0 and self.reason[first >> 1] == cref

    def _reduce_db(self) -> None:
        """Drop the worst half of the reducible learned clauses.

        Glue clauses (LBD <= 2) and clauses locked as reasons of the
        current trail are always kept; the rest are ranked by (LBD, size)
        and the high half is marked dead — watchers drop lazily during
        propagation, and the arena is compacted once enough of it is dead.
        """
        c_len = self.c_len
        c_lbd = self.c_lbd
        keep: list[int] = []
        cand: list[int] = []
        for cref in self.learnts:
            if c_len[cref] == 0:
                continue
            if c_lbd[cref] <= _GLUE_LBD or self._locked(cref):
                keep.append(cref)
            else:
                cand.append(cref)
        cand.sort(key=lambda c: (c_lbd[c], c_len[c]))
        half = len(cand) // 2
        proof = self._proof
        lits = self.lits
        c_off = self.c_off
        for cref in cand[half:]:
            if proof is not None:
                off = c_off[cref]
                proof.delete([-(q >> 1) if q & 1 else q >> 1
                              for q in lits[off:off + c_len[cref]]])
            self.wasted += c_len[cref]
            c_len[cref] = 0
        self.stats.reduced_clauses += len(cand) - half
        self.learnts = keep + cand[:half]
        self.max_learnts = int(self.max_learnts * 1.2) + 64
        if self.wasted * 2 > len(self.lits):
            self._gc_arena()
        self._reduce_count += 1
        if self._reduce_count % _VIVIFY_PERIOD == 0:
            self._vivify()

    # -- inprocessing: learned-clause vivification --------------------------

    def _detach_watch(self, enc: int, cref: int) -> None:
        """Remove ``cref``'s watcher pair from ``watches[enc]``."""
        wl = self.watches[enc]
        n = len(wl)
        for i in range(0, n, 2):
            if wl[i] == cref:
                wl[i] = wl[n - 2]
                wl[i + 1] = wl[n - 1]
                del wl[n - 2:]
                return

    def _vivify(self) -> None:
        """Shorten surviving learned clauses by probing (inprocessing).

        Runs at decision level 0 from the reduce-DB hook.  For each
        candidate clause the negations of its literals are asserted one
        at a time, each at a fresh decision level, with full unit
        propagation in between:

        * a literal already **false** is redundant — drop it;
        * a literal already **true** closes the clause — the literals
          decided so far plus this one imply it (at level 0 the whole
          clause is satisfied forever and is deleted instead);
        * a **conflict** after asserting the negation likewise closes
          the clause at the literals probed so far.

        Any shortened clause strictly subsumes the original, so the
        original is replaced in the arena (DRAT: add the short clause,
        then delete the long one — RUP order).  The clause under probe
        is deliberately left attached: it can only self-propagate once
        all its other literals are false, which reproduces a shortening
        the probe would find anyway, and skipping detachment keeps the
        watcher lists untouched for the (common) unshortened case.
        """
        if self.trail_lim:
            self._cancel_until(0)
        proof = self._proof
        if self._propagate() is not None:
            self._unsat = True
            if proof is not None:
                proof.add(())
            return
        c_len = self.c_len
        c_lbd = self.c_lbd
        c_off = self.c_off
        arena = self.lits
        val = self.val
        level = self.level
        stats = self.stats
        cands = [cref for cref in self.learnts
                 if c_len[cref] >= 3 and not self._locked(cref)]
        cands.sort(key=lambda c: (c_lbd[c], c_len[c]))
        props_start = stats.propagations
        for cref in cands[:_VIVIFY_MAX_CLAUSES]:
            if stats.propagations - props_start > _VIVIFY_PROP_BUDGET:
                break
            n = c_len[cref]
            off = c_off[cref]
            clause = list(arena[off:off + n])
            kept: list[int] = []
            closing = -1          # literal that closed the clause, if any
            root_satisfied = False
            for q in clause:
                v = val[q]
                if v > 0:
                    if level[q >> 1] == 0:
                        root_satisfied = True
                    else:
                        closing = q
                    break
                if v < 0:
                    continue      # false here: redundant in this clause
                self.trail_lim.append(len(self.trail))
                self._assign(q ^ 1, -1)
                if self._propagate() is not None:
                    closing = q
                    break
                kept.append(q)
            if self.trail_lim:
                self._cancel_until(0)
            if root_satisfied:
                if proof is not None:
                    proof.delete([-(q >> 1) if q & 1 else q >> 1
                                  for q in clause])
                self.wasted += n
                c_len[cref] = 0
                stats.vivified += 1
                continue
            new = kept + [closing] if closing >= 0 else kept
            m = len(new)
            if m == 0:
                # Every literal was already false at the root.
                self._unsat = True
                if proof is not None:
                    proof.add(())
                return
            if m >= n:
                continue          # nothing gained
            if proof is not None:
                proof.add([-(q >> 1) if q & 1 else q >> 1 for q in new])
                proof.delete([-(q >> 1) if q & 1 else q >> 1
                              for q in clause])
            stats.vivified += 1
            if m >= 3:
                # Rewrite in place; every surviving literal is unassigned
                # at the root, so watching the first two is valid.
                self._detach_watch(arena[off], cref)
                self._detach_watch(arena[off + 1], cref)
                for i, q in enumerate(new):
                    arena[off + i] = q
                self.wasted += n - m
                c_len[cref] = m
                if c_lbd[cref] > m:
                    c_lbd[cref] = m
                w0 = self.watches[new[0]]
                w0.append(cref)
                w0.append(new[1])
                w1 = self.watches[new[1]]
                w1.append(cref)
                w1.append(new[0])
                continue
            # The clause leaves the arena (binary or unit form).
            self._detach_watch(arena[off], cref)
            self._detach_watch(arena[off + 1], cref)
            self.wasted += n
            c_len[cref] = 0
            if m == 2:
                a, b = new
                self.bins[a].append(b)
                self.bins[b].append(a)
                continue
            enc = new[0]
            v = val[enc]
            if v < 0:
                self._unsat = True
                if proof is not None:
                    proof.add(())
                return
            if v == 0:
                self._assign(enc, -1)
                if self._propagate() is not None:
                    self._unsat = True
                    if proof is not None:
                        proof.add(())
                    return
        self.learnts = [c for c in self.learnts if c_len[c] > 0]

    def _gc_arena(self) -> None:
        """Compact the literal arena, squeezing out dead clauses.

        Crefs are stable (only offsets move), so watcher lists and reasons
        stay valid — dead crefs keep length 0 and are skipped lazily.
        """
        old = self.lits
        new = array("i")
        c_off = self.c_off
        c_len = self.c_len
        for cref in range(len(c_off)):
            n = c_len[cref]
            if n:
                off = c_off[cref]
                c_off[cref] = len(new)
                new.extend(old[off:off + n])
        self.lits = new
        self.wasted = 0
        self.stats.gc_runs += 1

    # -- search -------------------------------------------------------------

    def _decide(self) -> bool:
        val = self.val
        act = self.activity
        heap = self.heap
        while heap:
            na, var = heappop(heap)
            # Stale entries: the variable was assigned meanwhile, or was
            # bumped and re-queued with a fresher (higher) activity.
            if val[var << 1] == 0 and na == -act[var]:
                self.stats.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._assign((var << 1) | self.saved[var], -1)
                return True
        pool = self.pool
        while pool:
            var = pool.pop()
            # Stale entries: assigned meanwhile, or bumped (the heap owns
            # every nonzero-activity variable).
            if val[var << 1] == 0 and act[var] == 0.0:
                self.stats.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._assign((var << 1) | self.saved[var], -1)
                return True
        return False

    def solve(self, assumptions: Iterable[int] = ()) -> SolverResult:
        """Run the CDCL loop to completion.

        ``assumptions`` are literals forced as the first decision levels; a
        ``False`` verdict then means *UNSAT under these assumptions* (the
        clause set itself may still be satisfiable).  The solver backtracks
        to the root level before returning, so it can be reused: add more
        clauses with :meth:`add_clause` and solve again — learned clauses
        and activities are kept.
        """
        stats = self.stats
        if self._unsat:
            return SolverResult(False, stats=stats)
        val = self.val
        for enc in self._pending_units:
            v = val[enc]
            if v < 0:
                self._unsat = True
                if self._proof is not None:
                    self._proof.add(())
                return SolverResult(False, stats=stats)
            if v == 0:
                self._assign(enc, -1)
        self._pending_units.clear()
        assumps: list[int] = []
        for lit in assumptions:
            var = lit if lit > 0 else -lit
            if var == 0 or var > self.num_vars:
                raise ValueError(f"assumption {lit} references an "
                                 f"unknown var")
            assumps.append((var << 1) | (lit < 0))
        if self.max_learnts == 0:
            self.max_learnts = max(4096, self.num_problem // 2)

        progress_cb = self._progress_cb
        progress_interval = self._progress_interval
        proof = self._proof
        solve_start = time.perf_counter()
        props_start = stats.propagations
        conf_start = stats.conflicts
        restart_idx = 1
        restart_limit = _RESTART_BASE * luby(restart_idx)
        conflicts_here = 0
        trail_lim = self.trail_lim
        while True:
            conflict = self._propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_here += 1
                if not trail_lim:
                    self._unsat = True
                    if proof is not None:
                        proof.add(())
                    return SolverResult(False, stats=stats)
                learned, back_level, lbd = self._analyze(conflict)
                if proof is not None:
                    proof.add([-(q >> 1) if q & 1 else q >> 1
                               for q in learned])
                self._cancel_until(back_level)
                stats.learned_clauses += 1
                stats.learned_literals += len(learned)
                stats.lbd_sum += lbd
                n = len(learned)
                if n == 1:
                    self._assign(learned[0], -1)
                elif n == 2:
                    a, b = learned
                    self.bins[a].append(b)
                    self.bins[b].append(a)
                    self._assign(a, -2 - b)
                else:
                    cref = self._new_clause(learned, lbd)
                    self.learnts.append(cref)
                    self._assign(learned[0], cref)
                self.var_inc /= _VAR_DECAY
                if len(self.learnts) > self.max_learnts:
                    self._reduce_db()
                    if self._unsat:
                        # Vivification propagated the root level into a
                        # conflict (the empty-clause proof step is
                        # already logged).
                        return SolverResult(False, stats=stats)
                if progress_cb is not None and \
                        stats.conflicts % progress_interval == 0:
                    progress_cb(self._progress_report(solve_start,
                                                      props_start,
                                                      conf_start))
                continue
            if conflicts_here >= restart_limit and trail_lim:
                stats.restarts += 1
                restart_idx += 1
                restart_limit = _RESTART_BASE * luby(restart_idx)
                conflicts_here = 0
                self._cancel_until(0)
                continue
            # Re-assume any assumptions not currently decided (initially,
            # and again after every backjump or restart below their level).
            assumed = False
            while len(trail_lim) < len(assumps):
                enc = assumps[len(trail_lim)]
                v = val[enc]
                if v < 0:
                    # Conflicts with the root level or an earlier
                    # assumption: UNSAT under these assumptions only.
                    if trail_lim:
                        self._cancel_until(0)
                    return SolverResult(False, stats=stats)
                trail_lim.append(len(self.trail))
                if v == 0:
                    self._assign(enc, -1)
                    assumed = True
                    break
                # Already true: leave an empty decision level placeholder.
            if assumed:
                continue
            if not self._decide():
                model = Model(val[:], self.num_vars)
                if trail_lim:
                    self._cancel_until(0)
                return SolverResult(True, model=model, stats=stats)


def solve(num_vars: int,
          clauses: Iterable[Iterable[int]]) -> SolverResult:
    """One-shot convenience wrapper around :class:`Solver`."""
    return Solver(num_vars, clauses).solve()
