"""DRAT proof logging and an independent backward RUP proof checker.

An UNSAT verdict from a CDCL solver is only as trustworthy as the solver
itself.  The standard remedy (MiniSat / drat-trim lineage) is *proof
logging*: the solver emits every learned clause as it is derived and every
clause it erases, producing a DRAT proof — a sequence of clause additions
and deletions ending (implicitly) in the empty clause.  A small,
independent checker then replays the proof against the original formula
using nothing but unit propagation.

This module provides both halves:

``ProofLog``
    The sink a solver writes into via ``Solver.set_proof``.  Steps are
    kept in memory (``steps``) and optionally streamed as standard DRAT
    text lines (``"1 -2 3 0"`` for additions, ``"d 1 -2 0"`` for
    deletions) to a file-like object.

``check_drat(cnf, proof)``
    A pure-Python *backward* RUP checker.  It shares **no** code with
    either solver engine: it has its own clause database, its own
    two-watched-literal unit propagation, and its own trail.  A proof is
    accepted iff the empty clause is RUP (reverse unit propagation)
    with respect to the formula plus the proof's surviving additions,
    and — walking the proof backwards — every addition *used* by that
    derivation is itself RUP at the point it was introduced.  Backward
    checking with core marking skips lemmas that never feed the final
    conflict, which is what makes checking multi-thousand-lemma proofs
    tolerable in pure Python; ``verify_all=True`` forces every lemma to
    be checked regardless.

Checking is deliberately restricted to the RUP fragment of DRAT: both
in-tree solvers only ever learn clauses by resolution (1-UIP), and every
such clause is RUP with respect to the clause database at learn time.
Lemmas are verified against the *final* input clause set, which is sound
— extra clauses only strengthen unit propagation, and by induction every
accepted lemma is a logical consequence of the input formula — and is
what makes proofs from *incremental* solving (clauses added between
``solve()`` calls) checkable with no bookkeeping in the solver.

Assumption-based UNSAT verdicts (``solve(assumptions=...)`` returning
unsatisfiable, as in the FRAIG sweep) never derive the empty clause from
the formula alone.  They are certified by passing ``assumptions=`` to
``check_drat``: the assumption literals are asserted as extra units in
the checker, under which the proof's final conflict must appear.  This
is sound because CDCL learned clauses are implied by the clause database
alone — assumptions enter the search as decisions and are never
resolved on as clauses — so every logged lemma is still a consequence
of the formula, and the certificate shows formula ∧ assumptions ⊢ ⊥.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, TextIO, Tuple

__all__ = [
    "ProofLog",
    "DratCheckResult",
    "check_drat",
    "parse_drat",
    "format_drat_step",
]

Step = Tuple[str, Tuple[int, ...]]


def format_drat_step(kind: str, lits: Sequence[int]) -> str:
    """Render one proof step as a standard DRAT text line (no newline).

    ``kind`` is ``"a"`` (addition) or ``"d"`` (deletion); literals are
    signed DIMACS integers.  The empty addition renders as ``"0"`` —
    the explicit empty clause.
    """
    if kind not in ("a", "d"):
        raise ValueError(f"unknown DRAT step kind {kind!r}")
    body = " ".join(str(lit) for lit in lits)
    line = f"{body} 0" if body else "0"
    return f"d {line}" if kind == "d" else line


def parse_drat(text: str) -> List[Step]:
    """Parse DRAT text (one clause per line, 0-terminated) into steps.

    Blank lines and ``c ...`` comment lines are ignored.  The inverse of
    ``ProofLog.to_drat`` / ``format_drat_step``.
    """
    steps: List[Step] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        kind = "a"
        if line.startswith("d"):
            kind = "d"
            line = line[1:].strip()
        try:
            numbers = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise ValueError(f"DRAT line {lineno}: {raw!r}") from exc
        if not numbers or numbers[-1] != 0:
            raise ValueError(f"DRAT line {lineno} is not 0-terminated: {raw!r}")
        if any(n == 0 for n in numbers[:-1]):
            raise ValueError(f"DRAT line {lineno} has an interior 0: {raw!r}")
        steps.append((kind, tuple(numbers[:-1])))
    return steps


class ProofLog:
    """In-memory DRAT proof with optional live text streaming.

    The solver-facing surface is just ``add(lits)`` and ``delete(lits)``
    with DIMACS literals; anything implementing those two methods can be
    handed to ``Solver.set_proof``.  When ``stream`` is given, each step
    is also written as one DRAT line and (by default) flushed, so the
    proof file is usable the moment the solver stops — even mid-run.
    """

    __slots__ = ("steps", "stream", "bytes_written", "_flush")

    def __init__(self, stream: Optional[TextIO] = None, flush: bool = True):
        self.steps: List[Step] = []
        self.stream = stream
        self.bytes_written = 0
        self._flush = flush

    def add(self, lits: Iterable[int]) -> None:
        """Record a learned-clause addition."""
        self._record("a", tuple(lits))

    def delete(self, lits: Iterable[int]) -> None:
        """Record a clause deletion (reduce-DB erasure)."""
        self._record("d", tuple(lits))

    def _record(self, kind: str, lits: Tuple[int, ...]) -> None:
        self.steps.append((kind, lits))
        if self.stream is not None:
            line = format_drat_step(kind, lits) + "\n"
            self.stream.write(line)
            self.bytes_written += len(line)
            if self._flush:
                self.stream.flush()

    @property
    def num_added(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == "a")

    @property
    def num_deleted(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == "d")

    def size_bytes(self) -> int:
        """Size of the proof as DRAT text (streamed or would-be)."""
        if self.stream is not None:
            return self.bytes_written
        return sum(len(format_drat_step(kind, lits)) + 1
                   for kind, lits in self.steps)

    def to_drat(self) -> str:
        """The whole proof as DRAT text."""
        return "".join(format_drat_step(kind, lits) + "\n"
                       for kind, lits in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProofLog(steps={len(self.steps)}, "
                f"added={self.num_added}, deleted={self.num_deleted})")


@dataclass
class DratCheckResult:
    """Outcome of ``check_drat``.  Truthy iff the proof was accepted.

    ``lemmas`` counts additions in the proof, ``checked`` how many were
    actually RUP-verified (the dependency core under backward checking,
    or all of them under ``verify_all``), ``deletions`` how many
    deletion steps matched an active clause.
    """

    ok: bool
    reason: str = ""
    lemmas: int = 0
    checked: int = 0
    deletions: int = 0

    def __bool__(self) -> bool:
        return self.ok


def check_drat(cnf, proof, assumptions: Sequence[int] = (),
               verify_all: bool = False) -> DratCheckResult:
    """Independently verify a DRAT(-RUP) proof of unsatisfiability.

    ``cnf`` is the input formula: anything with a ``.clauses`` attribute
    (e.g. ``repro.netlist.sat.cnf.CNF``) or a bare iterable of clauses,
    each clause an iterable of signed DIMACS literals.  ``proof`` is a
    ``ProofLog``, a list of ``(kind, lits)`` steps, or DRAT text.
    ``assumptions`` are literals asserted as extra units (certifying
    UNSAT-under-assumptions verdicts).  ``verify_all=True`` checks every
    addition instead of only the dependency core of the final conflict.

    Returns a ``DratCheckResult``; never raises on a bad proof, only on
    malformed input.
    """
    formula = getattr(cnf, "clauses", cnf)
    steps = getattr(proof, "steps", proof)
    if isinstance(steps, str):
        steps = parse_drat(steps)

    # -- clause database ---------------------------------------------------
    # Clauses are mutable lists so the two watched literals can live at
    # positions 0 and 1 (ReferenceSolver-style swap surgery, but this is
    # an independent implementation).  ``active`` tracks liveness under
    # the deletion steps; watch-list entries for inactive clauses are
    # kept (skipped on visit) so backward reactivation needs no repair.
    db: List[List[int]] = []
    active: List[bool] = []
    inert: List[bool] = []           # tautologies: never propagate
    marked: List[bool] = []          # dependency core of the final conflict
    unit_ids: List[int] = []
    empty_ids: List[int] = []
    watches: dict = {}               # literal -> clause ids watching it
    by_key: dict = {}                # sorted literal tuple -> clause ids
    num_vars = 0

    def add_clause(lits: Iterable[int]) -> int:
        nonlocal num_vars
        seen = set()
        clause: List[int] = []
        tautology = False
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 in clause")
            if lit in seen:
                continue
            if -lit in seen:
                tautology = True
            seen.add(lit)
            clause.append(lit)
            if abs(lit) > num_vars:
                num_vars = abs(lit)
        cid = len(db)
        db.append(clause)
        active.append(True)
        inert.append(tautology)
        marked.append(False)
        by_key.setdefault(tuple(sorted(clause)), []).append(cid)
        if tautology:
            pass
        elif not clause:
            empty_ids.append(cid)
        elif len(clause) == 1:
            unit_ids.append(cid)
        else:
            watches.setdefault(clause[0], []).append(cid)
            watches.setdefault(clause[1], []).append(cid)
        return cid

    num_formula = 0
    for lits in formula:
        add_clause(lits)
        num_formula += 1

    lemma_count = 0
    matched_deletions = 0
    events: List[Tuple[str, int]] = []   # proof order, resolved clause ids
    for kind, lits in steps:
        if kind == "a":
            cid = add_clause(lits)
            events.append(("a", cid))
            lemma_count += 1
        elif kind == "d":
            key = tuple(sorted(set(lits)))
            cid = next((c for c in by_key.get(key, ())
                        if active[c]), None)
            if cid is None:
                continue             # deleting an unknown clause: ignore
            active[cid] = False
            events.append(("d", cid))
            matched_deletions += 1
        else:
            raise ValueError(f"unknown DRAT step kind {kind!r}")

    for lit in assumptions:
        if abs(lit) > num_vars:
            num_vars = abs(lit)

    def fail(reason: str) -> DratCheckResult:
        return DratCheckResult(False, reason, lemmas=lemma_count,
                               checked=checked, deletions=matched_deletions)

    # -- unit propagation --------------------------------------------------
    vals = [0] * (num_vars + 1)      # 0 unassigned, +1 true, -1 false
    reason = [-1] * (num_vars + 1)   # clause id, or -1 for asserted lits
    trail: List[int] = []

    def mark_core(seed_cids: Iterable[int], seed_vars: Iterable[int]) -> None:
        # Mark every clause reachable through the reason chains: those
        # are the additions the final conflict actually depends on.
        pending_vars = list(seed_vars)
        pending_cids = list(seed_cids)
        while pending_cids or pending_vars:
            while pending_cids:
                cid = pending_cids.pop()
                if marked[cid]:
                    continue
                marked[cid] = True
                pending_vars.extend(abs(lit) for lit in db[cid])
            while pending_vars:
                var = pending_vars.pop()
                if vals[var] == 0:
                    continue
                rsn = reason[var]
                if rsn >= 0 and not marked[rsn]:
                    pending_cids.append(rsn)
                    break            # drain clause queue first

    def propagate() -> Optional[int]:
        # Returns the id of a conflicting clause, or None.
        qhead = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            false_lit = -lit
            watchers = watches.get(false_lit)
            if not watchers:
                continue
            i = 0
            while i < len(watchers):
                cid = watchers[i]
                if not active[cid]:
                    i += 1
                    continue
                clause = db[cid]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                fval = vals[first] if first > 0 else -vals[-first]
                if fval > 0:         # satisfied
                    i += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = vals[other] if other > 0 else -vals[-other]
                    if oval >= 0:    # not false: watch it instead
                        clause[1], clause[k] = clause[k], clause[1]
                        watches.setdefault(clause[1], []).append(cid)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                if fval < 0:         # all literals false
                    return cid
                var = abs(first)
                vals[var] = 1 if first > 0 else -1
                reason[var] = cid
                trail.append(first)
                i += 1
        return None

    def assert_lit(lit: int, rsn: int) -> Optional[Tuple[int, int]]:
        # Returns (clause id or -1, literal) describing a conflict, or
        # None on success / no-op.
        var = abs(lit)
        want = 1 if lit > 0 else -1
        have = vals[var]
        if have == want:
            return None
        if have == -want:
            return (rsn, lit)
        vals[var] = want
        reason[var] = rsn
        trail.append(lit)
        return None

    def undo() -> None:
        for lit in trail:
            vals[abs(lit)] = 0
        del trail[:]

    def rup_conflict(negated: Sequence[int], mark: bool) -> bool:
        """True iff asserting ``negated`` ∪ assumptions ∪ units yields a
        UP conflict; marks its dependency core when ``mark``."""
        for cid in empty_ids:
            if active[cid]:
                if mark:
                    marked[cid] = True
                return True
        conflict_cid = None
        seed_cids: List[int] = []
        for lit in assumptions:
            hit = assert_lit(lit, -1)
            if hit is not None:
                conflict_cid = -1    # assumption vs assumption/lemma lit
                seed_vars = [abs(hit[1])]
                break
        else:
            for lit in negated:
                hit = assert_lit(lit, -1)
                if hit is not None:
                    conflict_cid = -1
                    seed_vars = [abs(hit[1])]
                    break
            else:
                for cid in unit_ids:
                    if not active[cid]:
                        continue
                    hit = assert_lit(db[cid][0], cid)
                    if hit is not None:
                        conflict_cid = hit[0]
                        seed_cids = [cid] if cid >= 0 else []
                        if hit[0] >= 0:
                            seed_cids.append(hit[0])
                        seed_vars = [abs(hit[1])]
                        break
                else:
                    cid = propagate()
                    if cid is None:
                        undo()
                        return False
                    conflict_cid = cid
                    seed_cids = [cid]
                    seed_vars = [abs(lit) for lit in db[cid]]
        if mark:
            if conflict_cid is not None and conflict_cid >= 0:
                seed_cids.append(conflict_cid)
            mark_core(seed_cids, seed_vars)
        undo()
        return True

    # -- the check ---------------------------------------------------------
    checked = 0

    # 1. The empty clause must be RUP at the end of the proof: the
    #    formula plus surviving lemmas (plus assumptions) propagate to a
    #    conflict.  This *is* the proof's implicit final step, so no
    #    explicit "0" line is required.
    if not rup_conflict((), mark=True):
        return fail("no unit-propagation conflict at end of proof "
                    "(empty clause is not RUP)")

    # 2. Walk the proof backwards.  Deletions reactivate; additions are
    #    removed from the database and, if they feed the final conflict
    #    (or verify_all), must be RUP with respect to what remains.
    for kind, cid in reversed(events):
        if kind == "d":
            active[cid] = True
            continue
        active[cid] = False
        if not (verify_all or marked[cid]):
            continue
        if inert[cid]:
            checked += 1             # a tautology is trivially redundant
            continue
        negated = [-lit for lit in db[cid]]
        if not rup_conflict(negated, mark=True):
            return fail(f"lemma {' '.join(map(str, db[cid]))} 0 "
                        "is not RUP")
        checked += 1

    return DratCheckResult(True, "", lemmas=lemma_count, checked=checked,
                           deletions=matched_deletions)
