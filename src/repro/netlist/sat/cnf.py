"""CNF formulas and Tseitin encoding of netlist cones.

Literals follow the DIMACS convention: variables are positive integers,
``v`` means *true*, ``-v`` means *false*.  :class:`CNF` is a plain clause
container; :func:`encode_cone` walks the combinational cone of a set of
root nets and emits the Tseitin clauses for every gate, treating primary
inputs and flip-flop outputs as free variables supplied by the caller —
which is what lets the miter construction share input variables between
two netlists.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..logic import Gate, GateType, Netlist, NetlistError


class CNF:
    """A conjunction of clauses over positive-integer variables."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, *lits: int) -> None:
        for lit in lits:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unknown var")
        self.clauses.append(tuple(lits))

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


def _equal(cnf: CNF, a: int, b: int) -> None:
    cnf.add_clause(-a, b)
    cnf.add_clause(a, -b)


def _xor_clauses(cnf: CNF, y: int, a: int, b: int) -> None:
    """y <-> a XOR b."""
    cnf.add_clause(-y, a, b)
    cnf.add_clause(-y, -a, -b)
    cnf.add_clause(y, -a, b)
    cnf.add_clause(y, a, -b)


def _and_clauses(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> AND(operands)."""
    for lit in operands:
        cnf.add_clause(-y, lit)
    cnf.add_clause(y, *(-lit for lit in operands))


def _or_clauses(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> OR(operands)."""
    for lit in operands:
        cnf.add_clause(y, -lit)
    cnf.add_clause(-y, *operands)


def _xor_chain(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> XOR(operands), decomposed into binary XORs with aux vars."""
    acc = operands[0]
    for lit in operands[1:-1]:
        aux = cnf.new_var()
        _xor_clauses(cnf, aux, acc, lit)
        acc = aux
    if len(operands) == 1:
        _equal(cnf, y, acc)
    else:
        _xor_clauses(cnf, y, acc, operands[-1])


def _mux_clauses(cnf: CNF, y: int, select: int, data0: int,
                 data1: int) -> None:
    """y <-> (select ? data1 : data0)."""
    cnf.add_clause(-select, -data1, y)
    cnf.add_clause(-select, data1, -y)
    cnf.add_clause(select, -data0, y)
    cnf.add_clause(select, data0, -y)
    # Redundant but propagation-friendly: if both data pins agree, so does y.
    cnf.add_clause(-data0, -data1, y)
    cnf.add_clause(data0, data1, -y)


def encode_gate(cnf: CNF, gate: Gate, y: int, operands: list[int]) -> None:
    """Emit the Tseitin clauses asserting ``y <-> gate(operands)``."""
    gtype = gate.gtype
    if gtype == GateType.BUF:
        _equal(cnf, y, operands[0])
    elif gtype == GateType.NOT:
        _equal(cnf, y, -operands[0])
    elif gtype == GateType.AND:
        _and_clauses(cnf, y, operands)
    elif gtype == GateType.NAND:
        _and_clauses(cnf, -y, operands)
    elif gtype == GateType.OR:
        _or_clauses(cnf, y, operands)
    elif gtype == GateType.NOR:
        _or_clauses(cnf, -y, operands)
    elif gtype == GateType.XOR:
        _xor_chain(cnf, y, operands)
    elif gtype == GateType.XNOR:
        _xor_chain(cnf, -y, operands)
    elif gtype == GateType.MUX:
        _mux_clauses(cnf, y, *operands)
    else:
        raise NetlistError(f"cannot encode gate type {gtype.value} into CNF")


def encode_cone(cnf: CNF, netlist: Netlist, roots: Iterable[int],
                leaf_var: Optional[Callable[[Gate], int]] = None
                ) -> dict[int, int]:
    """Tseitin-encode the combinational cone of ``roots`` into ``cnf``.

    Returns a map from net id to CNF variable.  Primary inputs and flip-flop
    outputs are cut points: their variables come from ``leaf_var`` (a fresh
    variable per leaf by default), so two encodings can share leaves.
    Constants become variables pinned by a unit clause.
    """
    if leaf_var is None:
        leaf_var = lambda gate: cnf.new_var()  # noqa: E731
    cone = netlist.transitive_fanin(roots)
    var_map: dict[int, int] = {}
    for gid in netlist.topological_order():
        if gid not in cone:
            continue
        gate = netlist.gates[gid]
        if gate.gtype == GateType.INPUT or gate.is_register:
            var_map[gid] = leaf_var(gate)
        elif gate.gtype == GateType.CONST0:
            var = cnf.new_var()
            cnf.add_clause(-var)
            var_map[gid] = var
        elif gate.gtype == GateType.CONST1:
            var = cnf.new_var()
            cnf.add_clause(var)
            var_map[gid] = var
        else:
            var = cnf.new_var()
            encode_gate(cnf, gate, var,
                        [var_map[f] for f in gate.fanins])
            var_map[gid] = var
    return var_map
