"""CNF formulas and Tseitin encoding of netlist and AIG cones.

Literals follow the DIMACS convention: variables are positive integers,
``v`` means *true*, ``-v`` means *false*.  :class:`CNF` is a plain clause
container; :func:`encode_cone` walks the combinational cone of a set of
root nets and emits the Tseitin clauses for every gate, treating primary
inputs and flip-flop outputs as free variables supplied by the caller —
which is what lets the miter construction share input variables between
two netlists.

:func:`encode_aig_cone` is the AIG-native encoder: every node is a
two-input AND, so each costs exactly three clauses, inversion is free (a
complemented edge is just a negated DIMACS literal), and the hash-consing
the AIG performed at construction time has already merged shared
structure — the CNF the solver sees is a fraction of the gate-level
encoding's size.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..aig import AIG, lit_compl, lit_node
from ..logic import Gate, GateType, Netlist, NetlistError


class CNF:
    """A conjunction of clauses over positive-integer variables."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, *lits: int) -> None:
        for lit in lits:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unknown var")
        self.clauses.append(lits)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


# The gate encoders below append clause tuples directly: every literal they
# emit comes from ``cnf.new_var()`` or an already-validated var map, so the
# per-literal range check in ``add_clause`` would only burn time on the
# hottest path of miter construction.


def _equal(cnf: CNF, a: int, b: int) -> None:
    clauses = cnf.clauses
    clauses.append((-a, b))
    clauses.append((a, -b))


def _xor_clauses(cnf: CNF, y: int, a: int, b: int) -> None:
    """y <-> a XOR b."""
    clauses = cnf.clauses
    clauses.append((-y, a, b))
    clauses.append((-y, -a, -b))
    clauses.append((y, -a, b))
    clauses.append((y, a, -b))


def _and_clauses(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> AND(operands)."""
    clauses = cnf.clauses
    for lit in operands:
        clauses.append((-y, lit))
    clauses.append((y,) + tuple(-lit for lit in operands))


def _or_clauses(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> OR(operands)."""
    clauses = cnf.clauses
    for lit in operands:
        clauses.append((y, -lit))
    clauses.append((-y,) + tuple(operands))


def _xor_chain(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> XOR(operands), decomposed into binary XORs with aux vars."""
    acc = operands[0]
    for lit in operands[1:-1]:
        aux = cnf.new_var()
        _xor_clauses(cnf, aux, acc, lit)
        acc = aux
    if len(operands) == 1:
        _equal(cnf, y, acc)
    else:
        _xor_clauses(cnf, y, acc, operands[-1])


def _mux_clauses(cnf: CNF, y: int, select: int, data0: int,
                 data1: int) -> None:
    """y <-> (select ? data1 : data0)."""
    clauses = cnf.clauses
    clauses.append((-select, -data1, y))
    clauses.append((-select, data1, -y))
    clauses.append((select, -data0, y))
    clauses.append((select, data0, -y))
    # Redundant but propagation-friendly: if both data pins agree, so does y.
    clauses.append((-data0, -data1, y))
    clauses.append((data0, data1, -y))


def encode_gate(cnf: CNF, gate: Gate, y: int, operands: list[int]) -> None:
    """Emit the Tseitin clauses asserting ``y <-> gate(operands)``."""
    gtype = gate.gtype
    if gtype == GateType.BUF:
        _equal(cnf, y, operands[0])
    elif gtype == GateType.NOT:
        _equal(cnf, y, -operands[0])
    elif gtype == GateType.AND:
        _and_clauses(cnf, y, operands)
    elif gtype == GateType.NAND:
        _and_clauses(cnf, -y, operands)
    elif gtype == GateType.OR:
        _or_clauses(cnf, y, operands)
    elif gtype == GateType.NOR:
        _or_clauses(cnf, -y, operands)
    elif gtype == GateType.XOR:
        _xor_chain(cnf, y, operands)
    elif gtype == GateType.XNOR:
        _xor_chain(cnf, -y, operands)
    elif gtype == GateType.MUX:
        _mux_clauses(cnf, y, *operands)
    else:
        raise NetlistError(f"cannot encode gate type {gtype.value} into CNF")


def encode_cone(cnf: CNF, netlist: Netlist, roots: Iterable[int],
                leaf_var: Optional[Callable[[Gate], int]] = None,
                var_map: Optional[dict[int, int]] = None
                ) -> dict[int, int]:
    """Tseitin-encode the combinational cone of ``roots`` into ``cnf``.

    Returns a map from net id to CNF variable.  Primary inputs and flip-flop
    outputs are cut points: their variables come from ``leaf_var`` (a fresh
    variable per leaf by default), so two encodings can share leaves.
    Constants become variables pinned by a unit clause.

    ``var_map`` may carry the result of a previous call over the *same*
    netlist: gates already present are skipped, so cones shared between
    successive root sets (e.g. incremental per-output miters) are encoded
    exactly once.  The map is updated in place and returned.
    """
    if leaf_var is None:
        leaf_var = lambda gate: cnf.new_var()  # noqa: E731
    cone = netlist.transitive_fanin(roots)
    if var_map is None:
        var_map = {}
    gates = netlist.gates
    operands: list[int] = []  # reused across gates to avoid reallocation
    for gid in netlist.topological_order():
        if gid not in cone or gid in var_map:
            continue
        gate = gates[gid]
        if gate.gtype == GateType.INPUT or gate.is_register:
            var_map[gid] = leaf_var(gate)
        elif gate.gtype == GateType.CONST0:
            var = cnf.new_var()
            cnf.clauses.append((-var,))
            var_map[gid] = var
        elif gate.gtype == GateType.CONST1:
            var = cnf.new_var()
            cnf.clauses.append((var,))
            var_map[gid] = var
        else:
            var = cnf.new_var()
            operands.clear()
            for f in gate.fanins:
                operands.append(var_map[f])
            encode_gate(cnf, gate, var, operands)
            var_map[gid] = var
    return var_map


def aig_lit_sat(var_map: dict[int, int], lit: int) -> int:
    """DIMACS literal for an AIG edge: complement becomes negation."""
    var = var_map[lit_node(lit)]
    return -var if lit_compl(lit) else var


def encode_aig_cone(cnf: CNF, aig: AIG, roots: Iterable[int],
                    leaf_var: Optional[Callable[[int], int]] = None,
                    var_map: Optional[dict[int, int]] = None
                    ) -> dict[int, int]:
    """Tseitin-encode the cone of the given AIG literals into ``cnf``.

    Returns a map from node id to CNF variable; use :func:`aig_lit_sat` to
    turn an edge into a signed DIMACS literal.  Every AND node costs three
    clauses (``y -> a``, ``y -> b``, ``a & b -> y``); primary inputs and
    latches are free leaf variables (``leaf_var`` receives the node id);
    the constant node is pinned false by a unit clause.  ``var_map`` may
    carry the result of a previous call over the same AIG so shared cones
    encode once — the incremental-solving workhorse of FRAIG.
    """
    if leaf_var is None:
        leaf_var = lambda nid: cnf.new_var()  # noqa: E731
    if var_map is None:
        var_map = {}
    clauses = cnf.clauses
    # Walk only the *unencoded* cone: nodes already in var_map are fully
    # encoded (their fanins were encoded with them), so the traversal
    # stops there — incremental callers like FRAIG pay per new node, not
    # per full cone.
    fresh: list[int] = []
    seen: set[int] = set()
    stack = [lit_node(lit) for lit in roots]
    while stack:
        nid = stack.pop()
        if nid in seen or nid in var_map:
            continue
        seen.add(nid)
        fresh.append(nid)
        if aig.is_and(nid):
            f0, f1 = aig.fanins(nid)
            stack.append(f0 >> 1)
            stack.append(f1 >> 1)
    for nid in sorted(fresh):
        if not aig.is_and(nid):
            if nid == 0:
                var = cnf.new_var()
                clauses.append((-var,))
                var_map[nid] = var
            else:
                var_map[nid] = leaf_var(nid)
            continue
        f0, f1 = aig.fanins(nid)
        a = aig_lit_sat(var_map, f0)
        b = aig_lit_sat(var_map, f1)
        y = cnf.new_var()
        clauses.append((-y, a))
        clauses.append((-y, b))
        clauses.append((y, -a, -b))
        var_map[nid] = y
    return var_map
