"""CNF formulas and Tseitin encoding of netlist and AIG cones.

Literals follow the DIMACS convention: variables are positive integers,
``v`` means *true*, ``-v`` means *false*.  :class:`CNF` is a plain clause
container; :func:`encode_cone` walks the combinational cone of a set of
root nets and emits the Tseitin clauses for every gate, treating primary
inputs and flip-flop outputs as free variables supplied by the caller —
which is what lets the miter construction share input variables between
two netlists.

:func:`encode_aig_cone` is the AIG-native encoder: every node is a
two-input AND, so each costs exactly three clauses, inversion is free (a
complemented edge is just a negated DIMACS literal), and the hash-consing
the AIG performed at construction time has already merged shared
structure — the CNF the solver sees is a fraction of the gate-level
encoding's size.

The AIG encoder is additionally **structure-aware** (``structural=True``,
the default): AND nodes whose local shape spells XOR, MUX, or 3-input
majority — the cells arithmetic lowers to, a full adder being one XOR3
and one MAJ3 — are encoded as one direct constraint over their operand
variables instead of per-AND triples.  The interior nodes of a matched
cone are absorbed: no auxiliary variable, no clauses.  This matters for
CDCL behaviour, not just size: the Tseitin decomposition of an XOR hides
the parity from unit propagation behind auxiliary variables, while the
direct 4-clause form propagates as soon as any two pins are known.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..aig import AIG, _match_mux, lit_compl, lit_node
from ..logic import Gate, GateType, Netlist, NetlistError


class CNF:
    """A conjunction of clauses over positive-integer variables."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, *lits: int) -> None:
        for lit in lits:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unknown var")
        self.clauses.append(lits)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


# The gate encoders below append clause tuples directly: every literal they
# emit comes from ``cnf.new_var()`` or an already-validated var map, so the
# per-literal range check in ``add_clause`` would only burn time on the
# hottest path of miter construction.


def _equal(cnf: CNF, a: int, b: int) -> None:
    clauses = cnf.clauses
    clauses.append((-a, b))
    clauses.append((a, -b))


def _xor_clauses(cnf: CNF, y: int, a: int, b: int) -> None:
    """y <-> a XOR b."""
    clauses = cnf.clauses
    clauses.append((-y, a, b))
    clauses.append((-y, -a, -b))
    clauses.append((y, -a, b))
    clauses.append((y, a, -b))


def _and_clauses(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> AND(operands)."""
    clauses = cnf.clauses
    for lit in operands:
        clauses.append((-y, lit))
    clauses.append((y,) + tuple(-lit for lit in operands))


def _or_clauses(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> OR(operands)."""
    clauses = cnf.clauses
    for lit in operands:
        clauses.append((y, -lit))
    clauses.append((-y,) + tuple(operands))


def _xor_chain(cnf: CNF, y: int, operands: list[int]) -> None:
    """y <-> XOR(operands), decomposed into binary XORs with aux vars."""
    acc = operands[0]
    for lit in operands[1:-1]:
        aux = cnf.new_var()
        _xor_clauses(cnf, aux, acc, lit)
        acc = aux
    if len(operands) == 1:
        _equal(cnf, y, acc)
    else:
        _xor_clauses(cnf, y, acc, operands[-1])


def _mux_clauses(cnf: CNF, y: int, select: int, data0: int,
                 data1: int) -> None:
    """y <-> (select ? data1 : data0)."""
    clauses = cnf.clauses
    clauses.append((-select, -data1, y))
    clauses.append((-select, data1, -y))
    clauses.append((select, -data0, y))
    clauses.append((select, data0, -y))
    # Redundant but propagation-friendly: if both data pins agree, so does y.
    clauses.append((-data0, -data1, y))
    clauses.append((data0, data1, -y))


def encode_gate(cnf: CNF, gate: Gate, y: int, operands: list[int]) -> None:
    """Emit the Tseitin clauses asserting ``y <-> gate(operands)``."""
    gtype = gate.gtype
    if gtype == GateType.BUF:
        _equal(cnf, y, operands[0])
    elif gtype == GateType.NOT:
        _equal(cnf, y, -operands[0])
    elif gtype == GateType.AND:
        _and_clauses(cnf, y, operands)
    elif gtype == GateType.NAND:
        _and_clauses(cnf, -y, operands)
    elif gtype == GateType.OR:
        _or_clauses(cnf, y, operands)
    elif gtype == GateType.NOR:
        _or_clauses(cnf, -y, operands)
    elif gtype == GateType.XOR:
        _xor_chain(cnf, y, operands)
    elif gtype == GateType.XNOR:
        _xor_chain(cnf, -y, operands)
    elif gtype == GateType.MUX:
        _mux_clauses(cnf, y, *operands)
    else:
        raise NetlistError(f"cannot encode gate type {gtype.value} into CNF")


def encode_cone(cnf: CNF, netlist: Netlist, roots: Iterable[int],
                leaf_var: Optional[Callable[[Gate], int]] = None,
                var_map: Optional[dict[int, int]] = None
                ) -> dict[int, int]:
    """Tseitin-encode the combinational cone of ``roots`` into ``cnf``.

    Returns a map from net id to CNF variable.  Primary inputs and flip-flop
    outputs are cut points: their variables come from ``leaf_var`` (a fresh
    variable per leaf by default), so two encodings can share leaves.
    Constants become variables pinned by a unit clause.

    ``var_map`` may carry the result of a previous call over the *same*
    netlist: gates already present are skipped, so cones shared between
    successive root sets (e.g. incremental per-output miters) are encoded
    exactly once.  The map is updated in place and returned.
    """
    if leaf_var is None:
        leaf_var = lambda gate: cnf.new_var()  # noqa: E731
    cone = netlist.transitive_fanin(roots)
    if var_map is None:
        var_map = {}
    gates = netlist.gates
    operands: list[int] = []  # reused across gates to avoid reallocation
    for gid in netlist.topological_order():
        if gid not in cone or gid in var_map:
            continue
        gate = gates[gid]
        if gate.gtype == GateType.INPUT or gate.is_register:
            var_map[gid] = leaf_var(gate)
        elif gate.gtype == GateType.CONST0:
            var = cnf.new_var()
            cnf.clauses.append((-var,))
            var_map[gid] = var
        elif gate.gtype == GateType.CONST1:
            var = cnf.new_var()
            cnf.clauses.append((var,))
            var_map[gid] = var
        else:
            var = cnf.new_var()
            operands.clear()
            for f in gate.fanins:
                operands.append(var_map[f])
            encode_gate(cnf, gate, var, operands)
            var_map[gid] = var
    return var_map


def aig_lit_sat(var_map: dict[int, int], lit: int) -> int:
    """DIMACS literal for an AIG edge: complement becomes negation."""
    var = var_map[lit_node(lit)]
    return -var if lit_compl(lit) else var


def _match_maj(aig: AIG, nid: int) -> Optional[tuple[int, int, int]]:
    """Detect ``~nid == MAJ(a, b, c)`` rooted at AND node ``nid``.

    The carry of a full adder lowers to
    ``(a & b) | (a & c) | (b & c)`` — an OR tree over three 2-literal
    products.  ``~nid`` is expanded as a disjunction by De Morgan
    (complemented AND edges split into their negated fanins); a match
    requires exactly three leaves, each a *positive* AND edge, whose
    fanin pairs are the three 2-subsets of three distinct literals.  The
    expansion is De Morgan throughout, so any structural match is
    semantically exact regardless of what the netlist "meant".  Returns
    the ``(a, b, c)`` operand literals, or ``None``.
    """
    leaves: list[int] = []
    stack = [(nid << 1) | 1]
    while stack:
        lit = stack.pop()
        node = lit >> 1
        if (lit & 1) and aig.is_and(node) and \
                len(leaves) + len(stack) < 3:
            f0, f1 = aig.fanins(node)
            stack.append(f0 ^ 1)
            stack.append(f1 ^ 1)
            continue
        leaves.append(lit)
        if len(leaves) > 3:
            return None
    if len(leaves) != 3:
        return None
    pairs = []
    for lit in leaves:
        if lit & 1 or not aig.is_and(lit >> 1):
            return None
        pairs.append(frozenset(aig.fanins(lit >> 1)))
    operands = frozenset().union(*pairs)
    if len(operands) != 3 or len({o >> 1 for o in operands}) != 3:
        return None
    a, b, c = sorted(operands)
    if {frozenset((a, b)), frozenset((a, c)),
            frozenset((b, c))} != set(pairs):
        return None
    return a, b, c


_LEAF = ("leaf",)


def encode_aig_cone(cnf: CNF, aig: AIG, roots: Iterable[int],
                    leaf_var: Optional[Callable[[int], int]] = None,
                    var_map: Optional[dict[int, int]] = None,
                    structural: bool = True
                    ) -> dict[int, int]:
    """Tseitin-encode the cone of the given AIG literals into ``cnf``.

    Returns a map from node id to CNF variable; use :func:`aig_lit_sat` to
    turn an edge into a signed DIMACS literal.  A plain AND node costs
    three clauses (``y -> a``, ``y -> b``, ``a & b -> y``); primary inputs
    and latches are free leaf variables (``leaf_var`` receives the node
    id); the constant node is pinned false by a unit clause.  ``var_map``
    may carry the result of a previous call over the same AIG so shared
    cones encode once — the incremental-solving workhorse of FRAIG.

    With ``structural=True`` (default) the walk pattern-matches each AND
    node before descending: XOR cones (4 clauses), MUX cones (6), and
    3-input majority cones (6) encode directly over their operand
    variables, and the matched interior nodes are *absorbed* — they get
    no CNF variable unless some other root path references them (in
    which case they are simply encoded on that path as usual).
    """
    if leaf_var is None:
        leaf_var = lambda nid: cnf.new_var()  # noqa: E731
    if var_map is None:
        var_map = {}
    clauses = cnf.clauses
    # Plan the *unencoded* cone: nodes already in var_map are fully
    # encoded (their fanins were encoded with them), so the traversal
    # stops there — incremental callers like FRAIG pay per new node, not
    # per full cone.  Pattern operands always have smaller node ids than
    # the pattern root (AIG fanins precede their node), so emitting the
    # plan in id order is operands-first.
    plan: dict[int, tuple] = {}
    seen: set[int] = set()
    stack = [lit_node(lit) for lit in roots]
    while stack:
        nid = stack.pop()
        if nid in seen or nid in var_map:
            continue
        seen.add(nid)
        if not aig.is_and(nid):
            plan[nid] = _LEAF
            continue
        if structural:
            m = _match_maj(aig, nid)
            if m is not None:
                a, b, c = m
                plan[nid] = ("maj", a, b, c)
                stack.append(a >> 1)
                stack.append(b >> 1)
                stack.append(c >> 1)
                continue
            m = _match_mux(aig, nid)
            if m is not None:
                s, e, t = m
                if t == e ^ 1:
                    plan[nid] = ("xor", s, e)
                    stack.append(s >> 1)
                    stack.append(e >> 1)
                else:
                    plan[nid] = ("mux", s, e, t)
                    stack.append(s >> 1)
                    stack.append(e >> 1)
                    stack.append(t >> 1)
                continue
        f0, f1 = aig.fanins(nid)
        plan[nid] = ("and", f0, f1)
        stack.append(f0 >> 1)
        stack.append(f1 >> 1)
    for nid in sorted(plan):
        entry = plan[nid]
        kind = entry[0]
        if kind == "leaf":
            if nid == 0:
                var = cnf.new_var()
                clauses.append((-var,))
                var_map[nid] = var
            else:
                var_map[nid] = leaf_var(nid)
            continue
        if kind == "and":
            a = aig_lit_sat(var_map, entry[1])
            b = aig_lit_sat(var_map, entry[2])
            y = cnf.new_var()
            clauses.append((-y, a))
            clauses.append((-y, b))
            clauses.append((y, -a, -b))
        elif kind == "xor":
            # ~nid = s ^ e, i.e. y <-> (S == E).
            s = aig_lit_sat(var_map, entry[1])
            e = aig_lit_sat(var_map, entry[2])
            y = cnf.new_var()
            clauses.append((-y, -s, e))
            clauses.append((-y, s, -e))
            clauses.append((y, s, e))
            clauses.append((y, -s, -e))
        elif kind == "mux":
            # ~nid = s ? t : e, i.e. y <-> ~(s ? t : e).
            s = aig_lit_sat(var_map, entry[1])
            e = aig_lit_sat(var_map, entry[2])
            t = aig_lit_sat(var_map, entry[3])
            y = cnf.new_var()
            clauses.append((-s, -t, -y))
            clauses.append((-s, t, y))
            clauses.append((s, -e, -y))
            clauses.append((s, e, y))
            # Redundant but propagation-friendly: agreeing data pins
            # decide y without the select.
            clauses.append((-t, -e, -y))
            clauses.append((t, e, y))
        else:
            # ~nid = MAJ(a, b, c): any two true operands force ~y, any
            # two false force y.
            a = aig_lit_sat(var_map, entry[1])
            b = aig_lit_sat(var_map, entry[2])
            c = aig_lit_sat(var_map, entry[3])
            y = cnf.new_var()
            clauses.append((y, a, b))
            clauses.append((y, a, c))
            clauses.append((y, b, c))
            clauses.append((-y, -a, -b))
            clauses.append((-y, -a, -c))
            clauses.append((-y, -b, -c))
        var_map[nid] = y
    return var_map
