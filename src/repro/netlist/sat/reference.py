"""The original compact CDCL solver, retained as a reference oracle.

This is the pre-arena engine: clauses live as Python lists-of-lists,
watches in a dict keyed by literal, and decisions come from a linear scan
over variable activities.  It is algorithmically a CDCL solver (two
watched literals, first-UIP learning, non-chronological backtracking,
geometric restarts) but makes no attempt at constant-factor speed.

It exists for two jobs:

* **oracle** — the randomized solver tests cross-check the production
  engine (:class:`repro.netlist.sat.solver.Solver`) against this one on
  the same instances, so a bug has to appear in two independent
  implementations to slip through;
* **baseline** — ``scripts/bench.py`` solves the same miters with both
  engines and writes the old-vs-new split to ``BENCH_sat.json``, which is
  what makes solver-throughput regressions (or claimed speedups) visible.

The incremental API mirrors the production solver: ``ensure_vars`` /
``add_clause`` / ``add_clauses`` between ``solve`` calls, assumptions as
the first decision levels, learned clauses kept across calls.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .solver import SolverResult, SolverStats

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class ReferenceSolver:
    """CDCL solver over clauses of non-zero integer literals."""

    def __init__(self, num_vars: int,
                 clauses: Iterable[tuple[int, ...]]) -> None:
        self.num_vars = num_vars
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        # Per-variable state, 1-indexed.
        self.values = [_UNASSIGNED] * (num_vars + 1)
        self.levels = [0] * (num_vars + 1)
        self.reasons: list[Optional[int]] = [None] * (num_vars + 1)
        self.activity = [0.0] * (num_vars + 1)
        self.phase = [False] * (num_vars + 1)
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.stats = SolverStats()
        self._act_inc = 1.0
        self._unsat = False
        self._pending_units: list[int] = []
        self._proof = None
        for clause in clauses:
            self._add_clause(list(clause), learned=False)

    def set_proof(self, sink) -> None:
        """Install (or clear, with ``None``) a DRAT proof sink.

        Same contract as ``Solver.set_proof``: ``sink.add(lits)`` is
        called with every learned clause in DIMACS literals (and with no
        literals for the empty clause).  The reference engine never
        erases clauses, so ``sink.delete`` is never called — which makes
        its proofs a useful diff baseline against the flat-array
        engine's.
        """
        self._proof = sink

    # -- clause management --------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe to ``num_vars`` (incremental use)."""
        grow = num_vars - self.num_vars
        if grow <= 0:
            return
        self.values.extend([_UNASSIGNED] * grow)
        self.levels.extend([0] * grow)
        self.reasons.extend([None] * grow)
        self.activity.extend([0.0] * grow)
        self.phase.extend([False] * grow)
        self.num_vars = num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a problem clause between :meth:`solve` calls.

        The clause is simplified against the root-level assignment so the
        watched-literal invariant survives: literals already false at level
        0 are dropped and clauses already satisfied at level 0 vanish.
        """
        simplified: list[int] = []
        for lit in lits:
            var = abs(lit)
            if var > self.num_vars:
                raise ValueError(f"literal {lit} references an unknown var "
                                 f"(call ensure_vars first)")
            value = self._value(lit)
            if value == _TRUE and self.levels[var] == 0:
                return
            if value == _FALSE and self.levels[var] == 0:
                continue
            simplified.append(lit)
        self._add_clause(simplified, learned=False)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Bulk :meth:`add_clause` (API parity with the production solver)."""
        for clause in clauses:
            self.add_clause(clause)

    def _add_clause(self, lits: list[int], learned: bool) -> Optional[int]:
        if not learned:
            seen: set[int] = set()
            unique: list[int] = []
            for lit in lits:
                if -lit in seen:
                    return None  # tautology
                if lit not in seen:
                    seen.add(lit)
                    unique.append(lit)
            lits = unique
        if not lits:
            self._unsat = True
            return None
        if len(lits) == 1:
            self._pending_units.append(lits[0])
            return None
        index = len(self.clauses)
        self.clauses.append(lits)
        self.watches.setdefault(lits[0], []).append(index)
        self.watches.setdefault(lits[1], []).append(index)
        return index

    # -- assignment ---------------------------------------------------------

    def _value(self, lit: int) -> int:
        value = self.values[abs(lit)]
        return value if lit > 0 else -value

    def _assign(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self.values[var] = _TRUE if lit > 0 else _FALSE
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)

    def _unassign_to(self, level: int) -> None:
        target = self.trail_lim[level]
        for lit in self.trail[target:]:
            var = abs(lit)
            self.values[var] = _UNASSIGNED
            self.reasons[var] = None
        del self.trail[target:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    # -- unit propagation (two watched literals) ----------------------------

    def _propagate(self) -> Optional[int]:
        """Exhaust the propagation queue; returns a conflicting clause index
        or ``None``."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            false_lit = -lit
            watch_list = self.watches.get(false_lit)
            if not watch_list:
                continue
            kept: list[int] = []
            conflict: Optional[int] = None
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == _TRUE:
                    kept.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != _FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if self._value(first) == _FALSE:
                    conflict = ci
                    kept.extend(watch_list[i:])
                    break
                self.stats.propagations += 1
                self._assign(first, ci)
            self.watches[false_lit] = kept
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis (first UIP) --------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self._act_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self._act_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """Derive the first-UIP learned clause and its assertion level."""
        learned: list[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        index = len(self.trail)
        clause: Optional[list[int]] = self.clauses[conflict]
        current = len(self.trail_lim)
        while True:
            assert clause is not None
            for q in clause:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.levels[var] >= current:
                        counter += 1
                    else:
                        learned.append(q)
            while True:
                index -= 1
                if seen[abs(self.trail[index])]:
                    break
            p = self.trail[index]
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                lit = -p
                break
            reason = self.reasons[var]
            assert reason is not None
            clause = self.clauses[reason]
            lit = p
        learned.insert(0, lit)
        if len(learned) == 1:
            return learned, 0
        # The second watch must sit at the assertion level so the watch
        # invariant holds after the backjump.
        best = max(range(1, len(learned)),
                   key=lambda i: self.levels[abs(learned[i])])
        learned[1], learned[best] = learned[best], learned[1]
        back_level = self.levels[abs(learned[1])]
        return learned, back_level

    # -- search -------------------------------------------------------------

    def _decide(self) -> bool:
        best_var = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self.values[var] == _UNASSIGNED and \
                    self.activity[var] > best_act:
                best_var = var
                best_act = self.activity[var]
        if best_var == 0:
            return False
        self.stats.decisions += 1
        self.trail_lim.append(len(self.trail))
        self._assign(best_var if self.phase[best_var] else -best_var, None)
        return True

    def solve(self, assumptions: Iterable[int] = ()) -> SolverResult:
        """Run the CDCL loop to completion.

        ``assumptions`` are literals forced as the first decision levels; a
        ``False`` verdict then means *UNSAT under these assumptions* (the
        clause set itself may still be satisfiable).  The solver backtracks
        to the root level before returning, so it can be reused: add more
        clauses with :meth:`add_clause` and solve again — learned clauses
        and activities are kept.
        """
        if self._unsat:
            return SolverResult(False, stats=self.stats)
        for lit in self._pending_units:
            value = self._value(lit)
            if value == _FALSE:
                self._unsat = True
                if self._proof is not None:
                    self._proof.add(())
                return SolverResult(False, stats=self.stats)
            if value == _UNASSIGNED:
                self._assign(lit, None)
        self._pending_units = []
        assumptions = tuple(assumptions)
        for lit in assumptions:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"assumption {lit} references an "
                                 f"unknown var")

        restart_limit = 100
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if not self.trail_lim:
                    self._unsat = True
                    if self._proof is not None:
                        self._proof.add(())
                    return SolverResult(False, stats=self.stats)
                learned, back_level = self._analyze(conflict)
                if self._proof is not None:
                    self._proof.add(tuple(learned))
                self._unassign_to(back_level)
                self.stats.learned_clauses += 1
                self.stats.learned_literals += len(learned)
                if len(learned) == 1:
                    self._assign(learned[0], None)
                else:
                    index = self._add_clause(learned, learned=True)
                    assert index is not None
                    self._assign(learned[0], index)
                self._act_inc /= 0.95
                continue
            if conflicts_here >= restart_limit and self.trail_lim:
                self.stats.restarts += 1
                conflicts_here = 0
                restart_limit = int(restart_limit * 1.5)
                self._unassign_to(0)
                continue
            # Re-assume any assumptions not currently decided (initially,
            # and again after every backjump or restart below their level).
            assumed = False
            while len(self.trail_lim) < len(assumptions):
                lit = assumptions[len(self.trail_lim)]
                value = self._value(lit)
                if value == _FALSE:
                    # Conflicts with the root level or an earlier
                    # assumption: UNSAT under these assumptions only.
                    if self.trail_lim:
                        self._unassign_to(0)
                    return SolverResult(False, stats=self.stats)
                self.trail_lim.append(len(self.trail))
                if value == _UNASSIGNED:
                    self._assign(lit, None)
                    assumed = True
                    break
                # Already true: leave an empty decision level placeholder.
            if assumed:
                continue
            if not self._decide():
                model = {
                    var: self.values[var] == _TRUE
                    for var in range(1, self.num_vars + 1)
                }
                if self.trail_lim:
                    self._unassign_to(0)
                return SolverResult(True, model=model, stats=self.stats)


def reference_solve(num_vars: int,
                    clauses: Iterable[tuple[int, ...]]) -> SolverResult:
    """One-shot convenience wrapper around :class:`ReferenceSolver`."""
    return ReferenceSolver(num_vars, clauses).solve()
