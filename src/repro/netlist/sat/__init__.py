"""SAT machinery for the netlist IR: Tseitin CNF encoding, a small CDCL
solver, and miter-based combinational equivalence checking.

Typical use::

    from repro.netlist import elaborate
    from repro.netlist.opt import optimize
    from repro.netlist.sat import check_equivalence

    before = elaborate(source, top="alu")
    after = optimize(before).netlist
    verdict = check_equivalence(before, after)
    assert verdict.equivalent     # UNSAT miter == formally proven

On disagreement the result carries a replayed, simulator-confirmed
:class:`Counterexample` naming the differing outputs or next-state
functions; on UNSAT, ``check_equivalence(certify=True)`` has the solver
log a DRAT proof (:class:`ProofLog` via ``Solver.set_proof``) and
re-verifies it with the independent RUP checker (:func:`check_drat`) —
both verdict polarities are then certified by machinery that shares no
code with the solver.
"""

from .cec import (
    CECError,
    Counterexample,
    EquivalenceResult,
    build_miter,
    build_miter_aig,
    check_equivalence,
    replay_counterexample,
)
from .cnf import CNF, aig_lit_sat, encode_aig_cone, encode_cone, encode_gate
from .partition import (
    PartitionedVerdict,
    PartitionOptions,
    extract_cone,
    partition_pairs,
    solve_pairs_parallel,
)
from .preprocess import PreprocessResult, PreprocessStats, preprocess
from .proof import (
    DratCheckResult,
    ProofLog,
    check_drat,
    format_drat_step,
    parse_drat,
)
from .reference import ReferenceSolver, reference_solve
from .solver import Solver, SolverResult, SolverStats, luby, solve

__all__ = [
    "CECError",
    "Counterexample",
    "EquivalenceResult",
    "build_miter",
    "build_miter_aig",
    "check_equivalence",
    "replay_counterexample",
    "CNF",
    "aig_lit_sat",
    "encode_aig_cone",
    "encode_cone",
    "encode_gate",
    "PartitionOptions",
    "PartitionedVerdict",
    "extract_cone",
    "partition_pairs",
    "solve_pairs_parallel",
    "PreprocessResult",
    "PreprocessStats",
    "preprocess",
    "DratCheckResult",
    "ProofLog",
    "check_drat",
    "format_drat_step",
    "parse_drat",
    "ReferenceSolver",
    "Solver",
    "SolverResult",
    "SolverStats",
    "luby",
    "reference_solve",
    "solve",
]
