"""SAT-based combinational equivalence checking of two netlists.

:func:`check_equivalence` builds a *miter*: every matched root pair —
primary outputs by name plus flip-flop *data* pins by register name — is
XOR-ed over shared leaf variables (primary inputs by name, flip-flop
outputs by register name), and the disjunction of the XORs is asserted.
The formula is satisfiable exactly when some input/state assignment makes
the designs disagree, so **UNSAT proves equivalence**.

The default construction works at AIG level (``encoding="aig"``): both
netlists are lowered into *one* shared hash-consed
:class:`~repro.netlist.aig.AIG` over common input/latch nodes, so any
logic the two designs share merges in the unique table **before the solver
ever sees it** — root pairs that hash to the same literal are proven
structurally, for free.  The legacy gate-level encoding
(``encoding="gate"``) Tseitin-encodes both netlists separately and
remains available for comparison benchmarks.

The pairs hashing cannot settle run through a staged pipeline that tries
progressively heavier artillery, in order:

1. **simulation refutation check** — the shared miter AIG is simulated
   under a batch of packed random patterns
   (:func:`~repro.netlist.sim.aig_signatures`); any pattern on which a
   root pair disagrees *is* a complete counterexample, extracted and
   replayed without a single solver conflict.  Easy-SAT instances never
   pay CDCL start-up cost.
2. **SAT sweeping of the miter** (FRAIG-style, shared with the optimizer
   via :func:`~repro.netlist.opt.fraig.fraig_sweep_map`) — internal
   points the two designs implement identically but with different
   structure merge under incremental, assumption-gated SAT; root pairs
   whose cones collapse onto the same literal are *sweep-proven* and
   skip the top-level solve.  Distinguishing patterns found by refuted
   sweep candidates are re-checked against the surviving root pairs.
3. **structure-aware encoding** — the surviving cones are encoded with
   XOR/MUX/majority pattern matching
   (:func:`~repro.netlist.sat.cnf.encode_aig_cone` ``structural=True``),
   then simplified by the SatELite-style CNF preprocessor
   (:func:`~repro.netlist.sat.preprocess.preprocess`) with the shared
   input/state variables frozen, so counterexample models reconstruct.
4. **guided CDCL** — the solver's saved phases are seeded from the
   simulation signatures' majority votes and its initial VSIDS
   activities from cone fanout counts, pointing the search at the
   miter's hot variables from decision one.

Matching registers by name makes this a register-correspondence sequential
check: optimization passes preserve flip-flop names, so proving every
matched next-state function and every output function equal proves the
machines equal from any matched state.  Registers swept away by the
optimizer are allowed — their Q nets stay as free variables of the original
netlist only, so a register that still mattered would show up as an output
or next-state disagreement.

A SAT verdict is never returned raw: the model is replayed through the
compiled simulation engine on both netlists (:func:`replay_counterexample`)
to confirm the disagreement and name the differing signals, guarding
against encoder bugs.  Certification survives every stage: preprocessing
emits RUP-checkable DRAT steps into the same proof log the solver extends,
sweep merges are certified per-merge inside the sweep, and an UNSAT
verdict is checked against the *original* (pre-preprocessing) CNF.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ...obs import attach_solver_progress, get_tracer
from ..aig import AIG, insert_netlist
from ..elaborate import _split_bit_name
from ..logic import Gate, GateType, Netlist
from ..sim import aig_signatures, simulate_compiled
from .cnf import CNF, aig_lit_sat, encode_aig_cone, encode_cone
from .partition import PartitionOptions, solve_pairs_parallel
from .preprocess import preprocess as simplify_cnf
from .proof import ProofLog, check_drat
from .solver import Solver, SolverResult, SolverStats

#: ``sweep="auto"`` runs the miter sweep only on differing cones at least
#: this many AND nodes large — smaller miters solve faster than they
#: sweep.
_SWEEP_MIN_ANDS = 256
#: ...and only when at least this fraction of those AND nodes lands in a
#: multi-member candidate class under the stage-1 simulation signatures.
#: Sweeping pays when the miter is full of internal points the designs
#: compute identically (same-origin designs after optimization); on
#: structure-free miters (cross-implementation arithmetic) every sweep
#: query is a hard monolithic proof and one guided top-level solve wins.
_SWEEP_MIN_DENSITY = 0.2


class CECError(Exception):
    """Raised when two netlists cannot be compared (interface mismatch)."""


@dataclass
class Counterexample:
    """A distinguishing assignment found by the solver, already replayed.

    ``inputs`` maps primary-input bit names to 0/1 and ``state`` maps
    flip-flop names to their assumed current value; ``diff`` lists the
    ``(kind, name, before_value, after_value)`` disagreements observed when
    simulating both netlists under that assignment (kind is ``"output"`` or
    ``"next_state"``).
    """

    inputs: dict[str, int]
    state: dict[str, int]
    diff: list[tuple[str, str, int, int]]

    def packed_inputs(self) -> dict[str, int]:
        """Pack the per-bit input assignment into word-level port values,
        ready for :func:`repro.netlist.simulate_vectors` or
        :meth:`repro.netlist.Interpreter.step`."""
        return _pack_words(self.inputs)

    def packed_state(self) -> dict[str, int]:
        """Pack the per-bit register assignment into word-level values keyed
        by dotted hierarchical names, ready for
        :meth:`repro.netlist.Interpreter.load_state`."""
        return _pack_words(self.state)


def _pack_words(bits: dict[str, int]) -> dict[str, int]:
    words: dict[str, int] = {}
    for name, bit in bits.items():
        base, index = _split_bit_name(name)
        words[base] = words.get(base, 0) | (int(bit) << index)
    return words


@dataclass
class EquivalenceResult:
    """Verdict of :func:`check_equivalence`."""

    equivalent: bool
    counterexample: Optional[Counterexample] = None
    solver_stats: SolverStats = field(default_factory=SolverStats)
    #: Number of (output + next-state) functions compared by the miter.
    compared: int = 0
    #: Wall time spent building the miter (lowering, simulation checks,
    #: Tseitin encoding) vs solving it.
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Miter construction used ("aig" or "gate").
    encoding: str = "aig"
    #: Size of the CNF handed to the solver (before preprocessing).
    cnf_vars: int = 0
    cnf_clauses: int = 0
    #: Root pairs proven equal structurally (identical AIG literals in the
    #: shared unique table) — they never reach the solver.  Always 0 for
    #: the gate-level encoding.
    hash_proven: int = 0
    #: DRAT certification (``certify=True`` / ``proof=``).  ``proof_checked``
    #: is True/False when UNSAT evidence was run through the independent
    #: RUP checker (the top-level proof, the sweep's per-merge proofs, or
    #: both), and None when there was nothing to check: certification
    #: off, a SAT verdict (certified by the replayed counterexample
    #: instead), or a fully hash-proven miter that never reached the
    #: solver.
    proof_checked: Optional[bool] = None
    proof_clauses: int = 0
    proof_bytes: int = 0
    proof_check_seconds: float = 0.0
    #: Root pairs whose cones the miter sweep merged (SAT-proven inside
    #: the shared AIG), and the wall time the sweep took.
    sweep_proven: int = 0
    sweep_seconds: float = 0.0
    #: True when the counterexample came from the packed-simulation check
    #: — the solver never ran (``solver_stats`` is all zeros).
    refuted_by_simulation: bool = False
    #: :class:`~repro.netlist.sat.preprocess.PreprocessStats` counters as
    #: a dict when CNF preprocessing ran, else None.
    preprocessor: Optional[dict] = None
    #: Worker-process count requested (``jobs=``) and the number of
    #: independent miter partitions actually solved.  ``partitions`` is 0
    #: when the staged pipeline settled the verdict before the solve
    #: (hash/sweep-proven, simulation-refuted) or the serial path ran.
    jobs: int = 1
    partitions: int = 0

    def __bool__(self) -> bool:
        return self.equivalent

    def to_report(self, certify: bool = False,
                  include_proof: Optional[bool] = None) -> dict:
        """The verdict as the JSON-ready ``equivalence`` report dict.

        One shape shared by every frontend (CLI ``--json``, the
        ``repro.server`` daemon, the bench tiers), so parallel and serial
        runs — and daemon and one-shot runs — are field-for-field
        comparable.  ``include_proof`` defaults to ``certify``; pass True
        to include the proof block for an uncertified-but-logged run.
        """
        report = {
            "equivalent": self.equivalent,
            "compared": self.compared,
            "encoding": self.encoding,
            "hash_proven": self.hash_proven,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "encode_seconds": self.encode_seconds,
            "solve_seconds": self.solve_seconds,
            "solver": self.solver_stats.to_dict(),
            "sweep_proven": self.sweep_proven,
            "sweep_seconds": self.sweep_seconds,
            "refuted_by_simulation": self.refuted_by_simulation,
            "preprocessor": self.preprocessor,
            "jobs": self.jobs,
            "partitions": self.partitions,
        }
        if include_proof is None:
            include_proof = certify
        if include_proof:
            report["proof"] = {
                "certified": bool(certify),
                "checked": self.proof_checked,
                "clauses": self.proof_clauses,
                "bytes": self.proof_bytes,
                "check_seconds": self.proof_check_seconds,
            }
        if not self.equivalent and self.counterexample is not None:
            report["counterexample"] = {
                "inputs": self.counterexample.packed_inputs(),
                "state": self.counterexample.packed_state(),
                "diff": self.counterexample.diff,
            }
        return report


def _interface(netlist: Netlist) -> tuple[dict[str, int], dict[str, int],
                                          dict[str, int]]:
    """(input name -> net, output name -> net, register name -> gid)."""
    inputs = {
        netlist.gates[gid].name or f"pi_{gid}": gid
        for gid in netlist.inputs
    }
    outputs = dict(netlist.outputs)
    return inputs, outputs, netlist.register_map()


def _check_interfaces(b_in: dict, a_in: dict,
                      b_out: dict, a_out: dict) -> None:
    if set(b_in) != set(a_in):
        only_b = sorted(set(b_in) - set(a_in))
        only_a = sorted(set(a_in) - set(b_in))
        raise CECError(
            f"primary inputs differ (only in before: {only_b}, "
            f"only in after: {only_a})"
        )
    if set(b_out) != set(a_out):
        only_b = sorted(set(b_out) - set(a_out))
        only_a = sorted(set(a_out) - set(b_out))
        raise CECError(
            f"primary outputs differ (only in before: {only_b}, "
            f"only in after: {only_a})"
        )


def _assert_disagreement(cnf: CNF,
                         pairs: list[tuple[int, int]]) -> None:
    """Assert that at least one ``(b_var, a_var)`` pair differs."""
    disagree: list[int] = []
    for b_var, a_var in pairs:
        z = cnf.new_var()
        cnf.add_clause(-z, b_var, a_var)
        cnf.add_clause(-z, -b_var, -a_var)
        cnf.add_clause(z, -b_var, a_var)
        cnf.add_clause(z, b_var, -a_var)
        disagree.append(z)
    cnf.add_clause(*disagree)


def build_miter(before: Netlist, after: Netlist
                ) -> tuple[CNF, dict[str, int], dict[str, int],
                           list[tuple[str, str, int, int]]]:
    """Encode the gate-level miter of two netlists.

    Returns ``(cnf, input_vars, state_vars, compared)`` where ``input_vars``
    / ``state_vars`` map primary-input bit names and flip-flop names to
    their shared CNF variables and ``compared`` lists
    ``(kind, name, before_var, after_var)`` for every matched root pair.
    """
    b_in, b_out, b_regs = _interface(before)
    a_in, a_out, a_regs = _interface(after)
    _check_interfaces(b_in, a_in, b_out, a_out)
    tracer = get_tracer()

    cnf = CNF()
    input_vars = {name: cnf.new_var() for name in sorted(b_in)}
    state_vars = {
        name: cnf.new_var() for name in sorted(set(b_regs) | set(a_regs))
    }

    def leaf_var(gate: Gate) -> int:
        if gate.gtype == GateType.INPUT:
            return input_vars[gate.name or f"pi_{gate.gid}"]
        return state_vars[gate.name or f"dff_{gate.gid}"]

    shared_regs = sorted(set(b_regs) & set(a_regs))
    b_roots = list(b_out.values()) + \
        [before.gates[b_regs[name]].fanins[0] for name in shared_regs]
    a_roots = list(a_out.values()) + \
        [after.gates[a_regs[name]].fanins[0] for name in shared_regs]
    with tracer.span("cec.encode", design=before.name, side="before"):
        b_map = encode_cone(cnf, before, b_roots, leaf_var)
    with tracer.span("cec.encode", design=after.name, side="after"):
        a_map = encode_cone(cnf, after, a_roots, leaf_var)

    compared: list[tuple[str, str, int, int]] = []
    for name in sorted(b_out):
        compared.append(("output", name,
                         b_map[b_out[name]], a_map[a_out[name]]))
    for name in shared_regs:
        compared.append(("next_state", name,
                         b_map[before.gates[b_regs[name]].fanins[0]],
                         a_map[after.gates[a_regs[name]].fanins[0]]))

    _assert_disagreement(cnf, [(b, a) for _, _, b, a in compared])
    return cnf, input_vars, state_vars, compared


def _lower_miter(before: Netlist, after: Netlist
                 ) -> tuple[AIG, dict[str, int], dict[str, int],
                            list[tuple[str, str, int, int]]]:
    """Lower both netlists into one shared hash-consed miter AIG.

    Returns ``(aig, pi_lits, latch_lits, named_pairs)``: the shared graph,
    the input/latch literal per leaf name, and one
    ``(kind, name, before_lit, after_lit)`` entry per matched root pair.
    Pairs whose literals are already equal merged in the unique table.
    """
    b_in, b_out, b_regs = _interface(before)
    a_in, a_out, a_regs = _interface(after)
    _check_interfaces(b_in, a_in, b_out, a_out)
    tracer = get_tracer()

    aig = AIG(name=f"miter:{before.name}")
    pi_lits = {name: aig.add_input(name) for name in sorted(b_in)}
    latch_lits = {
        name: aig.add_latch(name)
        for name in sorted(set(b_regs) | set(a_regs))
    }
    shared_regs = sorted(set(b_regs) & set(a_regs))
    maps = []
    for netlist, inputs, regs in ((before, b_in, b_regs),
                                  (after, a_in, a_regs)):
        input_lits = {gid: pi_lits[name] for name, gid in inputs.items()}
        reg_lits = {gid: latch_lits[name] for name, gid in regs.items()}
        with tracer.span("cec.lower", design=netlist.name,
                         gates=netlist.num_gates):
            maps.append(insert_netlist(aig, netlist, input_lits, reg_lits))
    b_map, a_map = maps

    named_pairs: list[tuple[str, str, int, int]] = []
    for name in sorted(b_out):
        named_pairs.append(("output", name,
                            b_map[b_out[name]], a_map[a_out[name]]))
    for name in shared_regs:
        named_pairs.append(
            ("next_state", name,
             b_map[before.gates[b_regs[name]].fanins[0]],
             a_map[after.gates[a_regs[name]].fanins[0]]))
    return aig, pi_lits, latch_lits, named_pairs


def _encode_pairs(cnf: CNF, aig: AIG, pairs: list[tuple[int, int]],
                  pi_lits: dict[str, int], latch_lits: dict[str, int],
                  structural: bool
                  ) -> tuple[dict[int, int], dict[str, int], dict[str, int]]:
    """Encode the cones of the differing pairs and assert the miter output.

    Returns ``(var_map, input_vars, state_vars)``.  Leaves outside every
    encoded cone never get a variable: they cannot influence the verdict
    and default to 0 in counterexamples.
    """
    roots = [lit for pair in pairs for lit in pair]
    var_map = encode_aig_cone(cnf, aig, roots, structural=structural)
    _assert_disagreement(cnf, [
        (aig_lit_sat(var_map, b), aig_lit_sat(var_map, a))
        for b, a in pairs
    ])
    input_vars: dict[str, int] = {}
    state_vars: dict[str, int] = {}
    for name, lit in pi_lits.items():
        var = var_map.get(lit >> 1)
        if var is not None:
            input_vars[name] = var
    for name, lit in latch_lits.items():
        var = var_map.get(lit >> 1)
        if var is not None:
            state_vars[name] = var
    return var_map, input_vars, state_vars


def build_miter_aig(before: Netlist, after: Netlist,
                    structural: bool = True
                    ) -> tuple[CNF, dict[str, int], dict[str, int],
                               int, int]:
    """Encode the miter of two netlists at AIG level.

    Both designs are lowered into one shared hash-consed AIG over common
    primary-input and latch nodes, so structurally equal cones merge before
    encoding.  Root pairs that end up as the *same literal* are proven
    equal by hashing alone; only the remaining pairs are encoded
    (``structural=True`` pattern-matches XOR/MUX/majority cones, see
    :func:`~repro.netlist.sat.cnf.encode_aig_cone`) and XOR-ed.  Returns
    ``(cnf, input_vars, state_vars, compared, hash_proven)`` — when
    ``hash_proven == compared`` the CNF is empty and the designs are
    equivalent with no solving at all.
    """
    tracer = get_tracer()
    aig, pi_lits, latch_lits, named_pairs = _lower_miter(before, after)
    differing = [(b, a) for _, _, b, a in named_pairs if b != a]
    hash_proven = len(named_pairs) - len(differing)
    if tracer.enabled:
        for kind, name, b, a in named_pairs:
            tracer.instant("cec.pair", kind=kind, name=name,
                           hash_proven=(b == a))
    cnf = CNF()
    input_vars: dict[str, int] = {}
    state_vars: dict[str, int] = {}
    if differing:
        with tracer.span("cec.encode", design=before.name,
                         pairs=len(differing)) as span:
            _, input_vars, state_vars = _encode_pairs(
                cnf, aig, differing, pi_lits, latch_lits, structural)
            span.set(cnf_vars=cnf.num_vars, cnf_clauses=len(cnf.clauses))
    return cnf, input_vars, state_vars, len(named_pairs), hash_proven


def _lit_sig(sigs, mask: int, lit: int) -> int:
    """Packed simulation value of an AIG literal (edge polarity applied)."""
    s = sigs[lit >> 1]
    return (s ^ mask) if lit & 1 else s


def _first_diff_bit(sigs, mask: int,
                    pairs: list[tuple[int, int]]) -> Optional[int]:
    """Index of the first stimulus pattern on which any pair disagrees."""
    for b, a in pairs:
        diff = (_lit_sig(sigs, mask, b) ^ _lit_sig(sigs, mask, a)) & mask
        if diff:
            return (diff & -diff).bit_length() - 1
    return None


def _pattern_assignment(words: dict[int, int], pi_lits: dict[str, int],
                        latch_lits: dict[str, int], bit: int
                        ) -> tuple[dict[str, int], dict[str, int]]:
    """Extract stimulus pattern ``bit`` as named input/state assignments."""
    inputs = {name: (words[lit >> 1] >> bit) & 1
              for name, lit in pi_lits.items()}
    state = {name: (words[lit >> 1] >> bit) & 1
             for name, lit in latch_lits.items()}
    return inputs, state


def _confirm_sim_refutation(before: Netlist, after: Netlist,
                            words: dict[int, int],
                            pi_lits: dict[str, int],
                            latch_lits: dict[str, int],
                            bit: int) -> Counterexample:
    """Replay a simulation-found distinguishing pattern into a confirmed
    :class:`Counterexample` (same guard as the solver path)."""
    inputs, state = _pattern_assignment(words, pi_lits, latch_lits, bit)
    diffs = replay_counterexample(before, after, inputs, state)
    if not diffs:
        raise CECError(
            "miter simulation disagrees but netlist replay does not "
            "(AIG lowering bug)"
        )
    return Counterexample(inputs=inputs, state=state, diff=diffs)


def _sweep_worthwhile(aig: AIG, sigs, mask: int,
                      pairs: list[tuple[int, int]]) -> bool:
    """``sweep="auto"`` policy: candidate-merge density of the differing
    cone, measured on the signatures stage 1 already computed."""
    roots = [lit for pair in pairs for lit in pair]
    cone_ands = [nid for nid in aig.cone(roots) if aig.is_and(nid)]
    if len(cone_ands) < _SWEEP_MIN_ANDS:
        return False
    seen: set[int] = set()
    candidates = 0
    for nid in cone_ands:
        key = min(sigs[nid], sigs[nid] ^ mask)
        if key in seen:
            candidates += 1
        else:
            seen.add(key)
    return candidates >= _SWEEP_MIN_DENSITY * len(cone_ands)


def _seed_solver(solver, var_map: dict[int, int], aig: AIG,
                 sigs, mask: int, num_patterns: int) -> None:
    """Seed saved phases from simulation majority votes and initial VSIDS
    activity from cone fanout counts, when the engine supports either.

    A variable's seeded phase is the value its AIG node took on the
    majority of the stimulus patterns — near-equivalent root pairs make
    most of the miter agree with simulation on most assignments, so the
    search starts in the neighborhood the packed patterns already
    explored.  Activity is seeded proportional to each node's fanout
    inside the encoded cones (capped at half an initial bump), so
    heavily shared signals are decided early, like the fanout-weighted
    variable orders of circuit-aware SAT solvers.
    """
    seed_phases = getattr(solver, "seed_phases", None)
    if seed_phases is not None:
        seed_phases({
            var: bin(sigs[nid] & mask).count("1") * 2 >= num_patterns
            for nid, var in var_map.items()
        })
    seed_activity = getattr(solver, "seed_activity", None)
    if seed_activity is not None:
        fanout: dict[int, int] = {}
        for nid in var_map:
            if aig.is_and(nid):
                for fanin in aig.fanins(nid):
                    node = fanin >> 1
                    fanout[node] = fanout.get(node, 0) + 1
        top = max(fanout.values(), default=0)
        if top:
            seed_activity({
                var_map[nid]: 0.5 * count / top
                for nid, count in fanout.items() if nid in var_map
            })


def replay_counterexample(before: Netlist, after: Netlist,
                          inputs: dict[str, int], state: dict[str, int]
                          ) -> list[tuple[str, str, int, int]]:
    """Simulate both netlists under a candidate distinguishing assignment.

    Replay goes through the compiled engine
    (:func:`repro.netlist.sim.simulate_compiled`), whose per-netlist
    compilation is cached — repeated refutations of the same pair replay at
    straight-line speed.  Returns the observed
    ``(kind, name, before_value, after_value)`` disagreements over primary
    outputs and matched next-state functions (empty when the netlists
    actually agree on this assignment).
    """
    diffs: list[tuple[str, str, int, int]] = []
    results = []
    for netlist in (before, after):
        regs = netlist.register_map()
        net_state = {gid: state.get(name, 0) for name, gid in regs.items()}
        outputs, next_state = simulate_compiled(netlist, inputs, net_state)
        named_next = {
            name: next_state[gid] for name, gid in regs.items()
        }
        results.append((outputs, named_next))
    (b_outputs, b_next), (a_outputs, a_next) = results
    for name in sorted(b_outputs):
        if b_outputs[name] != a_outputs.get(name):
            diffs.append(("output", name, b_outputs[name],
                          a_outputs.get(name, 0)))
    for name in sorted(set(b_next) & set(a_next)):
        if b_next[name] != a_next[name]:
            diffs.append(("next_state", name, b_next[name], a_next[name]))
    return diffs


def check_equivalence(before: Netlist, after: Netlist,
                      encoding: str = "aig",
                      solver_factory=Solver,
                      certify: bool = False,
                      proof: Optional[ProofLog] = None,
                      *,
                      preprocess: bool = True,
                      sweep: Union[bool, str] = "auto",
                      structural: bool = True,
                      sim_patterns: int = 64,
                      seed: int = 2022,
                      jobs: int = 1) -> EquivalenceResult:
    """Prove or refute the equivalence of two netlists.

    Equivalence means: identical values on every primary output and on the
    data pin of every name-matched flip-flop, for all input and register
    assignments (registers present in only one netlist are free).  When the
    miter is satisfiable the model is replayed through the simulator and
    returned as a confirmed :class:`Counterexample`.

    ``encoding`` selects the miter construction: ``"aig"`` (default)
    lowers both designs into one shared hash-consed AIG and runs the
    staged pipeline from the module docstring — simulation refutation
    check, SAT sweeping, structure-aware encoding, CNF preprocessing,
    phase/activity-seeded CDCL — while ``"gate"`` is the legacy per-gate
    Tseitin encoding (only CNF preprocessing applies to it).

    Pipeline knobs (keyword-only):

    * ``preprocess`` — run the SatELite-style CNF preprocessor
      (subsumption, self-subsuming resolution, bounded variable
      elimination) on the miter CNF before solving; shared input/state
      variables are frozen so counterexamples reconstruct.  The result's
      ``preprocessor`` dict carries its counters.
    * ``sweep`` — SAT-sweep the shared miter AIG before encoding: True,
      False, or ``"auto"`` (default: sweep only differing cones that are
      both large and dense with simulation-candidate merges, see
      :func:`_sweep_worthwhile`).  Sweep-proven root pairs are counted
      in ``sweep_proven`` and skip the top-level solve.
    * ``structural`` — XOR/MUX/majority pattern matching in the cone
      encoding (see :func:`~repro.netlist.sat.cnf.encode_aig_cone`).
    * ``sim_patterns`` / ``seed`` — width and RNG seed of the packed
      random stimulus used by the simulation checks, the sweep, and
      phase seeding.  ``sim_patterns=0`` disables the simulation check
      and everything fed by its signatures (auto-sweeping, phase and
      activity seeding) — the benchmark's legacy configuration.
    * ``jobs`` — with ``jobs > 1`` (AIG encoding, default solver, no
      caller-supplied ``proof``) the root pairs surviving stages 1–2 are
      partitioned into fanin-cone-balanced groups and stages 3–4 run in
      up to ``jobs`` worker processes
      (:mod:`~repro.netlist.sat.partition`).  The verdict is identical
      to the serial path: the first refuting worker cancels its
      siblings, all-UNSAT shards merge their solver statistics, and
      under ``certify=True`` every worker RUP-checks its own shard's
      proof (``proof_checked`` is True only if all of them pass).  The
      result's ``jobs``/``partitions`` fields report the fan-out.

    ``solver_factory`` swaps the SAT engine — it is called as
    ``factory(num_vars, clauses)`` with the clause iterable streamed
    straight from the (possibly preprocessed) miter CNF.  The default is
    the production flat-array CDCL solver; ``scripts/bench.py`` passes
    :class:`~repro.netlist.sat.reference.ReferenceSolver` to measure the
    old-vs-new split.  Phase/activity seeding is applied only when the
    engine exposes ``seed_phases`` / ``seed_activity``.

    ``certify=True`` turns on DRAT proof logging and, on an UNSAT
    verdict, replays the proof through the independent RUP checker
    (:func:`~repro.netlist.sat.proof.check_drat`) **against the original
    pre-preprocessing CNF** — preprocessing steps are part of the same
    proof and stay inside the RUP fragment by construction.  Sweep
    merges are certified per-merge inside the sweep; a rejected sweep
    proof makes ``proof_checked`` False even when the top-level proof
    checks.  The result's ``proof_checked`` then certifies the verdict
    (False means some proof was rejected — callers such as the CLI and
    bench treat that as a hard failure).  ``proof`` supplies the
    :class:`ProofLog` to write into — pass one with a stream to keep the
    DRAT text on disk (the CLI's ``--solve-log``); with ``proof`` alone
    the log is recorded but not checked.
    """
    if encoding not in ("aig", "gate"):
        raise ValueError(
            f"unknown miter encoding '{encoding}' "
            f"(valid encodings: 'aig', 'gate')"
        )
    tracer = get_tracer()
    with tracer.span("cec", encoding=encoding, before=before.name,
                     after=after.name) as cec_span:
        start = time.perf_counter()
        sigs = None
        mask = 0
        num_patterns = 0
        sweep_stats = None
        sweep_proven = 0
        sweep_seconds = 0.0
        pre = None
        var_map: dict[int, int] = {}
        work_aig: Optional[AIG] = None

        if encoding == "aig":
            aig, pi_lits, latch_lits, named_pairs = _lower_miter(before,
                                                                 after)
            differing = [(b, a) for _, _, b, a in named_pairs if b != a]
            compared = len(named_pairs)
            hash_proven = compared - len(differing)
            if tracer.enabled:
                for kind, name, b, a in named_pairs:
                    tracer.instant("cec.pair", kind=kind, name=name,
                                   hash_proven=(b == a))
            encode_seconds = time.perf_counter() - start
            cec_span.set(compared=compared, hash_proven=hash_proven)
            if not differing:
                # Every root pair hash-merged to the same literal:
                # structurally proven, nothing to solve.
                cec_span.set(equivalent=True)
                return EquivalenceResult(True, compared=compared,
                                         encode_seconds=encode_seconds,
                                         encoding=encoding,
                                         hash_proven=hash_proven)

            # Stage 1: simulation refutation check.  Any random pattern a
            # root pair disagrees on is already a complete counterexample.
            # ``sim_patterns=0`` disables the check (and the signatures
            # that auto-sweep and phase seeding feed on) — the bench's
            # legacy configuration.
            pairs = differing
            work_aig = aig
            in_lits, st_lits = pi_lits, latch_lits
            words = None
            if sim_patterns > 0:
                rng = random.Random(seed)
                leaves = list(aig.inputs) + list(aig.latches)
                words = {nid: rng.getrandbits(sim_patterns)
                         for nid in leaves}
                num_patterns = sim_patterns
                mask = (1 << num_patterns) - 1
                start = time.perf_counter()
                with tracer.span("cec.simcheck", patterns=num_patterns,
                                 pairs=len(pairs)) as sim_span:
                    sigs = aig_signatures(
                        aig,
                        [words[nid] for nid in aig.inputs],
                        [words[nid] for nid in aig.latches],
                        mask,
                    )
                    bit = _first_diff_bit(sigs, mask, pairs)
                    sim_span.set(refuted=bit is not None)
                encode_seconds += time.perf_counter() - start
                if bit is not None:
                    with tracer.span("cec.replay"):
                        cex = _confirm_sim_refutation(
                            before, after, words, pi_lits, latch_lits, bit)
                    cec_span.set(equivalent=False,
                                 refuted_by="simulation")
                    return EquivalenceResult(False, counterexample=cex,
                                             compared=compared,
                                             encode_seconds=encode_seconds,
                                             encoding=encoding,
                                             hash_proven=hash_proven,
                                             refuted_by_simulation=True)

            # Stage 2: SAT-sweep the miter AIG — internal equivalences
            # the unique table missed collapse under incremental SAT, and
            # root pairs whose cones merge are proven without the
            # top-level solve.
            do_sweep = sweep if isinstance(sweep, bool) else (
                sigs is not None
                and _sweep_worthwhile(aig, sigs, mask, pairs))
            if do_sweep:
                # Imported lazily: opt.fraig imports sat.cnf/proof/solver,
                # so a module-level import here would be circular.
                from ..opt.fraig import FraigStats, fraig_sweep_map
                sweep_start = time.perf_counter()
                sweep_stats = FraigStats()
                with tracer.span("cec.sweep", ands=aig.num_ands,
                                 pairs=len(pairs)) as sweep_span:
                    # Stage 1's stimulus and signatures are handed to
                    # the sweep so its first round does not resimulate.
                    swept = fraig_sweep_map(
                        aig,
                        patterns=sim_patterns if sim_patterns > 0 else 64,
                        seed=seed,
                        stats=sweep_stats, solver_factory=solver_factory,
                        certify=certify, words=words, signatures=sigs)
                    mapped = [(swept.map_lit(b), swept.map_lit(a))
                              for b, a in pairs]
                    pairs = [(b, a) for b, a in mapped if b != a]
                    sweep_proven = len(mapped) - len(pairs)
                    sweep_span.set(sweep_proven=sweep_proven,
                                   remaining=len(pairs))
                sweep_seconds = time.perf_counter() - sweep_start
                work_aig = swept.aig
                in_lits = {name: swept.map_lit(lit)
                           for name, lit in pi_lits.items()}
                st_lits = {name: swept.map_lit(lit)
                           for name, lit in latch_lits.items()}
                words = swept.words
                num_patterns = swept.num_patterns
                mask = (1 << num_patterns) - 1
                cec_span.set(sweep_proven=sweep_proven)
                if tracer.enabled:
                    tracer.metrics.absorb("cec.sweep", {
                        "proven": sweep_stats.proven,
                        "refuted": sweep_stats.refuted,
                        "pairs_proven": sweep_proven,
                    })
                if not pairs:
                    # Hashing + sweeping proved every root pair; under
                    # certify every merge proof was already RUP-checked.
                    proof_checked = None
                    if certify:
                        proof_checked = sweep_stats.proofs_failed == 0
                    cec_span.set(equivalent=True)
                    return EquivalenceResult(
                        True, compared=compared,
                        encode_seconds=encode_seconds,
                        encoding=encoding, hash_proven=hash_proven,
                        proof_checked=proof_checked,
                        proof_clauses=sweep_stats.proof_clauses,
                        proof_bytes=sweep_stats.proof_bytes,
                        proof_check_seconds=sweep_stats.proof_check_seconds,
                        sweep_proven=sweep_proven,
                        sweep_seconds=sweep_seconds)
                # The sweep's refuted candidates appended distinguishing
                # patterns to the stimulus — re-check the surviving pairs
                # under the enriched batch.
                start = time.perf_counter()
                with tracer.span("cec.simcheck", patterns=num_patterns,
                                 pairs=len(pairs),
                                 post_sweep=True) as sim_span:
                    sigs = aig_signatures(
                        work_aig,
                        [words[nid] for nid in aig.inputs],
                        [words[nid] for nid in aig.latches],
                        mask,
                    )
                    bit = _first_diff_bit(sigs, mask, pairs)
                    sim_span.set(refuted=bit is not None)
                encode_seconds += time.perf_counter() - start
                if bit is not None:
                    with tracer.span("cec.replay"):
                        cex = _confirm_sim_refutation(
                            before, after, words, pi_lits, latch_lits, bit)
                    cec_span.set(equivalent=False, refuted_by="simulation")
                    return EquivalenceResult(
                        False, counterexample=cex, compared=compared,
                        encode_seconds=encode_seconds, encoding=encoding,
                        hash_proven=hash_proven,
                        refuted_by_simulation=True,
                        sweep_proven=sweep_proven,
                        sweep_seconds=sweep_seconds)

            # Parallel path: shard the surviving pairs across worker
            # processes — stages 3–4 (encode, preprocess, seeded solve,
            # per-shard certification) run independently per partition
            # and the merged verdict returns here.  Restricted to the
            # default solver and no caller-supplied proof log: a custom
            # engine or a shared on-disk DRAT stream cannot cross the
            # process boundary.
            if (jobs > 1 and len(pairs) > 1 and proof is None
                    and solver_factory is Solver):
                options = PartitionOptions(structural=structural,
                                           preprocess=preprocess,
                                           certify=certify)
                words_by_name = None
                if num_patterns > 0:
                    words_by_name = {
                        name: words[lit >> 1]
                        for name, lit in (*pi_lits.items(),
                                          *latch_lits.items())
                    }
                start = time.perf_counter()
                with tracer.span("cec.parallel", jobs=jobs,
                                 pairs=len(pairs)) as par_span:
                    verdict = solve_pairs_parallel(
                        work_aig, pairs, in_lits, st_lits, jobs,
                        options=options, words_by_name=words_by_name,
                        num_patterns=num_patterns)
                    par_span.set(partitions=verdict.partitions,
                                 satisfiable=verdict.satisfiable)
                solve_seconds = time.perf_counter() - start
                if tracer.enabled:
                    tracer.metrics.absorb("cec.solver",
                                          verdict.stats.to_dict())
                    tracer.metrics.histogram("cec.solve_seconds").observe(
                        solve_seconds)
                proof_clauses = verdict.proof_clauses
                proof_bytes = verdict.proof_bytes
                proof_check_seconds = verdict.proof_check_seconds
                if sweep_stats is not None:
                    proof_clauses += sweep_stats.proof_clauses
                    proof_bytes += sweep_stats.proof_bytes
                    proof_check_seconds += sweep_stats.proof_check_seconds
                if not verdict.satisfiable:
                    proof_checked = None
                    if certify:
                        proof_checked = (
                            verdict.proof_checked is True
                            and (sweep_stats is None
                                 or sweep_stats.proofs_failed == 0))
                    cec_span.set(equivalent=True)
                    return EquivalenceResult(
                        True, solver_stats=verdict.stats,
                        compared=compared,
                        encode_seconds=(encode_seconds
                                        + verdict.encode_seconds),
                        solve_seconds=verdict.solve_seconds,
                        encoding=encoding,
                        cnf_vars=verdict.cnf_vars,
                        cnf_clauses=verdict.cnf_clauses,
                        hash_proven=hash_proven,
                        proof_checked=proof_checked,
                        proof_clauses=proof_clauses,
                        proof_bytes=proof_bytes,
                        proof_check_seconds=proof_check_seconds,
                        sweep_proven=sweep_proven,
                        sweep_seconds=sweep_seconds,
                        preprocessor=verdict.preprocessor,
                        jobs=jobs, partitions=verdict.partitions)
                inputs = {name: 0 for name in before.input_names()}
                inputs.update(verdict.inputs or {})
                state = dict(verdict.state or {})
                with tracer.span("cec.replay"):
                    diffs = replay_counterexample(before, after, inputs,
                                                  state)
                if not diffs:
                    raise CECError(
                        "solver returned a model but simulation shows no "
                        "disagreement (CNF encoding bug)"
                    )
                cec_span.set(equivalent=False)
                cex = Counterexample(inputs=inputs, state=state,
                                     diff=diffs)
                return EquivalenceResult(
                    False, counterexample=cex,
                    solver_stats=verdict.stats, compared=compared,
                    encode_seconds=(encode_seconds
                                    + verdict.encode_seconds),
                    solve_seconds=verdict.solve_seconds,
                    encoding=encoding,
                    cnf_vars=verdict.cnf_vars,
                    cnf_clauses=verdict.cnf_clauses,
                    hash_proven=hash_proven,
                    proof_clauses=proof_clauses,
                    proof_bytes=proof_bytes,
                    sweep_proven=sweep_proven,
                    sweep_seconds=sweep_seconds,
                    preprocessor=verdict.preprocessor,
                    jobs=jobs, partitions=verdict.partitions)

            # Stage 3: structure-aware encoding of the surviving cones.
            start = time.perf_counter()
            cnf = CNF()
            with tracer.span("cec.encode", design=before.name,
                             pairs=len(pairs)) as span:
                var_map, input_vars, state_vars = _encode_pairs(
                    cnf, work_aig, pairs, in_lits, st_lits, structural)
                span.set(cnf_vars=cnf.num_vars,
                         cnf_clauses=len(cnf.clauses))
            encode_seconds += time.perf_counter() - start
        else:
            cnf, input_vars, state_vars, compared_roots = \
                build_miter(before, after)
            compared, hash_proven = len(compared_roots), 0
            encode_seconds = time.perf_counter() - start
        cec_span.set(compared=compared, hash_proven=hash_proven,
                     cnf_clauses=len(cnf.clauses))

        if certify and proof is None:
            proof = ProofLog()
        # CNF preprocessing: the proof steps it emits precede the
        # solver's, so one log certifies the whole pipeline against the
        # original CNF.  Input/state variables are frozen — they must
        # survive for model readback and counterexample reconstruction.
        solve_clauses = cnf.clauses
        if preprocess and cnf.clauses:
            frozen = set(input_vars.values()) | set(state_vars.values())
            with tracer.span("cec.preprocess",
                             cnf_clauses=len(cnf.clauses)) as pp_span:
                pre = simplify_cnf(cnf.num_vars, cnf.clauses,
                                   frozen=frozen, proof=proof)
                pp_span.set(clauses_out=len(pre.clauses),
                            unsat=pre.unsat)
            solve_clauses = pre.clauses
            if tracer.enabled:
                tracer.metrics.absorb("cec.preprocess",
                                      pre.stats.to_dict())

        start = time.perf_counter()
        if pre is not None and pre.unsat:
            # Preprocessing alone derived the empty clause — the proof
            # already ends in it, so certification below proceeds as for
            # any other UNSAT verdict.
            result = SolverResult(False, stats=SolverStats())
            solve_seconds = 0.0
        else:
            with tracer.span("cec.solve", cnf_vars=cnf.num_vars,
                             cnf_clauses=len(solve_clauses)) as solve_span:
                solver = solver_factory(cnf.num_vars, solve_clauses)
                if proof is not None:
                    set_proof = getattr(solver, "set_proof", None)
                    if set_proof is not None:
                        set_proof(proof)
                if sigs is not None and var_map:
                    # Stage 4: point the search where simulation and
                    # structure say the action is.
                    _seed_solver(solver, var_map, work_aig, sigs, mask,
                                 num_patterns)
                attach_solver_progress(solver, tracer)
                result = solver.solve()
                solve_span.set(satisfiable=result.satisfiable,
                               conflicts=result.stats.conflicts)
            solve_seconds = time.perf_counter() - start
        if tracer.enabled:
            tracer.metrics.absorb("cec.solver", result.stats.to_dict())
            tracer.metrics.histogram("cec.solve_seconds").observe(
                solve_seconds)
        pre_dict = pre.stats.to_dict() if pre is not None else None
        proof_clauses = proof.num_added if proof is not None else 0
        proof_bytes = proof.size_bytes() if proof is not None else 0
        proof_check_seconds = 0.0
        if sweep_stats is not None:
            proof_clauses += sweep_stats.proof_clauses
            proof_bytes += sweep_stats.proof_bytes
            proof_check_seconds += sweep_stats.proof_check_seconds
        if not result.satisfiable:
            proof_checked = None
            if certify:
                check_start = time.perf_counter()
                with tracer.span("cec.certify", lemmas=proof.num_added):
                    verdict = check_drat(cnf, proof)
                proof_check_seconds += time.perf_counter() - check_start
                proof_checked = verdict.ok and (
                    sweep_stats is None or sweep_stats.proofs_failed == 0)
            cec_span.set(equivalent=True)
            return EquivalenceResult(True, solver_stats=result.stats,
                                     compared=compared,
                                     encode_seconds=encode_seconds,
                                     solve_seconds=solve_seconds,
                                     encoding=encoding,
                                     cnf_vars=cnf.num_vars,
                                     cnf_clauses=len(cnf.clauses),
                                     hash_proven=hash_proven,
                                     proof_checked=proof_checked,
                                     proof_clauses=proof_clauses,
                                     proof_bytes=proof_bytes,
                                     proof_check_seconds=proof_check_seconds,
                                     sweep_proven=sweep_proven,
                                     sweep_seconds=sweep_seconds,
                                     preprocessor=pre_dict)
        assert result.model is not None
        # Eliminated variables are re-valued by replaying the
        # preprocessor's reconstruction stack; inputs outside every
        # encoded cone (AIG path) carry no CNF variable, so the replay
        # defaults them to 0.
        model = pre.reconstruct(result.model) if pre is not None \
            else result.model
        inputs = {name: 0 for name in before.input_names()}
        inputs.update({
            name: int(model.get(var, False))
            for name, var in input_vars.items()
        })
        state = {
            name: int(model.get(var, False))
            for name, var in state_vars.items()
        }
        with tracer.span("cec.replay"):
            diffs = replay_counterexample(before, after, inputs, state)
        if not diffs:
            raise CECError(
                "solver returned a model but simulation shows no "
                "disagreement (CNF encoding bug)"
            )
        cec_span.set(equivalent=False)
        cex = Counterexample(inputs=inputs, state=state, diff=diffs)
        return EquivalenceResult(False, counterexample=cex,
                                 solver_stats=result.stats,
                                 compared=compared,
                                 encode_seconds=encode_seconds,
                                 solve_seconds=solve_seconds,
                                 encoding=encoding,
                                 cnf_vars=cnf.num_vars,
                                 cnf_clauses=len(cnf.clauses),
                                 hash_proven=hash_proven,
                                 proof_clauses=proof_clauses,
                                 proof_bytes=proof_bytes,
                                 sweep_proven=sweep_proven,
                                 sweep_seconds=sweep_seconds,
                                 preprocessor=pre_dict)
