"""SAT-based combinational equivalence checking of two netlists.

:func:`check_equivalence` builds a *miter*: every matched root pair —
primary outputs by name plus flip-flop *data* pins by register name — is
XOR-ed over shared leaf variables (primary inputs by name, flip-flop
outputs by register name), and the disjunction of the XORs is asserted.
The formula is satisfiable exactly when some input/state assignment makes
the designs disagree, so **UNSAT proves equivalence**.

The default construction works at AIG level (``encoding="aig"``): both
netlists are lowered into *one* shared hash-consed
:class:`~repro.netlist.aig.AIG` over common input/latch nodes, so any
logic the two designs share merges in the unique table **before the solver
ever sees it** — root pairs that hash to the same literal are proven
structurally, for free, and only the genuinely different cones are
Tseitin-encoded (three clauses per AND node, inversion free).  The legacy
gate-level encoding (``encoding="gate"``) Tseitin-encodes both netlists
separately and remains available for comparison benchmarks.

Matching registers by name makes this a register-correspondence sequential
check: optimization passes preserve flip-flop names, so proving every
matched next-state function and every output function equal proves the
machines equal from any matched state.  Registers swept away by the
optimizer are allowed — their Q nets stay as free variables of the original
netlist only, so a register that still mattered would show up as an output
or next-state disagreement.

A SAT verdict is never returned raw: the model is replayed through the
compiled simulation engine on both netlists (:func:`replay_counterexample`)
to confirm the disagreement and name the differing signals, guarding
against encoder bugs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ...obs import attach_solver_progress, get_tracer
from ..aig import AIG, insert_netlist
from ..elaborate import _split_bit_name
from ..logic import Gate, GateType, Netlist
from ..sim import simulate_compiled
from .cnf import CNF, aig_lit_sat, encode_aig_cone, encode_cone
from .proof import ProofLog, check_drat
from .solver import Solver, SolverStats


class CECError(Exception):
    """Raised when two netlists cannot be compared (interface mismatch)."""


@dataclass
class Counterexample:
    """A distinguishing assignment found by the solver, already replayed.

    ``inputs`` maps primary-input bit names to 0/1 and ``state`` maps
    flip-flop names to their assumed current value; ``diff`` lists the
    ``(kind, name, before_value, after_value)`` disagreements observed when
    simulating both netlists under that assignment (kind is ``"output"`` or
    ``"next_state"``).
    """

    inputs: dict[str, int]
    state: dict[str, int]
    diff: list[tuple[str, str, int, int]]

    def packed_inputs(self) -> dict[str, int]:
        """Pack the per-bit input assignment into word-level port values,
        ready for :func:`repro.netlist.simulate_vectors` or
        :meth:`repro.netlist.Interpreter.step`."""
        return _pack_words(self.inputs)

    def packed_state(self) -> dict[str, int]:
        """Pack the per-bit register assignment into word-level values keyed
        by dotted hierarchical names, ready for
        :meth:`repro.netlist.Interpreter.load_state`."""
        return _pack_words(self.state)


def _pack_words(bits: dict[str, int]) -> dict[str, int]:
    words: dict[str, int] = {}
    for name, bit in bits.items():
        base, index = _split_bit_name(name)
        words[base] = words.get(base, 0) | (int(bit) << index)
    return words


@dataclass
class EquivalenceResult:
    """Verdict of :func:`check_equivalence`."""

    equivalent: bool
    counterexample: Optional[Counterexample] = None
    solver_stats: SolverStats = field(default_factory=SolverStats)
    #: Number of (output + next-state) functions compared by the miter.
    compared: int = 0
    #: Wall time spent Tseitin-encoding the miter vs solving it.
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Miter construction used ("aig" or "gate").
    encoding: str = "aig"
    #: Size of the CNF handed to the solver.
    cnf_vars: int = 0
    cnf_clauses: int = 0
    #: Root pairs proven equal structurally (identical AIG literals in the
    #: shared unique table) — they never reach the solver.  Always 0 for
    #: the gate-level encoding.
    hash_proven: int = 0
    #: DRAT certification (``certify=True`` / ``proof=``).  ``proof_checked``
    #: is True/False when an UNSAT proof was run through the independent
    #: RUP checker, and None when there was nothing to check: certification
    #: off, a SAT verdict (certified by the replayed counterexample
    #: instead), or a fully hash-proven miter that never reached the
    #: solver.
    proof_checked: Optional[bool] = None
    proof_clauses: int = 0
    proof_bytes: int = 0
    proof_check_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.equivalent


def _interface(netlist: Netlist) -> tuple[dict[str, int], dict[str, int],
                                          dict[str, int]]:
    """(input name -> net, output name -> net, register name -> gid)."""
    inputs = {
        netlist.gates[gid].name or f"pi_{gid}": gid
        for gid in netlist.inputs
    }
    outputs = dict(netlist.outputs)
    return inputs, outputs, netlist.register_map()


def _check_interfaces(b_in: dict, a_in: dict,
                      b_out: dict, a_out: dict) -> None:
    if set(b_in) != set(a_in):
        only_b = sorted(set(b_in) - set(a_in))
        only_a = sorted(set(a_in) - set(b_in))
        raise CECError(
            f"primary inputs differ (only in before: {only_b}, "
            f"only in after: {only_a})"
        )
    if set(b_out) != set(a_out):
        only_b = sorted(set(b_out) - set(a_out))
        only_a = sorted(set(a_out) - set(b_out))
        raise CECError(
            f"primary outputs differ (only in before: {only_b}, "
            f"only in after: {only_a})"
        )


def _assert_disagreement(cnf: CNF,
                         pairs: list[tuple[int, int]]) -> None:
    """Assert that at least one ``(b_var, a_var)`` pair differs."""
    disagree: list[int] = []
    for b_var, a_var in pairs:
        z = cnf.new_var()
        cnf.add_clause(-z, b_var, a_var)
        cnf.add_clause(-z, -b_var, -a_var)
        cnf.add_clause(z, -b_var, a_var)
        cnf.add_clause(z, b_var, -a_var)
        disagree.append(z)
    cnf.add_clause(*disagree)


def build_miter(before: Netlist, after: Netlist
                ) -> tuple[CNF, dict[str, int], dict[str, int],
                           list[tuple[str, str, int, int]]]:
    """Encode the gate-level miter of two netlists.

    Returns ``(cnf, input_vars, state_vars, compared)`` where ``input_vars``
    / ``state_vars`` map primary-input bit names and flip-flop names to
    their shared CNF variables and ``compared`` lists
    ``(kind, name, before_var, after_var)`` for every matched root pair.
    """
    b_in, b_out, b_regs = _interface(before)
    a_in, a_out, a_regs = _interface(after)
    _check_interfaces(b_in, a_in, b_out, a_out)
    tracer = get_tracer()

    cnf = CNF()
    input_vars = {name: cnf.new_var() for name in sorted(b_in)}
    state_vars = {
        name: cnf.new_var() for name in sorted(set(b_regs) | set(a_regs))
    }

    def leaf_var(gate: Gate) -> int:
        if gate.gtype == GateType.INPUT:
            return input_vars[gate.name or f"pi_{gate.gid}"]
        return state_vars[gate.name or f"dff_{gate.gid}"]

    shared_regs = sorted(set(b_regs) & set(a_regs))
    b_roots = list(b_out.values()) + \
        [before.gates[b_regs[name]].fanins[0] for name in shared_regs]
    a_roots = list(a_out.values()) + \
        [after.gates[a_regs[name]].fanins[0] for name in shared_regs]
    with tracer.span("cec.encode", design=before.name, side="before"):
        b_map = encode_cone(cnf, before, b_roots, leaf_var)
    with tracer.span("cec.encode", design=after.name, side="after"):
        a_map = encode_cone(cnf, after, a_roots, leaf_var)

    compared: list[tuple[str, str, int, int]] = []
    for name in sorted(b_out):
        compared.append(("output", name,
                         b_map[b_out[name]], a_map[a_out[name]]))
    for name in shared_regs:
        compared.append(("next_state", name,
                         b_map[before.gates[b_regs[name]].fanins[0]],
                         a_map[after.gates[a_regs[name]].fanins[0]]))

    _assert_disagreement(cnf, [(b, a) for _, _, b, a in compared])
    return cnf, input_vars, state_vars, compared


def build_miter_aig(before: Netlist, after: Netlist
                    ) -> tuple[CNF, dict[str, int], dict[str, int],
                               int, int]:
    """Encode the miter of two netlists at AIG level.

    Both designs are lowered into one shared hash-consed AIG over common
    primary-input and latch nodes, so structurally equal cones merge before
    encoding.  Root pairs that end up as the *same literal* are proven
    equal by hashing alone; only the remaining pairs are Tseitin-encoded
    and XOR-ed.  Returns ``(cnf, input_vars, state_vars, compared,
    hash_proven)`` — when ``hash_proven == compared`` the CNF is empty and
    the designs are equivalent with no solving at all.
    """
    b_in, b_out, b_regs = _interface(before)
    a_in, a_out, a_regs = _interface(after)
    _check_interfaces(b_in, a_in, b_out, a_out)
    tracer = get_tracer()

    aig = AIG(name=f"miter:{before.name}")
    pi_lits = {name: aig.add_input(name) for name in sorted(b_in)}
    latch_lits = {
        name: aig.add_latch(name)
        for name in sorted(set(b_regs) | set(a_regs))
    }
    shared_regs = sorted(set(b_regs) & set(a_regs))
    maps = []
    for netlist, inputs, regs in ((before, b_in, b_regs),
                                  (after, a_in, a_regs)):
        input_lits = {gid: pi_lits[name] for name, gid in inputs.items()}
        reg_lits = {gid: latch_lits[name] for name, gid in regs.items()}
        with tracer.span("cec.lower", design=netlist.name,
                         gates=netlist.num_gates):
            maps.append(insert_netlist(aig, netlist, input_lits, reg_lits))
    b_map, a_map = maps

    #: (kind, name, before lit, after lit) per matched root.
    named_pairs: list[tuple[str, str, int, int]] = []
    for name in sorted(b_out):
        named_pairs.append(("output", name,
                            b_map[b_out[name]], a_map[a_out[name]]))
    for name in shared_regs:
        named_pairs.append(
            ("next_state", name,
             b_map[before.gates[b_regs[name]].fanins[0]],
             a_map[after.gates[a_regs[name]].fanins[0]]))

    differing = [(b, a) for _, _, b, a in named_pairs if b != a]
    hash_proven = len(named_pairs) - len(differing)
    if tracer.enabled:
        # One hash-prove event per matched root pair: trace viewers show
        # exactly which functions merged in the shared unique table and
        # which fell through to the solver.
        for kind, name, b, a in named_pairs:
            tracer.instant("cec.pair", kind=kind, name=name,
                           hash_proven=(b == a))

    cnf = CNF()
    input_vars: dict[str, int] = {}
    state_vars: dict[str, int] = {}
    if differing:
        with tracer.span("cec.encode", design=before.name,
                         pairs=len(differing)) as span:
            roots = [lit for pair in differing for lit in pair]
            var_map = encode_aig_cone(cnf, aig, roots)
            _assert_disagreement(cnf, [
                (aig_lit_sat(var_map, b), aig_lit_sat(var_map, a))
                for b, a in differing
            ])
            span.set(cnf_vars=cnf.num_vars, cnf_clauses=len(cnf.clauses))
        # Leaves outside every encoded cone never got a variable: they
        # cannot influence the verdict and default to 0 in counterexamples.
        for name, lit in pi_lits.items():
            var = var_map.get(lit >> 1)
            if var is not None:
                input_vars[name] = var
        for name, lit in latch_lits.items():
            var = var_map.get(lit >> 1)
            if var is not None:
                state_vars[name] = var
    return cnf, input_vars, state_vars, len(named_pairs), hash_proven


def replay_counterexample(before: Netlist, after: Netlist,
                          inputs: dict[str, int], state: dict[str, int]
                          ) -> list[tuple[str, str, int, int]]:
    """Simulate both netlists under a candidate distinguishing assignment.

    Replay goes through the compiled engine
    (:func:`repro.netlist.sim.simulate_compiled`), whose per-netlist
    compilation is cached — repeated refutations of the same pair replay at
    straight-line speed.  Returns the observed
    ``(kind, name, before_value, after_value)`` disagreements over primary
    outputs and matched next-state functions (empty when the netlists
    actually agree on this assignment).
    """
    diffs: list[tuple[str, str, int, int]] = []
    results = []
    for netlist in (before, after):
        regs = netlist.register_map()
        net_state = {gid: state.get(name, 0) for name, gid in regs.items()}
        outputs, next_state = simulate_compiled(netlist, inputs, net_state)
        named_next = {
            name: next_state[gid] for name, gid in regs.items()
        }
        results.append((outputs, named_next))
    (b_outputs, b_next), (a_outputs, a_next) = results
    for name in sorted(b_outputs):
        if b_outputs[name] != a_outputs.get(name):
            diffs.append(("output", name, b_outputs[name],
                          a_outputs.get(name, 0)))
    for name in sorted(set(b_next) & set(a_next)):
        if b_next[name] != a_next[name]:
            diffs.append(("next_state", name, b_next[name], a_next[name]))
    return diffs


def check_equivalence(before: Netlist, after: Netlist,
                      encoding: str = "aig",
                      solver_factory=Solver,
                      certify: bool = False,
                      proof: Optional[ProofLog] = None) -> EquivalenceResult:
    """Prove or refute the equivalence of two netlists.

    Equivalence means: identical values on every primary output and on the
    data pin of every name-matched flip-flop, for all input and register
    assignments (registers present in only one netlist are free).  When the
    miter is satisfiable the model is replayed through the simulator and
    returned as a confirmed :class:`Counterexample`.

    ``encoding`` selects the miter construction: ``"aig"`` (default)
    lowers both designs into one shared hash-consed AIG — shared logic
    merges before encoding, hash-equal roots skip the solver entirely and
    each remaining AND costs three clauses — while ``"gate"`` is the
    legacy per-gate Tseitin encoding.  The result carries the wall time
    spent encoding vs solving, the CNF size, and the number of root pairs
    proven by hashing alone.

    ``solver_factory`` swaps the SAT engine — it is called as
    ``factory(num_vars, clauses)`` with the clause iterable streamed
    straight from the miter CNF.  The default is the production
    flat-array CDCL solver; ``scripts/bench.py`` passes
    :class:`~repro.netlist.sat.reference.ReferenceSolver` to measure the
    old-vs-new split.

    ``certify=True`` turns on DRAT proof logging and, on an UNSAT
    verdict, replays the proof through the independent RUP checker
    (:func:`~repro.netlist.sat.proof.check_drat`) — the result's
    ``proof_checked`` then certifies the verdict (False means the proof
    was rejected — callers such as the CLI and bench treat that as a
    hard failure).  ``proof`` supplies the :class:`ProofLog` to
    write into — pass one with a stream to keep the DRAT text on disk
    (the CLI's ``--solve-log``); with ``proof`` alone the log is
    recorded but not checked.
    """
    if encoding not in ("aig", "gate"):
        raise ValueError(
            f"unknown miter encoding '{encoding}' "
            f"(valid encodings: 'aig', 'gate')"
        )
    tracer = get_tracer()
    with tracer.span("cec", encoding=encoding, before=before.name,
                     after=after.name) as cec_span:
        start = time.perf_counter()
        if encoding == "aig":
            cnf, input_vars, state_vars, compared, hash_proven = \
                build_miter_aig(before, after)
        else:
            cnf, input_vars, state_vars, compared_roots = \
                build_miter(before, after)
            compared, hash_proven = len(compared_roots), 0
        encode_seconds = time.perf_counter() - start
        cec_span.set(compared=compared, hash_proven=hash_proven,
                     cnf_clauses=len(cnf.clauses))
        if encoding == "aig" and hash_proven == compared:
            # Every root pair hash-merged to the same literal: structurally
            # proven, nothing to solve.
            cec_span.set(equivalent=True)
            return EquivalenceResult(True, compared=compared,
                                     encode_seconds=encode_seconds,
                                     encoding=encoding,
                                     hash_proven=hash_proven)
        if certify and proof is None:
            proof = ProofLog()
        start = time.perf_counter()
        with tracer.span("cec.solve", cnf_vars=cnf.num_vars,
                         cnf_clauses=len(cnf.clauses)) as solve_span:
            solver = solver_factory(cnf.num_vars, cnf.clauses)
            if proof is not None:
                set_proof = getattr(solver, "set_proof", None)
                if set_proof is not None:
                    set_proof(proof)
            attach_solver_progress(solver, tracer)
            result = solver.solve()
            solve_span.set(satisfiable=result.satisfiable,
                           conflicts=result.stats.conflicts)
        solve_seconds = time.perf_counter() - start
        if tracer.enabled:
            tracer.metrics.absorb("cec.solver", result.stats.to_dict())
            tracer.metrics.histogram("cec.solve_seconds").observe(
                solve_seconds)
        proof_clauses = proof.num_added if proof is not None else 0
        proof_bytes = proof.size_bytes() if proof is not None else 0
        if not result.satisfiable:
            proof_checked = None
            proof_check_seconds = 0.0
            if certify:
                start = time.perf_counter()
                with tracer.span("cec.certify", lemmas=proof_clauses):
                    verdict = check_drat(cnf, proof)
                proof_check_seconds = time.perf_counter() - start
                proof_checked = verdict.ok
            cec_span.set(equivalent=True)
            return EquivalenceResult(True, solver_stats=result.stats,
                                     compared=compared,
                                     encode_seconds=encode_seconds,
                                     solve_seconds=solve_seconds,
                                     encoding=encoding,
                                     cnf_vars=cnf.num_vars,
                                     cnf_clauses=len(cnf.clauses),
                                     hash_proven=hash_proven,
                                     proof_checked=proof_checked,
                                     proof_clauses=proof_clauses,
                                     proof_bytes=proof_bytes,
                                     proof_check_seconds=proof_check_seconds)
        assert result.model is not None
        # Inputs outside every encoded cone (AIG path) carry no CNF
        # variable; the replay still needs a value for every input bit, so
        # default to 0.
        inputs = {name: 0 for name in before.input_names()}
        inputs.update({
            name: int(result.model.get(var, False))
            for name, var in input_vars.items()
        })
        state = {
            name: int(result.model.get(var, False))
            for name, var in state_vars.items()
        }
        with tracer.span("cec.replay"):
            diffs = replay_counterexample(before, after, inputs, state)
        if not diffs:
            raise CECError(
                "solver returned a model but simulation shows no "
                "disagreement (CNF encoding bug)"
            )
        cec_span.set(equivalent=False)
        cex = Counterexample(inputs=inputs, state=state, diff=diffs)
        return EquivalenceResult(False, counterexample=cex,
                                 solver_stats=result.stats,
                                 compared=compared,
                                 encode_seconds=encode_seconds,
                                 solve_seconds=solve_seconds,
                                 encoding=encoding,
                                 cnf_vars=cnf.num_vars,
                                 cnf_clauses=len(cnf.clauses),
                                 hash_proven=hash_proven,
                                 proof_clauses=proof_clauses,
                                 proof_bytes=proof_bytes)
