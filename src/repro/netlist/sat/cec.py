"""SAT-based combinational equivalence checking of two netlists.

:func:`check_equivalence` builds a *miter*: both netlists are
Tseitin-encoded into one CNF with shared variables for matched leaves
(primary inputs by name, flip-flop outputs by register name), every matched
combinational root pair — primary outputs by name plus flip-flop *data*
pins by register name — is XOR-ed, and the disjunction of the XORs is
asserted.  The formula is satisfiable exactly when some input/state
assignment makes the designs disagree, so **UNSAT proves equivalence**.

Matching registers by name makes this a register-correspondence sequential
check: optimization passes preserve flip-flop names, so proving every
matched next-state function and every output function equal proves the
machines equal from any matched state.  Registers swept away by the
optimizer are allowed — their Q nets stay as free variables of the original
netlist only, so a register that still mattered would show up as an output
or next-state disagreement.

A SAT verdict is never returned raw: the model is replayed through the
compiled simulation engine on both netlists (:func:`replay_counterexample`)
to confirm the disagreement and name the differing signals, guarding
against encoder bugs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..elaborate import _split_bit_name
from ..logic import Gate, GateType, Netlist
from ..sim import simulate_compiled
from .cnf import CNF, encode_cone
from .solver import Solver, SolverStats


class CECError(Exception):
    """Raised when two netlists cannot be compared (interface mismatch)."""


@dataclass
class Counterexample:
    """A distinguishing assignment found by the solver, already replayed.

    ``inputs`` maps primary-input bit names to 0/1 and ``state`` maps
    flip-flop names to their assumed current value; ``diff`` lists the
    ``(kind, name, before_value, after_value)`` disagreements observed when
    simulating both netlists under that assignment (kind is ``"output"`` or
    ``"next_state"``).
    """

    inputs: dict[str, int]
    state: dict[str, int]
    diff: list[tuple[str, str, int, int]]

    def packed_inputs(self) -> dict[str, int]:
        """Pack the per-bit input assignment into word-level port values,
        ready for :func:`repro.netlist.simulate_vectors` or
        :meth:`repro.netlist.Interpreter.step`."""
        return _pack_words(self.inputs)

    def packed_state(self) -> dict[str, int]:
        """Pack the per-bit register assignment into word-level values keyed
        by dotted hierarchical names, ready for
        :meth:`repro.netlist.Interpreter.load_state`."""
        return _pack_words(self.state)


def _pack_words(bits: dict[str, int]) -> dict[str, int]:
    words: dict[str, int] = {}
    for name, bit in bits.items():
        base, index = _split_bit_name(name)
        words[base] = words.get(base, 0) | (int(bit) << index)
    return words


@dataclass
class EquivalenceResult:
    """Verdict of :func:`check_equivalence`."""

    equivalent: bool
    counterexample: Optional[Counterexample] = None
    solver_stats: SolverStats = field(default_factory=SolverStats)
    #: Number of (output + next-state) functions compared by the miter.
    compared: int = 0
    #: Wall time spent Tseitin-encoding the miter vs solving it.
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.equivalent


def _interface(netlist: Netlist) -> tuple[dict[str, int], dict[str, int],
                                          dict[str, int]]:
    """(input name -> net, output name -> net, register name -> gid)."""
    inputs = {
        netlist.gates[gid].name or f"pi_{gid}": gid
        for gid in netlist.inputs
    }
    outputs = dict(netlist.outputs)
    return inputs, outputs, netlist.register_map()


def build_miter(before: Netlist, after: Netlist
                ) -> tuple[CNF, dict[str, int], dict[str, int],
                           list[tuple[str, str, int, int]]]:
    """Encode the miter of two netlists.

    Returns ``(cnf, input_vars, state_vars, compared)`` where ``input_vars``
    / ``state_vars`` map primary-input bit names and flip-flop names to
    their shared CNF variables and ``compared`` lists
    ``(kind, name, before_var, after_var)`` for every matched root pair.
    """
    b_in, b_out, b_regs = _interface(before)
    a_in, a_out, a_regs = _interface(after)
    if set(b_in) != set(a_in):
        only_b = sorted(set(b_in) - set(a_in))
        only_a = sorted(set(a_in) - set(b_in))
        raise CECError(
            f"primary inputs differ (only in before: {only_b}, "
            f"only in after: {only_a})"
        )
    if set(b_out) != set(a_out):
        only_b = sorted(set(b_out) - set(a_out))
        only_a = sorted(set(a_out) - set(b_out))
        raise CECError(
            f"primary outputs differ (only in before: {only_b}, "
            f"only in after: {only_a})"
        )

    cnf = CNF()
    input_vars = {name: cnf.new_var() for name in sorted(b_in)}
    state_vars = {
        name: cnf.new_var() for name in sorted(set(b_regs) | set(a_regs))
    }

    def leaf_var(gate: Gate) -> int:
        if gate.gtype == GateType.INPUT:
            return input_vars[gate.name or f"pi_{gate.gid}"]
        return state_vars[gate.name or f"dff_{gate.gid}"]

    shared_regs = sorted(set(b_regs) & set(a_regs))
    b_roots = list(b_out.values()) + \
        [before.gates[b_regs[name]].fanins[0] for name in shared_regs]
    a_roots = list(a_out.values()) + \
        [after.gates[a_regs[name]].fanins[0] for name in shared_regs]
    b_map = encode_cone(cnf, before, b_roots, leaf_var)
    a_map = encode_cone(cnf, after, a_roots, leaf_var)

    compared: list[tuple[str, str, int, int]] = []
    for name in sorted(b_out):
        compared.append(("output", name,
                         b_map[b_out[name]], a_map[a_out[name]]))
    for name in shared_regs:
        compared.append(("next_state", name,
                         b_map[before.gates[b_regs[name]].fanins[0]],
                         a_map[after.gates[a_regs[name]].fanins[0]]))

    disagree: list[int] = []
    for _, _, b_var, a_var in compared:
        z = cnf.new_var()
        cnf.add_clause(-z, b_var, a_var)
        cnf.add_clause(-z, -b_var, -a_var)
        cnf.add_clause(z, -b_var, a_var)
        cnf.add_clause(z, b_var, -a_var)
        disagree.append(z)
    cnf.add_clause(*disagree)
    return cnf, input_vars, state_vars, compared


def replay_counterexample(before: Netlist, after: Netlist,
                          inputs: dict[str, int], state: dict[str, int]
                          ) -> list[tuple[str, str, int, int]]:
    """Simulate both netlists under a candidate distinguishing assignment.

    Replay goes through the compiled engine
    (:func:`repro.netlist.sim.simulate_compiled`), whose per-netlist
    compilation is cached — repeated refutations of the same pair replay at
    straight-line speed.  Returns the observed
    ``(kind, name, before_value, after_value)`` disagreements over primary
    outputs and matched next-state functions (empty when the netlists
    actually agree on this assignment).
    """
    diffs: list[tuple[str, str, int, int]] = []
    results = []
    for netlist in (before, after):
        regs = netlist.register_map()
        net_state = {gid: state.get(name, 0) for name, gid in regs.items()}
        outputs, next_state = simulate_compiled(netlist, inputs, net_state)
        named_next = {
            name: next_state[gid] for name, gid in regs.items()
        }
        results.append((outputs, named_next))
    (b_outputs, b_next), (a_outputs, a_next) = results
    for name in sorted(b_outputs):
        if b_outputs[name] != a_outputs.get(name):
            diffs.append(("output", name, b_outputs[name],
                          a_outputs.get(name, 0)))
    for name in sorted(set(b_next) & set(a_next)):
        if b_next[name] != a_next[name]:
            diffs.append(("next_state", name, b_next[name], a_next[name]))
    return diffs


def check_equivalence(before: Netlist,
                      after: Netlist) -> EquivalenceResult:
    """Prove or refute the equivalence of two netlists.

    Equivalence means: identical values on every primary output and on the
    data pin of every name-matched flip-flop, for all input and register
    assignments (registers present in only one netlist are free).  When the
    miter is satisfiable the model is replayed through the simulator and
    returned as a confirmed :class:`Counterexample`.  The result carries the
    wall time spent encoding vs solving (``encode_seconds`` /
    ``solve_seconds``).
    """
    start = time.perf_counter()
    cnf, input_vars, state_vars, compared = build_miter(before, after)
    encode_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = Solver(cnf.num_vars, cnf.clauses).solve()
    solve_seconds = time.perf_counter() - start
    if not result.satisfiable:
        return EquivalenceResult(True, solver_stats=result.stats,
                                 compared=len(compared),
                                 encode_seconds=encode_seconds,
                                 solve_seconds=solve_seconds)
    assert result.model is not None
    inputs = {
        name: int(result.model.get(var, False))
        for name, var in input_vars.items()
    }
    state = {
        name: int(result.model.get(var, False))
        for name, var in state_vars.items()
    }
    diffs = replay_counterexample(before, after, inputs, state)
    if not diffs:
        raise CECError(
            "solver returned a model but simulation shows no disagreement "
            "(CNF encoding bug)"
        )
    cex = Counterexample(inputs=inputs, state=state, diff=diffs)
    return EquivalenceResult(False, counterexample=cex,
                             solver_stats=result.stats,
                             compared=len(compared),
                             encode_seconds=encode_seconds,
                             solve_seconds=solve_seconds)
