"""Clause-level CNF preprocessing: subsumption, self-subsuming
resolution, and bounded variable elimination.

CDCL search time is dominated by the shape of the formula it is handed,
and Tseitin encodings of miters are full of redundancy the solver pays
for on every propagation: duplicate and subsumed clauses, literals that
self-subsuming resolution can strip, and thousands of single-use
auxiliary variables whose definitions can be resolved away outright.
:func:`preprocess` runs the classic SatELite-style pipeline over
occurrence lists before the solver ever starts:

* **unit propagation at the root** — top-level units are applied
  exhaustively: satisfied clauses are deleted, falsified literals are
  stripped (each strip is itself a proof-logged strengthening).
* **forward/backward subsumption** — every clause takes a turn as the
  *subsumer* through a work queue; anything it subsumes is deleted, and
  strengthened or freshly derived clauses re-enter the queue, so the
  sweep is both forward (new vs old) and backward (old vs new) until a
  fixpoint.  A 64-bit variable signature prunes candidate pairs before
  any set containment test runs.
* **self-subsuming resolution** — when ``C \\ {l}`` subsumes
  ``D \\ {-l}``, resolving ``C`` against ``D`` on ``l`` yields a clause
  that strictly subsumes ``D``: the literal ``-l`` is deleted from ``D``
  in place.
* **bounded variable elimination (NiVER)** — a variable whose
  pos-occurrence × neg-occurrence resolvent set is no larger than the
  clauses it replaces (and no resolvent exceeds a size cap) is resolved
  out of the formula.  The replaced clauses are pushed on a
  reconstruction stack so satisfying assignments of the simplified
  formula extend to the original — which is what lets the CEC path
  replay counterexamples through the simulator unchanged.

**Certification.**  Every transformation is DRAT-logged against the
original formula, and — deliberately — stays inside the RUP fragment
that :func:`repro.netlist.sat.proof.check_drat` verifies:

* a clause strengthened by unit propagation or self-subsumption is RUP
  (negating it unit-propagates the deleted literal's clause into
  conflict), and the *addition is emitted before the original's
  deletion* so the backward checker sees the parent alive;
* a BVE resolvent is RUP: negating it makes both parents unit on the
  eliminated variable in opposite polarity;
* deletions are always sound for an UNSAT proof.

So elimination needs no RAT checking and is **not** disabled under
``certify=True`` — a proof that interleaves preprocessing steps with the
solver's learned clauses checks with the existing RUP checker as-is.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ...obs import get_tracer

#: Skip elimination of variables occurring in more clauses than this
#: (both polarities summed) — resolving out a hub variable is never a
#: simplification and the resolvent scan would be quadratic.
_BVE_OCC_LIMIT = 16
#: NiVER-style size cap: a candidate elimination is abandoned as soon as
#: any single resolvent would exceed this many literals.
_BVE_RESOLVENT_CAP = 12
#: Clauses longer than this never act as subsumers (their subset tests
#: are expensive and almost never hit).
_SUBSUMER_LEN_LIMIT = 24


@dataclass
class PreprocessStats:
    """Counters from one :func:`preprocess` run."""

    #: Clauses deleted because another clause subsumes them.
    subsumed: int = 0
    #: Literals removed by self-subsuming resolution / root-unit strips.
    strengthened: int = 0
    #: Variables resolved out by bounded variable elimination.
    eliminated_vars: int = 0
    #: Clauses replaced by those eliminations.
    eliminated_clauses: int = 0
    #: Resolvents added by those eliminations.
    resolvents: int = 0
    #: Top-level unit assignments applied.
    units: int = 0
    passes: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "subsumed": self.subsumed,
            "strengthened": self.strengthened,
            "eliminated_vars": self.eliminated_vars,
            "eliminated_clauses": self.eliminated_clauses,
            "resolvents": self.resolvents,
            "units": self.units,
            "passes": self.passes,
            "seconds": round(self.seconds, 6),
        }


class PreprocessResult:
    """Simplified formula plus everything needed to undo it on a model.

    ``clauses`` is the surviving clause set over the *original* variable
    numbering (eliminated variables simply no longer occur; root units
    survive as unit clauses).  ``unsat`` is True when preprocessing alone
    derived the empty clause — ``clauses`` then contains it, so feeding
    them to any solver still yields the right verdict.

    :meth:`reconstruct` maps a satisfying assignment of ``clauses`` back
    to one of the original formula by replaying the variable-elimination
    stack in reverse — the standard SatELite model extension.
    """

    __slots__ = ("clauses", "num_vars", "unsat", "stats",
                 "assigned", "_elim_stack")

    def __init__(self, clauses: list[tuple[int, ...]], num_vars: int,
                 unsat: bool, stats: PreprocessStats,
                 assigned: dict[int, bool],
                 elim_stack: list[tuple[int, list[list[int]]]]):
        self.clauses = clauses
        self.num_vars = num_vars
        self.unsat = unsat
        self.stats = stats
        self.assigned = assigned
        self._elim_stack = elim_stack

    def reconstruct(self, model) -> dict[int, bool]:
        """Extend ``model`` (a mapping with ``.get``) over the simplified
        formula to a model of the original formula.

        Eliminated variables are re-valued in reverse elimination order:
        try False; if any clause the elimination erased is unsatisfied,
        the variable must be True (all erased clauses of the opposite
        polarity are then satisfied by construction — their resolvents
        held in the simplified formula).
        """
        out = {v: bool(model.get(v, False))
               for v in range(1, self.num_vars + 1)}
        for var, value in self.assigned.items():
            out[var] = value
        for var, saved in reversed(self._elim_stack):
            out[var] = False
            for clause in saved:
                if not any((lit > 0) == out[abs(lit)] for lit in clause):
                    out[var] = True
                    break
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PreprocessResult(clauses={len(self.clauses)}, "
                f"vars={self.num_vars}, unsat={self.unsat})")


def _clause_sig(lits: Iterable[int]) -> int:
    sig = 0
    for lit in lits:
        sig |= 1 << ((lit if lit > 0 else -lit) & 63)
    return sig


def preprocess(num_vars: int, clauses: Iterable[Iterable[int]],
               frozen: Iterable[int] = (),
               proof=None,
               max_passes: int = 3,
               stats: Optional[PreprocessStats] = None) -> PreprocessResult:
    """Simplify a CNF formula; see the module docstring for the pipeline.

    ``frozen`` variables are never eliminated (callers freeze the
    variables they must read back or assume on — CEC freezes the shared
    input/state variables).  ``proof`` is an optional DRAT sink with
    ``add``/``delete`` (:class:`repro.netlist.sat.proof.ProofLog`); every
    emitted step is RUP-checkable against the original formula.
    ``max_passes`` bounds the propagate/subsume/eliminate iteration.
    """
    if stats is None:
        stats = PreprocessStats()
    start = time.perf_counter()
    frozen_set = set(frozen)
    db: list[Optional[list[int]]] = []
    sigs: list[int] = []
    occs: dict[int, set[int]] = {}
    assigned: dict[int, bool] = {}
    eliminated: set[int] = set()
    elim_stack: list[tuple[int, list[list[int]]]] = []
    unit_queue: list[int] = []
    sub_queue: deque[int] = deque()
    unsat = False

    def attach(lits: list[int]) -> int:
        cid = len(db)
        db.append(lits)
        sigs.append(_clause_sig(lits))
        for lit in lits:
            occs.setdefault(lit, set()).add(cid)
        return cid

    def detach(cid: int) -> None:
        for lit in db[cid]:
            occs[lit].discard(cid)
        db[cid] = None

    def remove_clause(cid: int) -> None:
        if proof is not None:
            proof.delete(db[cid])
        detach(cid)

    def add_derived(lits: list[int]) -> None:
        nonlocal unsat
        if proof is not None:
            proof.add(lits)
        if not lits:
            unsat = True
            return
        cid = attach(lits)
        sub_queue.append(cid)
        if len(lits) == 1:
            unit_queue.append(lits[0])

    def strengthen(cid: int, lit: int) -> None:
        """Remove ``lit`` from clause ``cid`` in place (RUP: add the
        shortened clause, then delete the original)."""
        nonlocal unsat
        old = db[cid]
        new = [x for x in old if x != lit]
        if proof is not None:
            proof.add(new)
            proof.delete(old)
        occs[lit].discard(cid)
        db[cid] = new
        sigs[cid] = _clause_sig(new)
        stats.strengthened += 1
        if not new:
            unsat = True
            return
        if len(new) == 1:
            unit_queue.append(new[0])
        sub_queue.append(cid)

    # -- load ---------------------------------------------------------------
    for raw in clauses:
        seen: set[int] = set()
        out: list[int] = []
        tautology = False
        for lit in raw:
            if lit in seen:
                continue
            if -lit in seen:
                tautology = True
                break
            seen.add(lit)
            out.append(lit)
        if tautology:
            continue
        if not out:
            unsat = True
            break
        cid = attach(out)
        sub_queue.append(cid)
        if len(out) == 1:
            unit_queue.append(out[0])

    # -- root-level unit propagation ----------------------------------------
    def propagate_units() -> None:
        nonlocal unsat
        while unit_queue and not unsat:
            lit = unit_queue.pop()
            var = abs(lit)
            value = lit > 0
            prior = assigned.get(var)
            if prior is not None:
                if prior != value:
                    unsat = True
                    if proof is not None:
                        proof.add(())
                    return
                continue
            assigned[var] = value
            stats.units += 1
            # Keep exactly one active unit clause forcing the literal so
            # the output formula (and any DRAT deletion replay) still
            # carries the fact; delete every other satisfied clause.
            keep_unit = None
            for cid in sorted(occs.get(lit, ())):
                cl = db[cid]
                if cl is None:
                    continue
                if len(cl) == 1 and keep_unit is None:
                    keep_unit = cid
                    continue
                remove_clause(cid)
                stats.subsumed += 1
            if keep_unit is None:
                # The forcing clause was itself removed meanwhile; the
                # literal is still implied, so re-add it explicitly.
                add_derived([lit])
            for cid in sorted(occs.get(-lit, ())):
                if db[cid] is None:
                    continue
                strengthen(cid, -lit)
                if unsat:
                    return

    # -- subsumption + self-subsuming resolution ----------------------------
    def subsumption_pass() -> None:
        nonlocal unsat
        while sub_queue and not unsat:
            if unit_queue:
                propagate_units()
                continue
            cid = sub_queue.popleft()
            cl = db[cid]
            if cl is None or len(cl) > _SUBSUMER_LEN_LIMIT:
                continue
            csig = sigs[cid]
            cset = set(cl)
            pivot = min(cl, key=lambda lit: len(occs.get(lit, ())))
            for did in sorted(occs.get(pivot, ())):
                if did == cid:
                    continue
                dl = db[did]
                if dl is None or len(dl) < len(cl):
                    continue
                if csig & ~sigs[did]:
                    continue
                if cset.issubset(dl):
                    remove_clause(did)
                    stats.subsumed += 1
            for lit in cl:
                rest = cset - {lit}
                for did in sorted(occs.get(-lit, ())):
                    dl = db[did]
                    if dl is None or len(dl) < len(cl):
                        continue
                    if csig & ~sigs[did]:
                        continue
                    if rest.issubset(dl):
                        strengthen(did, -lit)
                        if unsat:
                            return

    # -- bounded variable elimination ---------------------------------------
    def resolve(pset: set[int], nlits: list[int],
                var: int) -> Optional[list[int]]:
        out = set(pset)
        out.discard(var)
        for lit in nlits:
            if lit == -var:
                continue
            if -lit in out:
                return None  # tautological resolvent
            out.add(lit)
        return sorted(out, key=abs)

    def eliminate_pass() -> int:
        nonlocal unsat
        count = 0
        order = sorted(
            (v for v in range(1, num_vars + 1)
             if v not in frozen_set and v not in assigned
             and v not in eliminated),
            key=lambda v: (len(occs.get(v, ())) * len(occs.get(-v, ())),
                           len(occs.get(v, ())) + len(occs.get(-v, ()))))
        for var in order:
            if unsat:
                break
            if unit_queue:
                propagate_units()
            if var in assigned or unsat:
                continue
            pos = [cid for cid in sorted(occs.get(var, ()))
                   if db[cid] is not None]
            neg = [cid for cid in sorted(occs.get(-var, ()))
                   if db[cid] is not None]
            before = len(pos) + len(neg)
            if before == 0 or before > _BVE_OCC_LIMIT:
                continue
            resolvents: list[list[int]] = []
            feasible = True
            for p in pos:
                pset = set(db[p])
                for n in neg:
                    r = resolve(pset, db[n], var)
                    if r is None:
                        continue
                    if len(r) > _BVE_RESOLVENT_CAP or \
                            len(resolvents) >= before:
                        feasible = False
                        break
                    resolvents.append(r)
                if not feasible:
                    break
            if not feasible:
                continue
            saved = [list(db[cid]) for cid in pos + neg]
            for r in resolvents:
                add_derived(r)
            for cid in pos + neg:
                remove_clause(cid)
            elim_stack.append((var, saved))
            eliminated.add(var)
            stats.eliminated_vars += 1
            stats.eliminated_clauses += before
            stats.resolvents += len(resolvents)
            count += 1
        return count

    # -- driver -------------------------------------------------------------
    tracer = get_tracer()
    with tracer.span("preprocess", vars=num_vars, clauses=len(db)) as span:
        for _ in range(max_passes):
            if unsat:
                break
            stats.passes += 1
            propagate_units()
            if unsat:
                break
            subsumption_pass()
            if unsat:
                break
            changed = eliminate_pass()
            propagate_units()
            if not changed and not sub_queue and not unit_queue:
                break
        stats.seconds = time.perf_counter() - start
        span.set(subsumed=stats.subsumed, strengthened=stats.strengthened,
                 eliminated_vars=stats.eliminated_vars, units=stats.units,
                 unsat=unsat)
    if tracer.enabled:
        tracer.metrics.absorb("preprocess", stats.to_dict())

    if unsat:
        out_clauses: list[tuple[int, ...]] = [()]
    else:
        out_clauses = [tuple(cl) for cl in db if cl is not None]
    return PreprocessResult(out_clauses, num_vars, unsat, stats,
                            assigned, elim_stack)
