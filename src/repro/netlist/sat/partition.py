"""Per-output-pair partitioning of miters into parallel SAT sub-jobs.

A multi-output miter is embarrassingly parallel: every root pair (output
or next-state function) can be decided by its own solver over its own
fanin cone.  This module turns the tail of the staged CEC pipeline into
exactly that shape so :func:`~repro.netlist.sat.cec.check_equivalence`
(``jobs=N``), :func:`~repro.netlist.opt.fraig.fraig_sweep` (``jobs=N``)
and the :mod:`repro.server` daemon can shard proof work across a
:mod:`multiprocessing` pool:

* :func:`extract_cone` copies the combinational cone of a set of literals
  into a fresh, self-contained (and therefore cheaply picklable) AIG —
  the shard a worker process receives;
* :func:`partition_pairs` splits the surviving root pairs into
  size-balanced groups (greedy largest-cone-first bin packing, so one
  huge output does not serialize the batch behind it);
* :func:`solve_partition` is the module-level worker entry point: it runs
  stages 3–4 of the CEC pipeline (structure-aware encoding, CNF
  preprocessing with frozen interface variables, signature-seeded CDCL)
  on one shard and returns a plain picklable dict — including the DRAT
  certification verdict when asked, checked *inside the worker* against
  the shard's own CNF;
* :func:`solve_pairs_parallel` drives the pool: payloads are dispatched
  with ``imap_unordered`` and **the first refuting worker cancels its
  siblings** (a counterexample for any pair refutes the whole miter, so
  finishing the other shards would be wasted work).  All-UNSAT shards
  merge into one verdict with accumulated solver statistics and summed
  proof counters.

Verdict parity with the serial path is a hard guarantee: partitioning
changes *who* solves each pair, never *what* is asked, and a SAT model
is still replayed through the simulator by the caller before it is
believed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ...obs import Tracer, get_tracer, use_tracer
from ..aig import AIG, _AND, _LATCH, _PI
from .solver import SolverStats


@dataclass
class PartitionOptions:
    """Picklable knobs for one worker solve (mirrors the serial stage-3/4
    arguments of ``check_equivalence``)."""

    structural: bool = True
    preprocess: bool = True
    certify: bool = False
    #: Record per-shard ``repro.obs`` spans and return them for stitching.
    trace: bool = False


def extract_cone(aig: AIG, roots: Sequence[int]
                 ) -> tuple[AIG, dict[int, int]]:
    """Copy the combinational cone of ``roots`` into a fresh AIG.

    Primary inputs and latches inside the cone become leaves of the new
    graph under their original names (latch next-state functions are not
    carried — the shard is a combinational proof obligation).  Returns
    ``(sub, lit_of)`` where ``lit_of`` maps original node ids to the
    positive literal standing for them in ``sub``; translate a literal
    with ``lit_of[lit >> 1] ^ (lit & 1)``.  Node ids ascend fanins-first
    in the source graph, so iterating the cone in id order is topological.
    """
    sub = AIG(name=aig.name)
    lit_of: dict[int, int] = {0: 0}
    for nid in sorted(aig.cone(roots)):
        if nid == 0:
            continue
        kind = aig.kind(nid)
        if kind == _PI:
            lit_of[nid] = sub.add_input(aig.node_name(nid) or f"pi_{nid}")
        elif kind == _LATCH:
            lit_of[nid] = sub.add_latch(aig.node_name(nid) or
                                        f"latch_{nid}")
        elif kind == _AND:
            f0, f1 = aig.fanins(nid)
            lit_of[nid] = sub.aig_and(lit_of[f0 >> 1] ^ (f0 & 1),
                                      lit_of[f1 >> 1] ^ (f1 & 1))
    return sub, lit_of


def partition_pairs(aig: AIG, pairs: Sequence[tuple[int, int]],
                    jobs: int) -> list[list[tuple[int, int]]]:
    """Split root pairs into at most ``jobs`` size-balanced groups.

    Greedy bin packing by fanin-cone size, largest first into the
    currently lightest group — cones shared between pairs in the *same*
    group are encoded once (the worker builds one shard for the whole
    group), while sharing across groups is re-encoded per worker, the
    price of independence.
    """
    jobs = max(1, min(jobs, len(pairs)))
    if jobs == 1:
        return [list(pairs)]
    sized = sorted(
        ((len(aig.cone(pair)), pair) for pair in pairs),
        key=lambda item: item[0], reverse=True)
    groups: list[list[tuple[int, int]]] = [[] for _ in range(jobs)]
    loads = [0] * jobs
    for size, pair in sized:
        k = loads.index(min(loads))
        groups[k].append(pair)
        loads[k] += size
    return [group for group in groups if group]


def make_payload(aig: AIG, pairs: Sequence[tuple[int, int]],
                 pi_lits: dict[str, int], latch_lits: dict[str, int],
                 options: PartitionOptions,
                 words_by_name: Optional[dict[str, int]] = None,
                 num_patterns: int = 0) -> tuple:
    """Build the picklable shard a worker receives for one pair group.

    The shard AIG contains only the group's cones; leaf stimulus words
    (for solver phase/activity seeding) travel keyed by leaf *name* so
    they survive the node renumbering.
    """
    roots = [lit for pair in pairs for lit in pair]
    sub, lit_of = extract_cone(aig, roots)
    sub_pairs = [(lit_of[b >> 1] ^ (b & 1), lit_of[a >> 1] ^ (a & 1))
                 for b, a in pairs]
    sub_inputs = {name: lit_of[lit >> 1] ^ (lit & 1)
                  for name, lit in pi_lits.items()
                  if (lit >> 1) in lit_of}
    sub_latches = {name: lit_of[lit >> 1] ^ (lit & 1)
                   for name, lit in latch_lits.items()
                   if (lit >> 1) in lit_of}
    words = None
    if words_by_name is not None and num_patterns > 0:
        words = {name: words_by_name.get(name, 0)
                 for name in (*sub_inputs, *sub_latches)}
    return (sub, sub_pairs, sub_inputs, sub_latches, options, words,
            num_patterns)


def solve_partition(payload: tuple) -> dict:
    """Worker entry point: decide one shard of the miter.

    Module-level (and all-picklable in and out) so it crosses the
    :mod:`multiprocessing` boundary.  Runs encode → preprocess → seeded
    solve → (optionally) independent DRAT check, all against the shard's
    own CNF, and returns a plain dict the parent merges.
    """
    # Imported lazily: cec imports this module at module level.
    from ..sim import aig_signatures
    from .cec import _encode_pairs, _seed_solver
    from .cnf import CNF
    from .preprocess import preprocess as simplify_cnf
    from .proof import ProofLog, check_drat
    from .solver import Solver

    (sub, pairs, input_lits, latch_lits, options, words,
     num_patterns) = payload
    tracer = Tracer() if options.trace else get_tracer()
    with use_tracer(tracer):
        with tracer.span("cec.partition", pairs=len(pairs),
                         ands=sub.num_ands) as part_span:
            start = time.perf_counter()
            cnf = CNF()
            with tracer.span("cec.encode", pairs=len(pairs)):
                var_map, input_vars, state_vars = _encode_pairs(
                    cnf, sub, list(pairs), input_lits, latch_lits,
                    options.structural)
            proof = ProofLog() if options.certify else None
            pre = None
            solve_clauses = cnf.clauses
            if options.preprocess and cnf.clauses:
                frozen = set(input_vars.values()) | set(state_vars.values())
                with tracer.span("cec.preprocess",
                                 cnf_clauses=len(cnf.clauses)):
                    pre = simplify_cnf(cnf.num_vars, cnf.clauses,
                                       frozen=frozen, proof=proof)
                solve_clauses = pre.clauses
            encode_seconds = time.perf_counter() - start

            sigs = None
            mask = 0
            if words is not None and num_patterns > 0:
                mask = (1 << num_patterns) - 1
                sigs = aig_signatures(
                    sub,
                    [words.get(sub.node_name(nid) or f"pi_{nid}", 0)
                     for nid in sub.inputs],
                    [words.get(sub.node_name(nid) or f"latch_{nid}", 0)
                     for nid in sub.latches],
                    mask,
                )

            start = time.perf_counter()
            if pre is not None and pre.unsat:
                satisfiable, model, stats = False, None, SolverStats()
            else:
                with tracer.span("cec.solve", cnf_vars=cnf.num_vars,
                                 cnf_clauses=len(solve_clauses)):
                    solver = Solver(cnf.num_vars, solve_clauses)
                    if proof is not None:
                        solver.set_proof(proof)
                    if sigs is not None and var_map:
                        _seed_solver(solver, var_map, sub, sigs, mask,
                                     num_patterns)
                    result = solver.solve()
                satisfiable, model = result.satisfiable, result.model
                stats = result.stats
            solve_seconds = time.perf_counter() - start

            inputs = state = None
            if satisfiable:
                full = pre.reconstruct(model) if pre is not None else model
                inputs = {name: int(full.get(var, False))
                          for name, var in input_vars.items()}
                state = {name: int(full.get(var, False))
                         for name, var in state_vars.items()}

            proof_checked = None
            proof_check_seconds = 0.0
            if options.certify and not satisfiable:
                start = time.perf_counter()
                with tracer.span("cec.certify", lemmas=proof.num_added):
                    proof_checked = check_drat(cnf, proof).ok
                proof_check_seconds = time.perf_counter() - start
            part_span.set(satisfiable=satisfiable,
                          conflicts=stats.conflicts)

    return {
        "satisfiable": satisfiable,
        "pairs": len(pairs),
        "inputs": inputs,
        "state": state,
        "stats": stats,
        "cnf_vars": cnf.num_vars,
        "cnf_clauses": len(cnf.clauses),
        "encode_seconds": encode_seconds,
        "solve_seconds": solve_seconds,
        "preprocessor": pre.stats.to_dict() if pre is not None else None,
        "proof_checked": proof_checked,
        "proof_clauses": proof.num_added if proof is not None else 0,
        "proof_bytes": proof.size_bytes() if proof is not None else 0,
        "proof_check_seconds": proof_check_seconds,
        "spans": tracer.records if options.trace else [],
    }


def _partition_indexed(aig: AIG, pairs: Sequence[tuple[int, int]],
                       jobs: int) -> list[list[int]]:
    """Like :func:`partition_pairs` but over pair *indices*, for callers
    that must correlate shard answers back to their own bookkeeping (the
    FRAIG sweep's candidate list)."""
    jobs = max(1, min(jobs, len(pairs)))
    if jobs == 1:
        return [list(range(len(pairs)))]
    sized = sorted(
        ((len(aig.cone(pairs[i])), i) for i in range(len(pairs))),
        reverse=True)
    groups: list[list[int]] = [[] for _ in range(jobs)]
    loads = [0] * jobs
    for size, i in sized:
        k = loads.index(min(loads))
        groups[k].append(i)
        loads[k] += size
    return [sorted(group) for group in groups if group]


def sweep_partition(payload: tuple) -> dict:
    """Worker entry point for parallel FRAIG candidate proofs.

    Receives a self-contained shard AIG plus a list of
    ``(built_lit, cand_lit, idx)`` merge candidates and answers each with
    one assumption-gated query on a single incremental solver — the same
    shared-cone, shared-learned-clauses discipline as the serial sweep,
    just restricted to this shard's candidates.  Refuted candidates
    return their distinguishing leaf assignment keyed by leaf *name* so
    the parent can extend the stimulus of the full graph.
    """
    from .cnf import CNF, aig_lit_sat, encode_aig_cone
    from .proof import ProofLog, check_drat
    from .solver import Solver

    sub, cands, certify, trace = payload
    tracer = Tracer() if trace else get_tracer()
    results: list[dict] = []
    proofs_checked = proofs_failed = 0
    proof_check_seconds = 0.0
    with use_tracer(tracer):
        with tracer.span("fraig.partition", candidates=len(cands),
                         ands=sub.num_ands):
            cnf = CNF()
            solver = Solver(0, ())
            proof = None
            if certify:
                proof = ProofLog()
                solver.set_proof(proof)
            var_map: dict[int, int] = {}
            leaves = list(sub.inputs) + list(sub.latches)
            for built, cand, idx in cands:
                before_clauses = len(cnf.clauses)
                encode_aig_cone(cnf, sub, (built, cand), var_map=var_map)
                a = aig_lit_sat(var_map, built)
                b = aig_lit_sat(var_map, cand)
                gate_var = cnf.new_var()
                cnf.add_clause(-gate_var, a, b)
                cnf.add_clause(-gate_var, -a, -b)
                solver.ensure_vars(cnf.num_vars)
                solver.add_clauses(cnf.clauses[before_clauses:])
                result = solver.solve(assumptions=(gate_var,))
                if not result.satisfiable:
                    if proof is not None:
                        check_start = time.perf_counter()
                        verdict = check_drat(cnf, proof,
                                             assumptions=(gate_var,))
                        proof_check_seconds += \
                            time.perf_counter() - check_start
                        if verdict.ok:
                            proofs_checked += 1
                        else:
                            proofs_failed += 1
                    results.append({"idx": idx, "proven": True})
                else:
                    model = result.model
                    assignment = {}
                    for nid in leaves:
                        var = var_map.get(nid)
                        bit = int(model.get(var, False)) if var else 0
                        assignment[sub.node_name(nid) or f"pi_{nid}"] = bit
                    results.append({"idx": idx, "proven": False,
                                    "model": assignment})
    return {
        "results": results,
        "stats": solver.stats,
        "proofs_checked": proofs_checked,
        "proofs_failed": proofs_failed,
        "proof_clauses": proof.num_added if proof is not None else 0,
        "proof_bytes": proof.size_bytes() if proof is not None else 0,
        "proof_check_seconds": proof_check_seconds,
        "spans": tracer.records if trace else [],
    }


def solve_sweep_parallel(aig: AIG, cands: Sequence[tuple[int, int]],
                         jobs: int, certify: bool = False) -> dict:
    """Prove/refute FRAIG merge candidates on a process pool.

    ``cands`` are ``(built_lit, cand_lit)`` pairs over ``aig`` (the
    round's rebuilt graph).  Every candidate is answered — there is no
    early cancellation here, the sweep needs all verdicts — and the
    merged reply carries ``verdicts`` (a list aligned with ``cands``:
    ``{"proven": bool, "model": {leaf: bit} | None}``), accumulated
    solver statistics, and the certification counters summed across
    workers.
    """
    import multiprocessing

    tracer = get_tracer()
    trace = bool(tracer.enabled)
    groups = _partition_indexed(aig, cands, jobs)
    payloads = []
    for group in groups:
        roots = [lit for i in group for lit in cands[i]]
        sub, lit_of = extract_cone(aig, roots)
        shard = [(lit_of[cands[i][0] >> 1] ^ (cands[i][0] & 1),
                  lit_of[cands[i][1] >> 1] ^ (cands[i][1] & 1), i)
                 for i in group]
        payloads.append((sub, shard, certify, trace))
    if len(payloads) == 1:
        replies = [sweep_partition(payloads[0])]
    else:
        with multiprocessing.Pool(processes=len(payloads)) as pool:
            replies = list(pool.imap_unordered(sweep_partition, payloads))
    verdicts: list[Optional[dict]] = [None] * len(cands)
    merged = {
        "verdicts": verdicts,
        "stats": SolverStats(),
        "proofs_checked": 0,
        "proofs_failed": 0,
        "proof_clauses": 0,
        "proof_bytes": 0,
        "proof_check_seconds": 0.0,
        "partitions": len(payloads),
    }
    for worker, reply in enumerate(replies):
        merged["stats"].accumulate(reply["stats"])
        merged["proofs_checked"] += reply["proofs_checked"]
        merged["proofs_failed"] += reply["proofs_failed"]
        merged["proof_clauses"] += reply["proof_clauses"]
        merged["proof_bytes"] += reply["proof_bytes"]
        merged["proof_check_seconds"] += reply["proof_check_seconds"]
        for res in reply["results"]:
            verdicts[res["idx"]] = res
        if trace:
            adopt = getattr(tracer, "adopt", None)
            if adopt is not None:
                adopt(reply["spans"], tid=20_000_000 + worker)
    return merged


@dataclass
class PartitionedVerdict:
    """Merged outcome of a pool of :func:`solve_partition` shards."""

    satisfiable: bool
    #: Named counterexample assignment from the refuting shard (SAT only).
    inputs: Optional[dict[str, int]] = None
    state: Optional[dict[str, int]] = None
    stats: SolverStats = field(default_factory=SolverStats)
    cnf_vars: int = 0
    cnf_clauses: int = 0
    #: Critical-path (max-over-workers) encode/solve wall time.
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    preprocessor: Optional[dict] = None
    proof_checked: Optional[bool] = None
    proof_clauses: int = 0
    proof_bytes: int = 0
    proof_check_seconds: float = 0.0
    partitions: int = 0
    #: Shards actually completed (fewer than ``partitions`` when the
    #: first refutation cancelled its siblings).
    completed: int = 0


def _merge_results(results: list[dict], partitions: int,
                   certify: bool) -> PartitionedVerdict:
    merged = PartitionedVerdict(satisfiable=False, partitions=partitions,
                                completed=len(results))
    pp_sum: dict[str, float] = {}
    saw_pp = False
    for res in results:
        merged.stats.accumulate(res["stats"])
        merged.cnf_vars += res["cnf_vars"]
        merged.cnf_clauses += res["cnf_clauses"]
        merged.encode_seconds = max(merged.encode_seconds,
                                    res["encode_seconds"])
        merged.solve_seconds = max(merged.solve_seconds,
                                   res["solve_seconds"])
        merged.proof_clauses += res["proof_clauses"]
        merged.proof_bytes += res["proof_bytes"]
        merged.proof_check_seconds += res["proof_check_seconds"]
        if res["preprocessor"] is not None:
            saw_pp = True
            for key, value in res["preprocessor"].items():
                if isinstance(value, (int, float)):
                    pp_sum[key] = pp_sum.get(key, 0) + value
        if res["satisfiable"]:
            merged.satisfiable = True
            merged.inputs = res["inputs"]
            merged.state = res["state"]
    if saw_pp:
        merged.preprocessor = pp_sum
    if certify and not merged.satisfiable:
        merged.proof_checked = all(
            res["proof_checked"] is True for res in results)
    return merged


def solve_pairs_parallel(aig: AIG, pairs: Sequence[tuple[int, int]],
                         pi_lits: dict[str, int],
                         latch_lits: dict[str, int],
                         jobs: int,
                         options: Optional[PartitionOptions] = None,
                         words_by_name: Optional[dict[str, int]] = None,
                         num_patterns: int = 0) -> PartitionedVerdict:
    """Partition ``pairs``, solve the shards on a process pool, merge.

    The pool is sized ``min(jobs, shards)``; results stream back through
    ``imap_unordered`` and the first satisfiable shard terminates the
    pool (its siblings' UNSAT answers cannot change the verdict).  With a
    single shard the solve runs in-process — no pool, no pickling.
    Recorded worker spans are stitched into the ambient tracer under
    synthetic worker thread ids.
    """
    import multiprocessing

    if options is None:
        options = PartitionOptions()
    tracer = get_tracer()
    if tracer.enabled:
        options = PartitionOptions(structural=options.structural,
                                   preprocess=options.preprocess,
                                   certify=options.certify, trace=True)
    parts = partition_pairs(aig, pairs, jobs)
    payloads = [
        make_payload(aig, part, pi_lits, latch_lits, options,
                     words_by_name, num_patterns)
        for part in parts
    ]
    results: list[dict] = []
    if len(payloads) == 1:
        results.append(solve_partition(payloads[0]))
    else:
        with multiprocessing.Pool(processes=len(payloads)) as pool:
            for res in pool.imap_unordered(solve_partition, payloads):
                results.append(res)
                if res["satisfiable"]:
                    # First refuting worker cancels its siblings.
                    pool.terminate()
                    break
    if tracer.enabled:
        for worker, res in enumerate(results):
            adopt = getattr(tracer, "adopt", None)
            if adopt is not None:
                adopt(res["spans"], tid=10_000_000 + worker)
    return _merge_results(results, len(parts), options.certify)
