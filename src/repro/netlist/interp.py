"""Reference vector-level interpreter for the synthesizable Verilog subset.

The :class:`Interpreter` executes a hierarchical design directly on Python
integers — no bit-blasting, no gate netlist — and serves as the independent
oracle for the elaborator: for any supported design,
:func:`repro.netlist.elaborate` + gate-level simulation must produce the same
cycle-by-cycle outputs as :meth:`Interpreter.step`.

It deliberately mirrors the elaborator's semantic choices (unsigned
arithmetic, the width rules in :func:`repro.netlist.bitblast.binary_width`,
zero-extension, flip-flops holding on unassigned paths, strict diagnostics
for undriven reads / multiple drivers / inferred latches) while sharing none
of the gate-level machinery, so disagreements point at real lowering bugs.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Union

from repro.verilog import ast
from repro.verilog.consteval import (
    ConstEvalError,
    evaluate,
    module_parameters,
)
from repro.verilog.hierarchy import DesignHierarchy, HierarchyError
from repro.verilog.parser import parse

from .bitblast import binary_width, natural_width
from .elaborate import _collect_writes
from .environment import (
    ElaborationError,
    Scope,
    build_signal_table,
    instance_connections,
    instance_overrides,
    lvalue_targets,
    unroll_for,
)


class InterpreterError(Exception):
    """Raised when the reference interpreter cannot execute the design."""


def _mask(width: int) -> int:
    return (1 << width) - 1


class _Driver:
    """One value-producing module item, registered per driven signal.

    ``masks`` records which bits of each driven signal the item produces, so
    a read of specific bits (constant bit/part selects) forces only the
    drivers that matter — mirroring the elaborator's per-bit resolution and
    keeping bitwise feedback structures (e.g. ripple-carry chains threaded
    through a vector) from being misreported as combinational cycles.
    """

    def __init__(self, kind: str, label: str, **info):
        self.kind = kind      # "assign" | "comb" | "inst"
        self.label = label
        self.info = info
        self.masks: dict[str, int] = {}


class _IScope:
    """One flattened module instance of the interpreted design."""

    def __init__(self, escope: Scope):
        self.escope = escope
        self.path = escope.path
        # Per-signal list of drivers (a signal may be driven bitwise by
        # several continuous assignments).
        self.drivers: dict[str, list[_Driver]] = {}
        self.seq_blocks: list[ast.Always] = []
        self.regs: set[str] = set()
        # input port -> (parent scope or None for the top, connected expr)
        self.input_conns: dict[str, tuple[Optional["_IScope"],
                                          Optional[ast.Expression]]] = {}
        self.children: list["_IScope"] = []

    def add_driver(self, masks: dict[str, int], driver: _Driver) -> None:
        driver.masks = masks
        for name in masks:
            self.drivers.setdefault(name, []).append(driver)

    def lvalue_masks(self, lhs: ast.Expression) -> dict[str, int]:
        """Per-signal bit masks written by an assignment target."""
        masks: dict[str, int] = {}
        for name, index in lvalue_targets(self.escope, lhs):
            masks[name] = masks.get(name, 0) | (1 << index)
        return masks

    def full_masks(self, names: set[str]) -> dict[str, int]:
        return {name: _mask(self.escope.width(name)) for name in names}


class Interpreter:
    """Cycle-accurate word-level executor for a hierarchical design."""

    def __init__(self, source: Union[str, ast.Source],
                 top: Optional[str] = None,
                 params: Optional[Mapping[str, int]] = None):
        if isinstance(source, str):
            source = parse(source)
        if top is None:
            if len(source.modules) != 1:
                names = ", ".join(source.module_names()) or "<none>"
                raise InterpreterError(
                    f"a top module name is required when the source defines "
                    f"multiple modules (found: {names})"
                )
            top = source.modules[0].name
        if not source.has_module(top):
            raise InterpreterError(f"top module '{top}' not found in source")
        try:
            DesignHierarchy(source, top)
        except HierarchyError as exc:
            raise InterpreterError(str(exc)) from exc
        self.source = source
        self.top = top
        self.scopes: list[_IScope] = []
        self.top_scope = self._build(source.module(top), top,
                                     dict(params or {}), parent=None,
                                     conn_map=None)
        for port in source.module(top).ports:
            if port.direction == "input":
                self.top_scope.input_conns[port.name] = (None, None)
        self.state: dict[tuple[str, str], int] = {}

    # -- static structure ----------------------------------------------------

    def _build(self, module: ast.Module, path: str,
               overrides: Mapping[str, int], parent: Optional[_IScope],
               conn_map: Optional[dict[str, Optional[ast.Expression]]]
               ) -> _IScope:
        try:
            params = module_parameters(module, overrides)
        except ConstEvalError as exc:
            raise InterpreterError(
                f"cannot resolve parameters of module '{module.name}': {exc}"
            ) from exc
        escope = Scope(path, module, params)
        try:
            build_signal_table(escope)
        except ElaborationError as exc:
            raise InterpreterError(str(exc)) from exc
        iscope = _IScope(escope)
        self.scopes.append(iscope)
        seq_writes: set[str] = set()

        for item in module.items:
            if isinstance(item, ast.NetDecl):
                if item.init is not None:
                    lhs = ast.Identifier(name=item.name)
                    iscope.add_driver(
                        iscope.lvalue_masks(lhs),
                        _Driver("assign", f"initializer of '{item.name}'",
                                lhs=lhs, rhs=item.init))
            elif isinstance(item, ast.Assign):
                iscope.add_driver(
                    iscope.lvalue_masks(item.lhs),
                    _Driver("assign", f"continuous assignment in {path}",
                            lhs=item.lhs, rhs=item.rhs))
            elif isinstance(item, ast.Always):
                writes = _collect_writes(item.statement)
                if item.is_sequential:
                    overlap = writes & seq_writes
                    if overlap:
                        raise InterpreterError(
                            f"signal '{sorted(overlap)[0]}' in {path} has "
                            f"multiple drivers (assigned in more than one "
                            f"sequential always block)"
                        )
                    seq_writes |= writes
                    iscope.seq_blocks.append(item)
                    iscope.regs |= writes
                elif writes:
                    iscope.add_driver(
                        iscope.full_masks(writes),
                        _Driver("comb", f"always @(*) block in {path}",
                                block=item))
            elif isinstance(item, ast.Instance):
                self._build_instance(iscope, item)
        for name in iscope.regs & set(iscope.drivers):
            raise InterpreterError(
                f"signal '{name}' in {path} is driven both sequentially "
                f"and combinationally"
            )
        return iscope

    def _build_instance(self, iscope: _IScope, inst: ast.Instance) -> None:
        child_path = f"{iscope.path}.{inst.instance_name}"
        if not self.source.has_module(inst.module_name):
            raise InterpreterError(
                f"instance '{child_path}' refers to module "
                f"'{inst.module_name}' which is not defined in the source"
            )
        child_module = self.source.module(inst.module_name)
        try:
            # Shared with the elaborator so both engines accept and reject
            # exactly the same instantiations.
            overrides = instance_overrides(iscope.escope.params, inst,
                                           child_module, child_path)
            conn_map = instance_connections(inst, child_module, child_path)
        except ElaborationError as exc:
            raise InterpreterError(str(exc)) from exc

        child = self._build(child_module, child_path, overrides, iscope,
                            conn_map)
        iscope.children.append(child)
        for port in child_module.ports:
            if port.direction == "input":
                child.input_conns[port.name] = (iscope,
                                                conn_map.get(port.name))
            elif port.direction == "output":
                expr = conn_map.get(port.name)
                if expr is not None:
                    iscope.add_driver(
                        iscope.lvalue_masks(expr),
                        _Driver("inst",
                                f"output '{port.name}' of '{child_path}'",
                                child=child, port=port.name, expr=expr))

    @staticmethod
    def _const(expr: ast.Expression, env: Mapping[str, int],
               context: str) -> int:
        try:
            return evaluate(expr, env)
        except ConstEvalError as exc:
            raise InterpreterError(f"{context}: {exc}") from exc

    # -- execution ------------------------------------------------------------

    def reset(self) -> None:
        """Clear all register state back to zero."""
        self.state = {}

    # -- state injection (counterexample replay) -----------------------------

    def load_state(self, flat: Mapping[str, int]) -> None:
        """Seed register state from dotted hierarchical names.

        Keys are ``"<instance path>.<signal>"`` (e.g. ``"counter.q"``) with
        word-level values — exactly the shape produced by
        :meth:`repro.netlist.sat.Counterexample.packed_state` — so a SAT
        counterexample can be replayed on this independent oracle.  Unknown
        names or out-of-range values are rejected; registers not mentioned
        reset to zero.
        """
        regs = {(scope.path, name): scope
                for scope in self.scopes for name in scope.regs}
        state: dict[tuple[str, str], int] = {}
        for dotted, value in flat.items():
            path, _, name = dotted.rpartition(".")
            scope = regs.get((path, name))
            if scope is None:
                raise InterpreterError(
                    f"'{dotted}' does not name a register of the design"
                )
            width = scope.escope.width(name)
            if not 0 <= int(value) < (1 << width):
                raise InterpreterError(
                    f"value {value} does not fit register '{dotted}' "
                    f"([{width - 1}:0])"
                )
            state[(path, name)] = int(value)
        self.state = state

    def flat_state(self) -> dict[str, int]:
        """Current register state keyed by dotted hierarchical names.

        Registers still at their reset value are included explicitly, so the
        result round-trips through :meth:`load_state`.
        """
        flat: dict[str, int] = {}
        for scope in self.scopes:
            for name in sorted(scope.regs):
                flat[f"{scope.path}.{name}"] = self.state.get(
                    (scope.path, name), 0)
        return flat

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Execute one clock cycle: returns outputs, then advances state."""
        evaluation = _Evaluation(self, inputs)
        outputs: dict[str, int] = {}
        for port in self.source.module(self.top).ports:
            if port.direction == "output":
                outputs[port.name] = evaluation.read_signal(self.top_scope,
                                                            port.name)
        self.state = evaluation.next_state()
        return outputs

    def run(self, vectors: list[Mapping[str, int]]) -> list[dict[str, int]]:
        """Execute a sequence of input vectors, one cycle each."""
        return [self.step(vector) for vector in vectors]


class _Evaluation:
    """Demand-driven evaluation of one clock cycle."""

    def __init__(self, interp: Interpreter, inputs: Mapping[str, int]):
        self.interp = interp
        self.inputs = inputs
        # (path, name) -> (value, assigned_bit_mask)
        self.values: dict[tuple[str, str], tuple[int, int]] = {}
        self.done: set[int] = set()
        self.in_progress: set[int] = set()

    # -- signal resolution ----------------------------------------------------

    def read_signal(self, iscope: _IScope, name: str,
                    need: Optional[int] = None) -> int:
        """Resolve (at least) the ``need`` bits of a signal and return it.

        ``need`` defaults to the full width.  Only drivers overlapping the
        needed bits are forced, so constant bit/part selects resolve with
        the same per-bit granularity as the elaborator.
        """
        width = iscope.escope.width(name)
        if need is None:
            need = _mask(width)
        key = (iscope.path, name)
        cached = self.values.get(key)
        if cached is not None and cached[1] & need == need:
            return cached[0]

        if name in iscope.input_conns:
            parent, expr = iscope.input_conns[name]
            if parent is None:
                if name not in self.inputs:
                    raise InterpreterError(
                        f"missing value for input port '{name}'"
                    )
                value = int(self.inputs[name]) & _mask(width)
            elif expr is None:
                value = 0
            else:
                value, _ = self.eval(parent, expr, width=width)
                value &= _mask(width)
            self.values[key] = (value, _mask(width))
            return value

        if name in iscope.regs:
            value = self.interp.state.get(key, 0) & _mask(width)
            return value

        drivers = iscope.drivers.get(name)
        if not drivers:
            raise InterpreterError(
                f"signal '{name}' in {iscope.path} is read but has no driver"
            )
        for driver in drivers:
            if driver.masks.get(name, 0) & need:
                self.force(iscope, driver)
        value, mask = self.values.get(key, (0, 0))
        if mask & need != need:
            raise InterpreterError(
                f"signal '{name}' in {iscope.path} is only partially "
                f"assigned (inferred latch or missing driver bits)"
            )
        return value

    def force(self, iscope: _IScope, driver: _Driver) -> None:
        if id(driver) in self.done:
            return
        if id(driver) in self.in_progress:
            raise InterpreterError(
                f"combinational cycle detected through {driver.label}"
            )
        self.in_progress.add(id(driver))
        try:
            if driver.kind == "assign":
                targets = lvalue_targets(iscope.escope, driver.info["lhs"])
                value, _ = self.eval(iscope, driver.info["rhs"],
                                     width=len(targets))
                self._scatter(iscope, driver.info["lhs"], value, driver)
            elif driver.kind == "comb":
                env = _ProcEnv(self, iscope, sequential=False)
                self._exec(env, driver.info["block"].statement)
                for name, (value, mask) in env.wr.items():
                    self._set_bits(iscope, name, value, mask, driver)
            else:  # "inst"
                child = driver.info["child"]
                value = self.read_signal(child, driver.info["port"])
                self._scatter(iscope, driver.info["expr"], value, driver)
        finally:
            self.in_progress.discard(id(driver))
        self.done.add(id(driver))

    def _scatter(self, iscope: _IScope, lhs: ast.Expression, value: int,
                 driver: _Driver) -> None:
        targets = lvalue_targets(iscope.escope, lhs)
        for j, (name, index) in enumerate(targets):
            bit = (value >> j) & 1
            self._set_bits(iscope, name, bit << index, 1 << index, driver)

    def _set_bits(self, iscope: _IScope, name: str, value: int, mask: int,
                  driver: _Driver) -> None:
        key = (iscope.path, name)
        old_value, old_mask = self.values.get(key, (0, 0))
        if old_mask & mask:
            raise InterpreterError(
                f"signal '{name}' in {iscope.path} has multiple drivers "
                f"({driver.label} overlaps an earlier one)"
            )
        self.values[key] = (old_value | (value & mask), old_mask | mask)

    # -- next state -----------------------------------------------------------

    def next_state(self) -> dict[tuple[str, str], int]:
        state = dict(self.interp.state)
        for iscope in self.interp.scopes:
            for block in iscope.seq_blocks:
                env = _ProcEnv(self, iscope, sequential=True)
                self._exec(env, block.statement)
                for name, (value, mask) in env.wr.items():
                    key = (iscope.path, name)
                    width = iscope.escope.width(name)
                    old = state.get(key, 0)
                    state[key] = ((old & ~mask) | (value & mask)) & \
                        _mask(width)
        return state

    # -- expression evaluation -------------------------------------------------

    def eval(self, iscope: _IScope, expr: ast.Expression,
             reader: Optional[Callable[[str], int]] = None,
             consts: Optional[Mapping[str, int]] = None,
             width: int = 0) -> tuple[int, int]:
        """Evaluate an expression to ``(value, width)``; value is masked.

        ``width`` is the context width of the assignment target; it
        propagates exactly as in :meth:`Elaborator.lower_expr` so both
        engines size carries identically.
        """
        escope = iscope.escope
        env = dict(escope.params)
        if consts:
            env.update(consts)

        def read(name: str, need: Optional[int] = None) -> int:
            if reader is not None:
                return reader(name, need)
            return self.read_signal(iscope, name, need)

        def ev(node: ast.Expression, ctx: int = 0) -> tuple[int, int]:
            if isinstance(node, ast.Identifier):
                if node.name in env:
                    value = env[node.name]
                    base = natural_width(value)
                    return value & _mask(base), max(base, ctx)
                if node.name in escope.signals:
                    base = escope.width(node.name)
                    return read(node.name) & _mask(base), max(base, ctx)
                raise InterpreterError(
                    f"identifier '{node.name}' in {escope.path} is neither "
                    f"a declared signal nor a constant"
                )
            if isinstance(node, ast.IntConst):
                base = node.width if node.width is not None else \
                    natural_width(node.value)
                return node.value & _mask(base), max(base, ctx)
            if isinstance(node, ast.UnaryOp):
                return ev_unary(node, ctx)
            if isinstance(node, ast.BinaryOp):
                return ev_binary(node, ctx)
            if isinstance(node, ast.Ternary):
                cond, _ = ev(node.cond)
                tv, tw = ev(node.true_value, ctx)
                fv, fw = ev(node.false_value, ctx)
                width = max(tw, fw)
                return (tv if cond else fv), width
            if isinstance(node, ast.Concat):
                value, width = 0, 0
                for part in node.parts:
                    pv, pw = ev(part)
                    value = (value << pw) | pv
                    width += pw
                return value, width
            if isinstance(node, ast.Repeat):
                count = self.interp._const(node.count, env,
                                           "replication count")
                if count < 1:
                    raise InterpreterError(
                        f"replication count must be positive, got {count}"
                    )
                chunk, cw = ev(node.value)
                value = 0
                for _ in range(count):
                    value = (value << cw) | chunk
                return value, cw * count
            if isinstance(node, ast.BitSelect):
                return ev_bit_select(node)
            if isinstance(node, ast.PartSelect):
                return ev_part_select(node)
            raise InterpreterError(
                f"unsupported expression {type(node).__name__} in "
                f"{escope.path}"
            )

        def ev_unary(node: ast.UnaryOp, ctx: int) -> tuple[int, int]:
            op = node.op
            value, width = ev(node.operand,
                              ctx if op in ("~", "+", "-") else 0)
            if op == "~":
                return ~value & _mask(width), width
            if op == "+":
                return value, width
            if op == "-":
                return -value & _mask(width), width
            if op == "!":
                return int(value == 0), 1
            if op == "&":
                return int(value == _mask(width)), 1
            if op == "|":
                return int(value != 0), 1
            if op == "^":
                return bin(value).count("1") % 2, 1
            if op == "~&":
                return int(value != _mask(width)), 1
            if op == "~|":
                return int(value == 0), 1
            if op in ("~^", "^~"):
                return 1 - bin(value).count("1") % 2, 1
            raise InterpreterError(f"unsupported unary operator {op!r}")

        def ev_binary(node: ast.BinaryOp, ctx: int) -> tuple[int, int]:
            op = node.op
            if op in ("/", "%", "**"):
                try:
                    value = evaluate(node, env)
                except ConstEvalError as exc:
                    raise InterpreterError(
                        f"non-constant '{op}' is not supported in "
                        f"{escope.path}: {exc}"
                    ) from exc
                base = natural_width(value)
                return value & _mask(base), max(base, ctx)
            if op in ("<<", "<<<", ">>", ">>>"):
                lv, lw = ev(node.left, ctx)
                try:
                    amount = evaluate(node.right, env)
                except ConstEvalError:
                    amount, _ = ev(node.right)
                if amount < 0:
                    raise InterpreterError(
                        f"negative shift amount {amount} in {escope.path}"
                    )
                if op in ("<<", "<<<"):
                    return (lv << amount) & _mask(lw), lw
                return lv >> amount, lw
            sub_ctx = ctx if op in ("+", "-", "&", "|", "^", "~^", "^~") \
                else 0
            lv, lw = ev(node.left, sub_ctx)
            rv, rw = ev(node.right, sub_ctx)
            width = binary_width(op, lw, rw)
            if op == "+":
                return (lv + rv) & _mask(width), width
            if op == "-":
                return (lv - rv) & _mask(width), width
            if op == "*":
                return (lv * rv) & _mask(width), max(width, ctx)
            if op == "&":
                return lv & rv, width
            if op == "|":
                return lv | rv, width
            if op == "^":
                return lv ^ rv, width
            if op in ("~^", "^~"):
                return ~(lv ^ rv) & _mask(width), width
            if op in ("==", "==="):
                return int(lv == rv), 1
            if op in ("!=", "!=="):
                return int(lv != rv), 1
            if op == "<":
                return int(lv < rv), 1
            if op == ">":
                return int(lv > rv), 1
            if op == "<=":
                return int(lv <= rv), 1
            if op == ">=":
                return int(lv >= rv), 1
            if op == "&&":
                return int(bool(lv) and bool(rv)), 1
            if op == "||":
                return int(bool(lv) or bool(rv)), 1
            raise InterpreterError(f"unsupported binary operator {op!r}")

        def ev_bit_select(node: ast.BitSelect) -> tuple[int, int]:
            target = node.target
            strict = isinstance(target, ast.Identifier) and \
                target.name not in env and target.name in escope.signals
            try:
                index = evaluate(node.index, env)
            except ConstEvalError:
                tv, _ = ev(target)
                index, _ = ev(node.index)
                return (tv >> index) & 1, 1
            if strict:
                width = escope.width(target.name)
                if not 0 <= index < width:
                    raise InterpreterError(
                        f"bit select {target.name}[{index}] out of range "
                        f"[{width - 1}:0] in {escope.path}"
                    )
                # Demand only the selected bit so bitwise feedback through a
                # vector does not read as a whole-signal cycle.
                return (read(target.name, 1 << index) >> index) & 1, 1
            tv, _ = ev(target)
            return (tv >> index) & 1, 1

        def ev_part_select(node: ast.PartSelect) -> tuple[int, int]:
            target = node.target
            strict = isinstance(target, ast.Identifier) and \
                target.name not in env and target.name in escope.signals
            msb = self.interp._const(node.msb, env, "part-select msb")
            lsb = self.interp._const(node.lsb, env, "part-select lsb")
            if msb < lsb or lsb < 0:
                raise InterpreterError(
                    f"part select [{msb}:{lsb}] must be written msb:lsb "
                    f"with a non-negative lsb"
                )
            width = msb - lsb + 1
            if strict:
                twidth = escope.width(target.name)
                if msb >= twidth:
                    raise InterpreterError(
                        f"part select {target.name}[{msb}:{lsb}] out of "
                        f"range [{twidth - 1}:0] in {escope.path}"
                    )
                tv = read(target.name, _mask(width) << lsb)
                return (tv >> lsb) & _mask(width), width
            tv, _ = ev(target)
            return (tv >> lsb) & _mask(width), width

        return ev(expr, width)

    # -- procedural execution --------------------------------------------------

    def _exec(self, env: "_ProcEnv", stmt: Optional[ast.Statement]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for sub in stmt.statements:
                self._exec(env, sub)
            return
        if isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            if isinstance(stmt.lhs, ast.Identifier) and \
                    stmt.lhs.name in env.consts:
                raise InterpreterError(
                    f"assignment to loop variable '{stmt.lhs.name}' outside "
                    f"the for-loop step is not supported in {env.iscope.path}"
                )
            targets = lvalue_targets(env.iscope.escope, stmt.lhs, env.consts)
            value, _ = self.eval(env.iscope, stmt.rhs, reader=env.read,
                                 consts=env.consts, width=len(targets))
            env.write(targets, value,
                      blocking=isinstance(stmt, ast.BlockingAssign))
            return
        if isinstance(stmt, ast.If):
            cond, _ = self.eval(env.iscope, stmt.cond, reader=env.read,
                                consts=env.consts)
            self._exec(env, stmt.then_stmt if cond else stmt.else_stmt)
            return
        if isinstance(stmt, ast.Case):
            sel, _ = self.eval(env.iscope, stmt.expr, reader=env.read,
                               consts=env.consts)
            default_stmt = None
            for item in stmt.items:
                if item.conditions is None:
                    if default_stmt is None:
                        default_stmt = item.statement
                    continue
                matched = False
                for expr in item.conditions:
                    label, _ = self.eval(env.iscope, expr, reader=env.read,
                                         consts=env.consts)
                    if label == sel:
                        matched = True
                        break
                if matched:
                    self._exec(env, item.statement)
                    return
            self._exec(env, default_stmt)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(env, stmt)
            return
        raise InterpreterError(
            f"unsupported procedural statement {type(stmt).__name__} in "
            f"{env.iscope.path}"
        )

    def _exec_for(self, env: "_ProcEnv", stmt: ast.For) -> None:
        try:
            for _ in unroll_for(stmt, env.iscope.escope.params, env.consts,
                                env.iscope.path):
                self._exec(env, stmt.body)
        except ElaborationError as exc:
            raise InterpreterError(str(exc)) from exc


class _ProcEnv:
    """Concrete procedural state: written values/masks + blocking overrides."""

    def __init__(self, evaluation: _Evaluation, iscope: _IScope,
                 sequential: bool):
        self.evaluation = evaluation
        self.iscope = iscope
        self.sequential = sequential
        self.consts: dict[str, int] = {}
        self.wr: dict[str, tuple[int, int]] = {}   # name -> (value, mask)
        self.rd: dict[str, tuple[int, int]] = {}   # blocking overrides

    def read(self, name: str, need: Optional[int] = None) -> int:
        width = self.iscope.escope.width(name)
        if need is None:
            need = _mask(width)
        if self.sequential:
            # Non-blocking semantics: reads see the pre-edge value unless a
            # blocking assignment earlier in the block overrode it.
            value, mask = self.rd.get(name, (0, 0))
        else:
            value, mask = self.wr.get(name, (0, 0))
        if mask & need == need:
            return value
        base = self.evaluation.read_signal(self.iscope, name,
                                           need & ~mask) & _mask(width)
        return (base & ~mask) | (value & mask)

    def write(self, targets: list[tuple[str, int]], value: int,
              blocking: bool) -> None:
        stores = (self.wr, self.rd) if blocking or not self.sequential \
            else (self.wr,)
        for j, (name, index) in enumerate(targets):
            bit = (value >> j) & 1
            for store in stores:
                old_value, old_mask = store.get(name, (0, 0))
                store[name] = (
                    (old_value & ~(1 << index)) | (bit << index),
                    old_mask | (1 << index),
                )
