"""Command-line front door: ``python -m repro <design.v>``.

Parses and elaborates a Verilog file, optionally optimizes the netlist
(``--optimize`` / ``--passes``), optionally proves the optimized netlist
equivalent to the unoptimized one with the SAT checker (``--check``) or
to a second design (``--check-against FILE``), optionally measures
simulation throughput over random stimulus (``--cycles``, with ``--sim
compiled|interp`` selecting the engine), and prints gate/depth/flip-flop
statistics — as a table or as JSON.  Frontend and elaboration problems
are reported as one-line diagnostics with exit code 1.

The equivalence check runs the full staged CEC pipeline (simulation
refutation, SAT sweeping, structure-aware encoding, CNF preprocessing,
seeded CDCL — see :mod:`repro.netlist.sat.cec`); ``--no-preprocess``
is the escape hatch that skips the CNF preprocessor.

Certification: ``--certify`` has the solver log a DRAT proof and runs
any UNSAT equivalence verdict through the independent RUP checker
(exit 1 if the certificate is refused); ``--solve-log FILE`` streams the
DRAT text to disk for offline re-checking (e.g. with drat-trim).
Preprocessing steps land in the same proof, so certified runs keep
preprocessing on.

Observability (:mod:`repro.obs`): ``--trace FILE.json`` records every
phase of the run as Chrome trace-event JSON (open it in Perfetto or
``chrome://tracing``), ``--profile`` prints a self/total wall-time tree
over the same spans, and ``-v`` / ``--log-level`` stream the spans and
solver progress events to stderr as ndjson while the run executes.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Optional, Sequence

from .netlist import (
    ElaborationError,
    NetlistError,
    elaborate,
    from_netlist,
    simulate_sequence,
)
from .netlist.emit import netlist_to_verilog
from .netlist.sim import input_word_widths
from .netlist.opt import OptimizationError, map_aig, optimize
from .netlist.sat import CECError, ProofLog, check_equivalence
from .obs import (
    NULL_TRACER,
    Tracer,
    ndjson_sink,
    profile_tree,
    span_totals,
    use_tracer,
    write_chrome_trace,
)
from .verilog.lexer import VerilogLexError
from .verilog.parser import VerilogSyntaxError


class CLIError(Exception):
    """A user-facing diagnostic (bad input file, bad flags, bad design)."""


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise CLIError(f"cannot read '{path}': {exc.strerror}") from exc


def _parse_params(items: Sequence[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for item in items:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise CLIError(
                f"--param expects NAME=INTEGER, got '{item}'"
            )
        try:
            params[name] = int(value, 0)
        except ValueError:
            raise CLIError(
                f"--param {name}: '{value}' is not an integer"
            ) from None
    return params


def _stats_lines(title: str, stats: dict[str, int]) -> list[str]:
    return [
        f"{title}:",
        f"  inputs     {stats['inputs']:>7}",
        f"  outputs    {stats['outputs']:>7}",
        f"  gates      {stats['gates']:>7}",
        f"  registers  {stats['registers']:>7}",
        f"  levels     {stats['levels']:>7}",
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Parse, elaborate and optionally optimize a Verilog design, "
            "printing gate/depth/flip-flop statistics."
        ),
    )
    parser.add_argument("source", help="Verilog file ('-' for stdin)")
    parser.add_argument("--top", help="top module (default: the only one)")
    parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="override a top-module parameter (repeatable)")
    parser.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the optimization pipeline and report per-pass statistics")
    parser.add_argument(
        "--passes", metavar="P1,P2,...",
        help="comma-separated pass pipeline (implies --optimize)")
    parser.add_argument(
        "--no-fixpoint", action="store_true",
        help="run the pipeline once instead of iterating to a fixpoint")
    parser.add_argument(
        "--check", action="store_true",
        help="SAT-prove the optimized netlist equivalent to the original "
             "(implies --optimize)")
    parser.add_argument(
        "--check-against", metavar="FILE",
        help="SAT-prove the final netlist equivalent to a second Verilog "
             "design (cross-design CEC) instead of to its own "
             "pre-optimization form (implies --check)")
    parser.add_argument(
        "--certify", action="store_true",
        help="log a DRAT proof during --check and verify any UNSAT "
             "verdict with the independent RUP proof checker; a failed "
             "check exits 1 (implies --check)")
    parser.add_argument(
        "--solve-log", metavar="FILE",
        help="stream the solver's DRAT proof (learned-clause additions "
             "and deletions) to FILE during --check (implies --check)")
    parser.add_argument(
        "--encoding", choices=("aig", "gate"), default="aig",
        help="miter construction for --check: the shared hash-consed AIG "
             "(default) or the legacy gate-level Tseitin encoding")
    parser.add_argument(
        "--no-preprocess", action="store_true",
        help="skip SatELite-style CNF preprocessing (subsumption, "
             "self-subsuming resolution, bounded variable elimination) "
             "of the miter before solving during --check")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="solve the miter's root pairs in up to N worker processes "
             "during --check (fanin-cone-balanced partitions; the first "
             "refuting worker cancels its siblings, and --certify still "
             "RUP-checks every worker's proof)")
    parser.add_argument(
        "--cache", metavar="DIR",
        help="consult (and fill) the content-hash result cache in DIR "
             "before solving during --check — the same cache the "
             "repro.server daemon shards across its workers; ignored "
             "when --solve-log needs a live solver run")
    parser.add_argument(
        "--ir", choices=("netlist", "aig"), default="netlist",
        help="also report the canonical AIG view of the design "
             "(AND-node count, levels) when set to 'aig'")
    parser.add_argument(
        "--map", type=int, metavar="K", dest="map_k",
        help="technology-map the final netlist into K-input LUTs "
             "(2 <= K <= 6) via the priority-cut mapper and report LUT "
             "count and mapped depth; --emit then writes the mapped "
             "netlist instead")
    parser.add_argument(
        "--emit", metavar="FILE",
        help="write the final (optimized, if requested; mapped, if "
             "--map) netlist back out as structural Verilog")
    parser.add_argument(
        "--sim", choices=("compiled", "interp"), default="compiled",
        help="simulation engine for --cycles: the compiled bit-parallel "
             "engine (default) or the per-gate interpreter")
    parser.add_argument(
        "--cycles", type=int, metavar="N",
        help="simulate N cycles of random stimulus on the final netlist "
             "and report throughput (cycles/second)")
    parser.add_argument(
        "--seed", type=int, default=2022,
        help="random-stimulus seed for --cycles (default: 2022)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON instead of the table")
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a Chrome trace-event JSON profile of the whole run "
             "(open in Perfetto or chrome://tracing)")
    parser.add_argument(
        "--profile", action="store_true",
        help="print a self/total wall-time tree over the run's spans "
             "(to stderr when combined with --json)")
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="stream ndjson span/event logs to stderr (-v: top phases, "
             "-vv: everything including solver progress)")
    parser.add_argument(
        "--log-level", choices=("quiet", "info", "debug"), default=None,
        help="explicit ndjson log level (overrides -v)")
    return parser


def _log_depth(args) -> Optional[int]:
    """Map -v/--log-level to an ndjson max depth (None = everything,
    -1 = logging disabled)."""
    level = args.log_level
    if level is None:
        level = {0: "quiet", 1: "info"}.get(args.verbose, "debug")
    if level == "quiet":
        return -1
    if level == "info":
        return 2
    return None


def _throughput(netlist, cycles: int, engine: str, seed: int) -> dict:
    """Simulate ``cycles`` random vectors and return a throughput record."""
    rng = random.Random(seed)
    widths = input_word_widths(netlist)
    vectors = [
        {name: rng.getrandbits(width) for name, width in widths.items()}
        for _ in range(cycles)
    ]
    start = time.perf_counter()
    simulate_sequence(netlist, vectors, engine=engine)
    seconds = time.perf_counter() - start
    return {
        "engine": engine,
        "cycles": cycles,
        "seconds": seconds,
        "cycles_per_second": cycles / seconds if seconds > 0 else float("inf"),
    }


def run(argv: Optional[Sequence[str]] = None,
        out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    depth = _log_depth(args)
    tracing = bool(args.trace or args.profile or depth != -1)
    if tracing:
        sink = ndjson_sink(sys.stderr, depth) if depth != -1 else None
        tracer = Tracer(sink=sink)
    else:
        tracer = NULL_TRACER
    try:
        with use_tracer(tracer):
            with tracer.span("run", source=args.source) as span:
                try:
                    code = _execute(args, out, tracer)
                except CLIError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    code = 1
                span.set(exit_code=code)
    finally:
        if tracer.enabled:
            if args.trace:
                try:
                    write_chrome_trace(tracer, args.trace)
                except OSError as exc:
                    print(f"error: cannot write '{args.trace}': "
                          f"{exc.strerror}", file=sys.stderr)
                    code = 1
            if args.profile:
                # Keep stdout machine-readable under --json.
                stream = sys.stderr if args.as_json else out
                print(profile_tree(tracer), file=stream)
    return code


def _execute(args, out, tracer) -> int:
    """The traced body of :func:`run`; returns the exit code."""
    if args.cycles is not None and args.cycles < 1:
        raise CLIError("--cycles expects a positive integer")
    source = _read_source(args.source)
    params = _parse_params(args.param)
    do_check = (args.check or args.certify or bool(args.solve_log)
                or bool(args.check_against))
    # Cross-design CEC needs no optimization run; self-CEC compares the
    # optimized netlist against the original, so it implies one.
    do_optimize = (args.optimize or bool(args.passes)
                   or (do_check and not args.check_against))
    passes = args.passes.split(",") if args.passes else None

    try:
        netlist = elaborate(source, top=args.top, params=params or None)
    except (VerilogLexError, VerilogSyntaxError) as exc:
        raise CLIError(f"syntax error: {exc}") from exc
    except (ElaborationError, NetlistError) as exc:
        raise CLIError(f"elaboration error: {exc}") from exc

    report: dict = {
        "source": args.source,
        "top": netlist.name,
        "stats": netlist.stats(),
    }
    result = None
    if do_optimize:
        try:
            result = optimize(netlist, passes=passes,
                              fixpoint=not args.no_fixpoint)
        except OptimizationError as exc:
            raise CLIError(str(exc)) from exc
        report["optimized_stats"] = result.netlist.stats()
        report["optimization"] = result.to_dict()
    final = result.netlist if result is not None else netlist
    if do_check:
        if args.check_against:
            ref_source = _read_source(args.check_against)
            try:
                reference = elaborate(ref_source, params=params or None)
            except (VerilogLexError, VerilogSyntaxError) as exc:
                raise CLIError(
                    f"{args.check_against}: syntax error: {exc}") from exc
            except (ElaborationError, NetlistError) as exc:
                raise CLIError(
                    f"{args.check_against}: elaboration error: "
                    f"{exc}") from exc
            lhs, rhs = final, reference
        else:
            assert result is not None
            lhs, rhs = netlist, result.netlist
        proof = None
        log_handle = None
        if args.solve_log:
            try:
                log_handle = open(args.solve_log, "w", encoding="utf-8")
            except OSError as exc:
                raise CLIError(
                    f"cannot write '{args.solve_log}': "
                    f"{exc.strerror}") from exc
        if args.certify or args.solve_log:
            proof = ProofLog(stream=log_handle)
        # The on-disk content-hash cache (shared with repro.server):
        # when the exact pair + options was verified before, serve the
        # stored report without solving.  --solve-log bypasses it — the
        # caller asked for a live DRAT stream.
        cache = None
        cache_key = None
        eq_report = None
        if args.cache and not args.solve_log:
            from .server.cache import ResultCache, content_key
            options = {"encoding": args.encoding,
                       "certify": args.certify,
                       "preprocess": not args.no_preprocess}
            cache = ResultCache(args.cache)
            cache_key = content_key(lhs.content_hash(),
                                    rhs.content_hash(), options)
            eq_report = cache.get(cache_key)
        cache_hit = eq_report is not None
        if eq_report is None:
            try:
                verdict = check_equivalence(
                    lhs, rhs, encoding=args.encoding,
                    certify=args.certify, proof=proof,
                    preprocess=not args.no_preprocess,
                    jobs=max(1, args.jobs))
            except CECError as exc:
                raise CLIError(str(exc)) from exc
            finally:
                if log_handle is not None:
                    log_handle.close()
            eq_report = verdict.to_report(
                certify=args.certify,
                include_proof=bool(args.certify or args.solve_log))
            if cache is not None:
                cache.put(cache_key, eq_report)
        report["equivalence"] = eq_report
        if args.cache:
            report["equivalence"]["cache_hit"] = cache_hit
        if args.check_against:
            report["equivalence"]["against"] = args.check_against
        if args.solve_log and "proof" in report["equivalence"]:
            report["equivalence"]["proof"]["log"] = args.solve_log
    if args.ir == "aig":
        report["aig_stats"] = from_netlist(netlist).stats()
        if result is not None:
            report["optimized_aig_stats"] = \
                from_netlist(result.netlist).stats()
    if args.cycles is not None:
        report["simulation"] = _throughput(final, args.cycles,
                                           args.sim, args.seed)
    emit_netlist = final
    if args.map_k is not None:
        if not 2 <= args.map_k <= 6:
            raise CLIError("--map expects a LUT size K between 2 and 6")
        mapped = map_aig(from_netlist(final), k=args.map_k)
        report["mapping"] = mapped.to_report()
        if args.emit:
            emit_netlist = mapped.to_netlist()
    if args.emit:
        try:
            with open(args.emit, "w", encoding="utf-8") as handle:
                handle.write(netlist_to_verilog(emit_netlist))
        except OSError as exc:
            raise CLIError(
                f"cannot write '{args.emit}': {exc.strerror}") from exc
        report["emitted"] = args.emit
    if tracer.enabled:
        # Phase timings as recorded so far (the "run" span is still open;
        # its children are the pipeline phases).
        trace_report: dict = {"spans": span_totals(tracer, depth=1)}
        if args.trace:
            trace_report["file"] = args.trace
        # Distribution metrics (per-CEC-pair solve times, per-fraig-proof
        # conflicts): count/mean and exact p50/p95.
        histograms = {
            name: record
            for name, record in tracer.metrics.to_dict().items()
            if record.get("type") == "histogram"
        }
        if histograms:
            trace_report["metrics"] = histograms
        report["trace"] = trace_report

    if args.as_json:
        json.dump(report, out, indent=2)
        out.write("\n")
    else:
        lines = _stats_lines(f"{netlist.name} (elaborated)",
                             report["stats"])
        if result is not None:
            lines.append("")
            lines.extend(_stats_lines(f"{netlist.name} (optimized)",
                                      report["optimized_stats"]))
            lines.append("")
            lines.append(result.summary())
        for key, title in (("aig_stats", "aig"),
                           ("optimized_aig_stats", "aig, optimized")):
            if key in report:
                stats = report[key]
                lines.append("")
                lines.append(f"{netlist.name} ({title}):")
                lines.append(f"  ands       {stats['ands']:>7}")
                lines.append(f"  latches    {stats['latches']:>7}")
                lines.append(f"  levels     {stats['levels']:>7}")
        if "equivalence" in report:
            lines.append("")
            eq = report["equivalence"]
            if eq["equivalent"]:
                if eq["hash_proven"] == eq["compared"]:
                    lines.append(
                        f"equivalence: PROVEN (all {eq['compared']} "
                        f"functions hash-merged in the shared AIG)")
                else:
                    lines.append(
                        f"equivalence: PROVEN (miter UNSAT over "
                        f"{eq['compared']} functions, "
                        f"{eq['hash_proven']} hash-proven, "
                        f"{eq['cnf_clauses']} clauses)")
            else:
                lines.append("equivalence: REFUTED")
                if eq.get("refuted_by_simulation"):
                    lines.append(
                        "  refuted by random simulation of the miter "
                        "(no solver search)")
                for kind, name, b, a in eq["counterexample"]["diff"]:
                    lines.append(
                        f"  {kind} '{name}': before={b} after={a}")
            if eq.get("sweep_proven"):
                lines.append(
                    f"  sweep: {eq['sweep_proven']} functions "
                    f"SAT-sweep-proven inside the shared miter AIG "
                    f"({eq['sweep_seconds'] * 1e3:.1f} ms)")
            solver = eq["solver"]
            if eq["hash_proven"] < eq["compared"]:
                lines.append(
                    f"  solver: {solver['conflicts']} conflicts, "
                    f"{solver['restarts']} restarts, "
                    f"{solver['reduced_clauses']} reduced clauses, "
                    f"{solver['propagations']} propagations")
            if eq.get("preprocessor"):
                pp = eq["preprocessor"]
                lines.append(
                    f"  preprocessor: {pp['subsumed']} subsumed, "
                    f"{pp['eliminated_vars']} eliminated, "
                    f"{solver['vivified']} vivified")
            if "proof" in eq:
                proof_rep = eq["proof"]
                if proof_rep["checked"] is True:
                    lines.append(
                        f"  proof: {proof_rep['clauses']} DRAT clauses "
                        f"({proof_rep['bytes']} bytes), independently "
                        f"checked in "
                        f"{proof_rep['check_seconds'] * 1e3:.1f} ms")
                elif proof_rep["checked"] is False:
                    lines.append(
                        "  proof: FAILED the independent DRAT check")
                elif proof_rep["certified"]:
                    lines.append(
                        "  proof: nothing to check (no solver UNSAT "
                        "verdict)")
                if proof_rep.get("log"):
                    lines.append(f"  proof log: {proof_rep['log']}")
        if "simulation" in report:
            sim = report["simulation"]
            lines.append("")
            lines.append(
                f"simulation: {sim['cycles']} cycles in "
                f"{sim['seconds'] * 1e3:.1f} ms — "
                f"{sim['cycles_per_second']:.0f} cyc/s "
                f"({sim['engine']} engine)")
        if "mapping" in report:
            mp = report["mapping"]
            lines.append("")
            lines.append(
                f"mapping: {mp['lut_count']} LUT{mp['k']}s, "
                f"depth {mp['depth']} (depth target "
                f"{mp['depth_target']})")
        if "emitted" in report:
            lines.append("")
            lines.append(f"emitted Verilog: {report['emitted']}")
        out.write("\n".join(lines) + "\n")
    if "equivalence" in report:
        eq = report["equivalence"]
        if not eq["equivalent"]:
            return 2
        proof_rep = eq.get("proof")
        if (proof_rep is not None and proof_rep["certified"]
                and eq["hash_proven"] < eq["compared"]
                and proof_rep["checked"] is not True):
            # --certify demanded a certificate for this UNSAT verdict and
            # the independent checker did not grant one.
            print("error: UNSAT equivalence verdict was not certified by "
                  "the independent DRAT proof checker", file=sys.stderr)
            return 1
    return 0


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())
