"""Verilog frontend: lexer, parser, AST, code generator and design analyses.

This package replaces the PyVerilog dependency of the original ALICE
prototype with a self-contained synthesizable-subset toolkit.
"""

from . import ast
from .consteval import ConstEvalError, evaluate, module_parameters, range_width
from .dataflow import DataflowGraph, summarize_statement
from .generator import (
    generate_expression,
    generate_module,
    generate_source,
    generate_statement,
)
from .hierarchy import (
    DesignHierarchy,
    HierarchyError,
    InstanceNode,
    ModuleInfo,
    PortInfo,
    resolve_module_info,
)
from .lexer import Lexer, Token, VerilogLexError, tokenize
from .parser import Parser, VerilogSyntaxError, parse, parse_module

__all__ = [
    "ast",
    "ConstEvalError",
    "evaluate",
    "module_parameters",
    "range_width",
    "DataflowGraph",
    "summarize_statement",
    "generate_expression",
    "generate_module",
    "generate_source",
    "generate_statement",
    "DesignHierarchy",
    "HierarchyError",
    "InstanceNode",
    "ModuleInfo",
    "PortInfo",
    "resolve_module_info",
    "Lexer",
    "Token",
    "VerilogLexError",
    "tokenize",
    "Parser",
    "VerilogSyntaxError",
    "parse",
    "parse_module",
]
