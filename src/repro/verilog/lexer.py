"""Tokenizer for the synthesizable Verilog subset.

The lexer strips comments (``//`` and ``/* */``), handles sized and unsized
numeric literals, identifiers (including escaped identifiers), operators and
punctuation.  It produces a flat list of :class:`Token` objects consumed by
:mod:`repro.verilog.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


class VerilogLexError(Exception):
    """Raised when the input contains a character sequence we cannot tokenize."""


KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "if", "else", "case",
    "casez", "casex", "endcase", "default", "posedge", "negedge", "or",
    "parameter", "localparam", "signed", "integer", "genvar", "generate",
    "endgenerate", "for", "function", "endfunction", "task", "endtask",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~&", "~|", "~^", "^~",
    "**",
    "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^", "=", "?",
]

PUNCTUATION = ["(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "#", "@"]


@dataclass
class Token:
    """A single lexical token."""

    kind: str   # 'KEYWORD', 'ID', 'NUMBER', 'SIZED_NUMBER', 'OP', 'PUNCT', 'STRING'
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_" or ch == "\\" or ch == "$"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_" or ch == "$"


class Lexer:
    """Convert Verilog source text into a list of tokens."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return chunk

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                self._advance(2)
            elif ch == "`":
                # Compiler directives (`timescale, `define, ...) are skipped to
                # the end of the line; the benchmarks do not rely on macros.
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                break

    # -- token producers ------------------------------------------------------

    def _lex_identifier(self) -> Token:
        line, col = self.line, self.col
        if self._peek() == "\\":
            # Escaped identifier: backslash up to whitespace.
            self._advance()
            start = self.pos
            while self.pos < len(self.text) and not self._peek().isspace():
                self._advance()
            name = self.text[start:self.pos]
            return Token("ID", name, line, col)
        start = self.pos
        while self.pos < len(self.text) and _is_ident_char(self._peek()):
            self._advance()
        name = self.text[start:self.pos]
        kind = "KEYWORD" if name in KEYWORDS else "ID"
        return Token(kind, name, line, col)

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isdigit() or self._peek() == "_"):
            self._advance()
        # Sized literal such as 8'hFF or '<base><digits>.
        self._skip_whitespace_in_number()
        if self._peek() == "'":
            self._advance()
            if self._peek() in "sS":
                self._advance()
            base = self._peek().lower()
            if base not in "bodh":
                raise VerilogLexError(
                    f"invalid number base {base!r} at line {self.line}"
                )
            self._advance()
            while self.pos < len(self.text) and (
                self._peek().isalnum() or self._peek() in "_xXzZ?"
            ):
                self._advance()
            return Token("SIZED_NUMBER", self.text[start:self.pos], line, col)
        return Token("NUMBER", self.text[start:self.pos], line, col)

    def _skip_whitespace_in_number(self) -> None:
        # Verilog allows "4 'b0"; tolerate a single space before the tick.
        save = self.pos
        while self.pos < len(self.text) and self._peek() in " \t":
            self._advance()
        if self._peek() != "'":
            self.pos = save

    def _lex_tick_number(self) -> Token:
        """A literal that starts with a tick, e.g. ``'b0`` or ``'d15``."""
        line, col = self.line, self.col
        start = self.pos
        self._advance()  # consume tick
        if self._peek() in "sS":
            self._advance()
        base = self._peek().lower()
        if base not in "bodh":
            raise VerilogLexError(f"invalid number base {base!r} at line {self.line}")
        self._advance()
        while self.pos < len(self.text) and (
            self._peek().isalnum() or self._peek() in "_xXzZ?"
        ):
            self._advance()
        return Token("SIZED_NUMBER", self.text[start:self.pos], line, col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.text) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        value = self.text[start:self.pos]
        self._advance()  # closing quote
        return Token("STRING", value, line, col)

    def _lex_operator(self) -> Token:
        line, col = self.line, self.col
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token("OP", op, line, col)
        ch = self._peek()
        if ch in PUNCTUATION:
            self._advance()
            return Token("PUNCT", ch, line, col)
        raise VerilogLexError(f"unexpected character {ch!r} at line {self.line}")

    # -- public API -----------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the input is exhausted."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                return
            ch = self._peek()
            if _is_ident_start(ch):
                yield self._lex_identifier()
            elif ch.isdigit():
                yield self._lex_number()
            elif ch == "'":
                yield self._lex_tick_number()
            elif ch == '"':
                yield self._lex_string()
            else:
                yield self._lex_operator()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` and return the full token list."""
    return list(Lexer(text).tokens())


def parse_sized_number(literal: str) -> tuple[int, Optional[int], str]:
    """Parse a sized literal like ``8'hFF`` into ``(value, width, base)``.

    ``x``/``z``/``?`` digits are treated as zero (the synthesizable subset does
    not propagate unknowns).
    """
    if "'" not in literal:
        return int(literal.replace("_", "")), None, "d"
    size_part, rest = literal.split("'", 1)
    rest = rest.lstrip("sS")
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    digits = digits.replace("x", "0").replace("X", "0")
    digits = digits.replace("z", "0").replace("Z", "0").replace("?", "0")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    value = int(digits, base) if digits else 0
    width = int(size_part) if size_part.strip() else None
    return value, width, base_char
