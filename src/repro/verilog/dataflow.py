"""Dataflow analysis of a hierarchical Verilog design.

ALICE's module-filtering phase (Algorithm 1) needs to know, for each selected
top-level output, which module instances influence that output.  This module
builds a signal-level dataflow graph that spans the whole hierarchy: signals
are scoped by instance path, instances appear as explicit graph nodes, and
reachability queries answer "which instances sit in the transitive fan-in of
this output?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx

from . import ast
from .ast import expression_signals, lvalue_signals
from .hierarchy import DesignHierarchy


class DataflowError(Exception):
    """Raised when the dataflow graph cannot be constructed."""


def _sig(scope: str, name: str) -> tuple[str, str, str]:
    return ("sig", scope, name)


def _inst(path: str) -> tuple[str, str]:
    return ("inst", path)


@dataclass
class AlwaysSummary:
    """Conservative read/write summary of a procedural block."""

    reads: set[str]
    writes: set[str]


def summarize_statement(stmt: Optional[ast.Statement]) -> AlwaysSummary:
    """Collect the signals read and written by a procedural statement tree."""
    reads: set[str] = set()
    writes: set[str] = set()

    def visit(node: Optional[ast.Statement], extra_reads: set[str]) -> None:
        if node is None:
            return
        if isinstance(node, (ast.BlockingAssign, ast.NonBlockingAssign)):
            writes.update(lvalue_signals(node.lhs))
            reads.update(expression_signals(node.rhs))
            reads.update(extra_reads)
            # Index expressions of the lvalue are also reads.
            if isinstance(node.lhs, (ast.BitSelect, ast.PartSelect)):
                for child in node.lhs.children():
                    if child is not node.lhs.target:
                        reads.update(expression_signals(child))
        elif isinstance(node, ast.Block):
            for sub in node.statements:
                visit(sub, extra_reads)
        elif isinstance(node, ast.If):
            cond_reads = expression_signals(node.cond)
            reads.update(cond_reads)
            visit(node.then_stmt, extra_reads | cond_reads)
            visit(node.else_stmt, extra_reads | cond_reads)
        elif isinstance(node, ast.For):
            cond_reads = expression_signals(node.cond)
            reads.update(cond_reads)
            visit(node.init, extra_reads)
            visit(node.body, extra_reads | cond_reads)
            visit(node.step, extra_reads | cond_reads)
        elif isinstance(node, ast.Case):
            sel_reads = expression_signals(node.expr)
            reads.update(sel_reads)
            for item in node.items:
                item_reads = set(sel_reads)
                if item.conditions:
                    for cond in item.conditions:
                        item_reads |= expression_signals(cond)
                reads.update(item_reads)
                visit(item.statement, extra_reads | item_reads)
        else:
            raise DataflowError(
                f"unsupported statement node {type(node).__name__} in dataflow"
            )

    visit(stmt, set())
    return AlwaysSummary(reads=reads, writes=writes)


class DataflowGraph:
    """Hierarchy-wide dataflow graph of a design.

    Nodes are either ``("sig", scope_path, signal_name)`` or
    ``("inst", instance_path)``.  A directed edge ``a -> b`` means "a feeds b".
    """

    def __init__(self, hierarchy: DesignHierarchy):
        self.hierarchy = hierarchy
        self.source = hierarchy.source
        self.top = hierarchy.top
        self.graph = nx.DiGraph()
        self._build_scope(self.source.module(self.top), self.top)

    # -- construction -----------------------------------------------------------

    def _build_scope(self, module: ast.Module, scope: str) -> None:
        for item in module.items:
            if isinstance(item, ast.Assign):
                self._add_assign(scope, item)
            elif isinstance(item, ast.Always):
                self._add_always(scope, item)
            elif isinstance(item, ast.Instance):
                self._add_instance(scope, item)
            # Declarations and parameters introduce no dataflow edges.

    def _add_assign(self, scope: str, item: ast.Assign) -> None:
        targets = lvalue_signals(item.lhs)
        sources = expression_signals(item.rhs)
        # Select indices on the lvalue are read as well.
        if isinstance(item.lhs, (ast.BitSelect, ast.PartSelect)):
            for child in item.lhs.children():
                if child is not item.lhs.target:
                    sources |= expression_signals(child)
        for target in targets:
            for source in sources:
                self.graph.add_edge(_sig(scope, source), _sig(scope, target))
            self.graph.add_node(_sig(scope, target))

    def _add_always(self, scope: str, item: ast.Always) -> None:
        summary = summarize_statement(item.statement)
        reads = set(summary.reads)
        for sens in item.sensitivity:
            if sens.signal is not None and sens.edge is None:
                reads |= expression_signals(sens.signal)
        for target in summary.writes:
            for source in reads:
                self.graph.add_edge(_sig(scope, source), _sig(scope, target))
            self.graph.add_node(_sig(scope, target))

    def _add_instance(self, scope: str, inst: ast.Instance) -> None:
        child_scope = f"{scope}.{inst.instance_name}"
        inst_node = _inst(child_scope)
        self.graph.add_node(inst_node)

        if not self.source.has_module(inst.module_name):
            # Black box: connect conservatively in both directions.
            for conn in inst.connections:
                if conn.expr is None:
                    continue
                for signal in expression_signals(conn.expr):
                    self.graph.add_edge(_sig(scope, signal), inst_node)
                    self.graph.add_edge(inst_node, _sig(scope, signal))
            return

        child_module = self.source.module(inst.module_name)
        connections = self._resolve_connections(child_module, inst)
        for port_name, expr in connections.items():
            port = child_module.port(port_name)
            if port is None or expr is None:
                continue
            parent_signals = expression_signals(expr)
            child_node = _sig(child_scope, port_name)
            if port.direction == "input":
                for signal in parent_signals:
                    self.graph.add_edge(_sig(scope, signal), child_node)
                self.graph.add_edge(child_node, inst_node)
            elif port.direction == "output":
                for signal in parent_signals:
                    self.graph.add_edge(child_node, _sig(scope, signal))
                self.graph.add_edge(inst_node, child_node)
            else:  # inout: conservative, both directions
                for signal in parent_signals:
                    self.graph.add_edge(_sig(scope, signal), child_node)
                    self.graph.add_edge(child_node, _sig(scope, signal))
                self.graph.add_edge(inst_node, child_node)
                self.graph.add_edge(child_node, inst_node)
        self._build_scope(child_module, child_scope)

    @staticmethod
    def _resolve_connections(child_module: ast.Module,
                             inst: ast.Instance) -> dict[str, Optional[ast.Expression]]:
        """Map port names to connected expressions (named or positional)."""
        mapping: dict[str, Optional[ast.Expression]] = {}
        positional = [c for c in inst.connections if c.port is None]
        if positional and len(positional) == len(inst.connections):
            for port, conn in zip(child_module.ports, inst.connections):
                mapping[port.name] = conn.expr
            return mapping
        for conn in inst.connections:
            if conn.port is not None:
                mapping[conn.port] = conn.expr
        return mapping

    # -- queries -----------------------------------------------------------------

    def output_node(self, output: str) -> tuple[str, str, str]:
        return _sig(self.top, output)

    def instances_affecting_output(self, output: str) -> set[str]:
        """Instance paths whose logic lies in the fan-in cone of ``output``."""
        node = self.output_node(output)
        if node not in self.graph:
            return set()
        ancestors = nx.ancestors(self.graph, node)
        return {name[1] for name in ancestors if name[0] == "inst"}

    def outputs_affected_by_instance(self, instance_path: str,
                                     outputs: Iterable[str]) -> set[str]:
        """Subset of ``outputs`` reachable from the given instance."""
        node = _inst(instance_path)
        if node not in self.graph:
            return set()
        descendants = nx.descendants(self.graph, node)
        reachable = set()
        for output in outputs:
            if self.output_node(output) in descendants:
                reachable.add(output)
        return reachable

    def signal_fanin(self, scope: str, signal: str) -> set[tuple[str, str]]:
        """All (scope, signal) pairs in the transitive fan-in of a signal."""
        node = _sig(scope, signal)
        if node not in self.graph:
            return set()
        return {
            (item[1], item[2])
            for item in nx.ancestors(self.graph, node)
            if item[0] == "sig"
        }

    def instance_nodes(self) -> set[str]:
        return {n[1] for n in self.graph.nodes if n[0] == "inst"}

    def score_instances(self, outputs: Iterable[str]) -> dict[str, int]:
        """Score every instance by the number of selected outputs it influences.

        This is exactly the scoring loop of Algorithm 1 (lines 6-9): each
        instance starts at zero and gains one point per selected output found
        in its forward cone.
        """
        scores: dict[str, int] = {path: 0 for path in self.instance_nodes()}
        for output in outputs:
            for path in self.instances_affecting_output(output):
                scores[path] = scores.get(path, 0) + 1
        return scores
