"""Recursive-descent parser for the synthesizable Verilog subset.

The parser consumes tokens from :mod:`repro.verilog.lexer` and produces the
AST defined in :mod:`repro.verilog.ast`.  Supported constructs cover the
benchmark suite used by ALICE:

* module definitions with ANSI or non-ANSI port lists and parameter headers
* ``parameter`` / ``localparam`` declarations
* ``wire`` / ``reg`` / ``integer`` declarations (scalar and vector)
* continuous assignments
* ``always`` blocks with edge or combinational sensitivity lists, containing
  ``begin``/``end`` blocks, ``if``/``else``, ``case`` statements and
  blocking / non-blocking assignments
* module instantiations with named or positional connections and parameter
  overrides
* the full expression grammar (ternary, logical, bitwise, relational, shifts,
  arithmetic, unary/reduction operators, concatenation, replication, bit and
  part selects)
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import Token, VerilogLexError, parse_sized_number, tokenize


class VerilogSyntaxError(Exception):
    """Raised when the token stream does not match the expected grammar."""


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token stream helpers --------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def _at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def _check(self, kind: str, value: Optional[str] = None, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok is None:
            return False
        if tok.kind != kind:
            return False
        return value is None or tok.value == value

    def _advance(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise VerilogSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self._peek()
        if tok is None:
            raise VerilogSyntaxError(
                f"unexpected end of input, expected {value or kind}"
            )
        if tok.kind != kind or (value is not None and tok.value != value):
            raise VerilogSyntaxError(
                f"expected {value or kind} but found {tok.value!r} at line {tok.line}"
            )
        return self._advance()

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    # -- top level --------------------------------------------------------------

    def parse_source(self) -> ast.Source:
        """Parse the full token stream into a :class:`Source`."""
        modules = []
        while not self._at_end():
            if self._check("KEYWORD", "module"):
                modules.append(self.parse_module())
            else:
                tok = self._advance()
                raise VerilogSyntaxError(
                    f"unexpected token {tok.value!r} at line {tok.line}; "
                    "expected 'module'"
                )
        return ast.Source(modules=modules)

    # -- module -----------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        self._expect("KEYWORD", "module")
        name = self._expect("ID").value
        module = ast.Module(name=name)
        header_params: list[ast.ParamDecl] = []

        if self._check("PUNCT", "#"):
            header_params = self._parse_parameter_header()

        port_order: list[str] = []
        if self._accept("PUNCT", "("):
            port_order = self._parse_port_list(module)
        self._expect("PUNCT", ";")

        module.items.extend(header_params)

        while not self._check("KEYWORD", "endmodule"):
            self._parse_module_item(module, port_order)
        self._expect("KEYWORD", "endmodule")
        self._reorder_ports(module, port_order)
        return module

    def _parse_parameter_header(self) -> list[ast.ParamDecl]:
        self._expect("PUNCT", "#")
        self._expect("PUNCT", "(")
        params: list[ast.ParamDecl] = []
        while not self._check("PUNCT", ")"):
            self._accept("KEYWORD", "parameter")
            width = self._parse_optional_range()
            pname = self._expect("ID").value
            self._expect("OP", "=")
            value = self.parse_expression()
            params.append(ast.ParamDecl(name=pname, value=value, width=width))
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ")")
        return params

    def _parse_port_list(self, module: ast.Module) -> list[str]:
        """Parse the header port list, returning the declared port order."""
        order: list[str] = []
        if self._accept("PUNCT", ")"):
            return order
        while True:
            if self._check("KEYWORD", "input") or self._check("KEYWORD", "output") \
                    or self._check("KEYWORD", "inout"):
                # ANSI-style declarations inside the header.
                direction = self._advance().value
                is_reg = bool(self._accept("KEYWORD", "reg"))
                self._accept("KEYWORD", "wire")
                signed = bool(self._accept("KEYWORD", "signed"))
                width = self._parse_optional_range()
                pname = self._expect("ID").value
                module.ports.append(
                    ast.Port(name=pname, direction=direction, width=width,
                             is_reg=is_reg, signed=signed)
                )
                order.append(pname)
                # Allow "input a, b, c" continuation with the same direction.
                while self._check("PUNCT", ",") and self._check("ID", offset=1) \
                        and not self._is_direction_next(2):
                    self._advance()  # comma
                    extra = self._expect("ID").value
                    module.ports.append(
                        ast.Port(name=extra, direction=direction, width=width,
                                 is_reg=is_reg, signed=signed)
                    )
                    order.append(extra)
            else:
                pname = self._expect("ID").value
                order.append(pname)
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ")")
        return order

    def _is_direction_next(self, offset: int) -> bool:
        tok = self._peek(offset)
        return tok is not None and tok.kind == "KEYWORD" and tok.value in (
            "input", "output", "inout",
        )

    def _reorder_ports(self, module: ast.Module, order: list[str]) -> None:
        """Reorder module.ports to match the header declaration order."""
        if not order:
            return
        by_name = {p.name: p for p in module.ports}
        reordered = [by_name[name] for name in order if name in by_name]
        extras = [p for p in module.ports if p.name not in order]
        module.ports = reordered + extras

    # -- module items -----------------------------------------------------------

    def _parse_module_item(self, module: ast.Module, port_order: list[str]) -> None:
        tok = self._peek()
        if tok is None:
            raise VerilogSyntaxError("unexpected end of input inside module")

        if tok.kind == "KEYWORD":
            if tok.value in ("input", "output", "inout"):
                self._parse_port_declaration(module)
                return
            if tok.value in ("wire", "reg", "integer"):
                self._parse_net_declaration(module)
                return
            if tok.value in ("parameter", "localparam"):
                self._parse_param_declaration(module)
                return
            if tok.value == "assign":
                self._parse_assign(module)
                return
            if tok.value == "always":
                module.items.append(self._parse_always())
                return
            if tok.value == "initial":
                self._advance()
                stmt = self._parse_statement()
                module.items.append(ast.Initial(statement=stmt))
                return
            if tok.value in ("generate", "endgenerate"):
                # Generate regions are flattened by the benchmark generators;
                # tolerate the keywords as no-ops.
                self._advance()
                return
            if tok.value in ("function", "task"):
                self._skip_until_keyword(
                    "endfunction" if tok.value == "function" else "endtask"
                )
                return
            if tok.value == "genvar":
                self._advance()
                self._expect("ID")
                while self._accept("PUNCT", ","):
                    self._expect("ID")
                self._expect("PUNCT", ";")
                return
        if tok.kind == "ID":
            module.items.extend(self._parse_instances())
            return
        raise VerilogSyntaxError(
            f"unexpected token {tok.value!r} at line {tok.line} inside module "
            f"'{module.name}'"
        )

    def _skip_until_keyword(self, keyword: str) -> None:
        while not self._check("KEYWORD", keyword):
            self._advance()
        self._advance()

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if self._check("PUNCT", "["):
            self._advance()
            msb = self.parse_expression()
            self._expect("PUNCT", ":")
            lsb = self.parse_expression()
            self._expect("PUNCT", "]")
            return ast.Range(msb=msb, lsb=lsb)
        return None

    def _parse_port_declaration(self, module: ast.Module) -> None:
        direction = self._advance().value
        is_reg = bool(self._accept("KEYWORD", "reg"))
        if self._check("KEYWORD", "wire"):
            self._advance()
        signed = bool(self._accept("KEYWORD", "signed"))
        width = self._parse_optional_range()
        names = [self._expect("ID").value]
        while self._accept("PUNCT", ","):
            names.append(self._expect("ID").value)
        self._expect("PUNCT", ";")
        for name in names:
            existing = module.port(name)
            if existing is not None:
                existing.direction = direction
                existing.width = width
                existing.is_reg = is_reg or existing.is_reg
                existing.signed = signed or existing.signed
            else:
                module.ports.append(
                    ast.Port(name=name, direction=direction, width=width,
                             is_reg=is_reg, signed=signed)
                )

    def _parse_net_declaration(self, module: ast.Module) -> None:
        kind = self._advance().value
        if kind == "integer":
            kind = "reg"
            width = ast.Range(ast.IntConst(31), ast.IntConst(0))
        else:
            if self._accept("KEYWORD", "signed"):
                pass
            width = self._parse_optional_range()
        while True:
            name = self._expect("ID").value
            init = None
            if self._accept("OP", "="):
                init = self.parse_expression()
            module.items.append(
                ast.NetDecl(name=name, kind=kind, width=width, init=init)
            )
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")

    def _parse_param_declaration(self, module: ast.Module) -> None:
        keyword = self._advance().value
        local = keyword == "localparam"
        width = self._parse_optional_range()
        while True:
            name = self._expect("ID").value
            self._expect("OP", "=")
            value = self.parse_expression()
            module.items.append(
                ast.ParamDecl(name=name, value=value, local=local, width=width)
            )
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")

    def _parse_assign(self, module: ast.Module) -> None:
        self._expect("KEYWORD", "assign")
        while True:
            lhs = self.parse_expression()
            self._expect("OP", "=")
            rhs = self.parse_expression()
            module.items.append(ast.Assign(lhs=lhs, rhs=rhs))
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")

    # -- always blocks and statements -------------------------------------------

    def _parse_always(self) -> ast.Always:
        self._expect("KEYWORD", "always")
        sensitivity: list[ast.SensItem] = []
        if self._accept("PUNCT", "@"):
            if self._accept("OP", "*"):
                sensitivity.append(ast.SensItem(signal=None, star=True))
            else:
                self._expect("PUNCT", "(")
                if self._accept("OP", "*"):
                    sensitivity.append(ast.SensItem(signal=None, star=True))
                else:
                    sensitivity.append(self._parse_sens_item())
                    while self._accept("KEYWORD", "or") or self._accept("PUNCT", ","):
                        sensitivity.append(self._parse_sens_item())
                self._expect("PUNCT", ")")
        statement = self._parse_statement()
        return ast.Always(sensitivity=sensitivity, statement=statement)

    def _parse_sens_item(self) -> ast.SensItem:
        edge = None
        if self._check("KEYWORD", "posedge") or self._check("KEYWORD", "negedge"):
            edge = self._advance().value
        signal = self.parse_expression()
        return ast.SensItem(signal=signal, edge=edge)

    def _parse_statement(self) -> Optional[ast.Statement]:
        if self._accept("PUNCT", ";"):
            return None
        tok = self._peek()
        if tok is None:
            raise VerilogSyntaxError("unexpected end of input in statement")
        if tok.kind == "KEYWORD":
            if tok.value == "begin":
                return self._parse_block()
            if tok.value == "if":
                return self._parse_if()
            if tok.value in ("case", "casez", "casex"):
                return self._parse_case()
            if tok.value == "for":
                return self._parse_for()
        return self._parse_procedural_assign()

    def _parse_block(self) -> ast.Block:
        self._expect("KEYWORD", "begin")
        name = None
        if self._accept("PUNCT", ":"):
            name = self._expect("ID").value
        statements: list[ast.Statement] = []
        while not self._check("KEYWORD", "end"):
            stmt = self._parse_statement()
            if stmt is not None:
                statements.append(stmt)
        self._expect("KEYWORD", "end")
        return ast.Block(statements=statements, name=name)

    def _parse_if(self) -> ast.If:
        self._expect("KEYWORD", "if")
        self._expect("PUNCT", "(")
        cond = self.parse_expression()
        self._expect("PUNCT", ")")
        then_stmt = self._parse_statement()
        else_stmt = None
        if self._accept("KEYWORD", "else"):
            else_stmt = self._parse_statement()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt)

    def _parse_case(self) -> ast.Case:
        kind = self._advance().value
        self._expect("PUNCT", "(")
        expr = self.parse_expression()
        self._expect("PUNCT", ")")
        items: list[ast.CaseItem] = []
        while not self._check("KEYWORD", "endcase"):
            if self._accept("KEYWORD", "default"):
                self._accept("PUNCT", ":")
                stmt = self._parse_statement()
                items.append(ast.CaseItem(conditions=None, statement=stmt))
            else:
                conditions = [self.parse_expression()]
                while self._accept("PUNCT", ","):
                    conditions.append(self.parse_expression())
                self._expect("PUNCT", ":")
                stmt = self._parse_statement()
                items.append(ast.CaseItem(conditions=conditions, statement=stmt))
        self._expect("KEYWORD", "endcase")
        return ast.Case(expr=expr, items=items, kind=kind)

    def _parse_for(self) -> ast.For:
        """Parse a ``for`` loop into an :class:`ast.For` node.

        The elaborator unrolls the loop (init/cond/step must be compile-time
        evaluable); dataflow analysis treats it as an opaque read/write region.
        """
        self._expect("KEYWORD", "for")
        self._expect("PUNCT", "(")
        init = self._parse_procedural_assign(consume_semicolon=False)
        self._expect("PUNCT", ";")
        cond = self.parse_expression()
        self._expect("PUNCT", ";")
        step = self._parse_procedural_assign(consume_semicolon=False)
        self._expect("PUNCT", ")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body)

    def _parse_lvalue(self) -> ast.Expression:
        """Parse an assignment target (identifier, select or concatenation).

        Using the full expression grammar here would mis-parse ``a <= b`` as
        the relational operator, so lvalues are restricted to the legal
        Verilog target forms.
        """
        if self._check("PUNCT", "{"):
            self._expect("PUNCT", "{")
            parts = [self._parse_lvalue()]
            while self._accept("PUNCT", ","):
                parts.append(self._parse_lvalue())
            self._expect("PUNCT", "}")
            return ast.Concat(parts=parts)
        name = self._expect("ID").value
        return self._parse_postfix(ast.Identifier(name=name))

    def _parse_procedural_assign(
        self, consume_semicolon: bool = True
    ) -> ast.Statement:
        lhs = self._parse_lvalue()
        if self._accept("OP", "<="):
            rhs = self.parse_expression()
            stmt: ast.Statement = ast.NonBlockingAssign(lhs=lhs, rhs=rhs)
        else:
            self._expect("OP", "=")
            rhs = self.parse_expression()
            stmt = ast.BlockingAssign(lhs=lhs, rhs=rhs)
        if consume_semicolon:
            self._expect("PUNCT", ";")
        return stmt

    # -- instances ---------------------------------------------------------------

    def _parse_instances(self) -> list[ast.Instance]:
        module_name = self._expect("ID").value
        parameters: list[ast.ParamOverride] = []
        if self._accept("PUNCT", "#"):
            self._expect("PUNCT", "(")
            parameters = self._parse_param_overrides()
            self._expect("PUNCT", ")")
        instances: list[ast.Instance] = []
        while True:
            inst_name = self._expect("ID").value
            self._expect("PUNCT", "(")
            connections = self._parse_connections()
            self._expect("PUNCT", ")")
            instances.append(
                ast.Instance(
                    module_name=module_name,
                    instance_name=inst_name,
                    connections=connections,
                    parameters=list(parameters),
                )
            )
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")
        return instances

    def _parse_param_overrides(self) -> list[ast.ParamOverride]:
        overrides: list[ast.ParamOverride] = []
        while not self._check("PUNCT", ")"):
            if self._accept("PUNCT", "."):
                pname = self._expect("ID").value
                self._expect("PUNCT", "(")
                expr = self.parse_expression()
                self._expect("PUNCT", ")")
                overrides.append(ast.ParamOverride(param=pname, expr=expr))
            else:
                expr = self.parse_expression()
                overrides.append(ast.ParamOverride(param=None, expr=expr))
            if not self._accept("PUNCT", ","):
                break
        return overrides

    def _parse_connections(self) -> list[ast.PortConnection]:
        connections: list[ast.PortConnection] = []
        if self._check("PUNCT", ")"):
            return connections
        while True:
            if self._accept("PUNCT", "."):
                port = self._expect("ID").value
                self._expect("PUNCT", "(")
                expr = None
                if not self._check("PUNCT", ")"):
                    expr = self.parse_expression()
                self._expect("PUNCT", ")")
                connections.append(ast.PortConnection(port=port, expr=expr))
            else:
                expr = self.parse_expression()
                connections.append(ast.PortConnection(port=None, expr=expr))
            if not self._accept("PUNCT", ","):
                break
        return connections

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expression:
        cond = self._parse_logical_or()
        if self._accept("OP", "?"):
            true_value = self.parse_expression()
            self._expect("PUNCT", ":")
            false_value = self.parse_expression()
            return ast.Ternary(cond=cond, true_value=true_value,
                               false_value=false_value)
        return cond

    def _parse_binary_level(self, operators: tuple[str, ...], next_level):
        expr = next_level()
        while True:
            matched = None
            for op in operators:
                if self._check("OP", op):
                    matched = op
                    break
            if matched is None:
                return expr
            self._advance()
            right = next_level()
            expr = ast.BinaryOp(op=matched, left=expr, right=right)

    def _parse_logical_or(self) -> ast.Expression:
        return self._parse_binary_level(("||",), self._parse_logical_and)

    def _parse_logical_and(self) -> ast.Expression:
        return self._parse_binary_level(("&&",), self._parse_bitwise_or)

    def _parse_bitwise_or(self) -> ast.Expression:
        return self._parse_binary_level(("|", "~|"), self._parse_bitwise_xor)

    def _parse_bitwise_xor(self) -> ast.Expression:
        return self._parse_binary_level(("^", "~^", "^~"), self._parse_bitwise_and)

    def _parse_bitwise_and(self) -> ast.Expression:
        return self._parse_binary_level(("&", "~&"), self._parse_equality)

    def _parse_equality(self) -> ast.Expression:
        return self._parse_binary_level(("==", "!=", "===", "!=="),
                                        self._parse_relational)

    def _parse_relational(self) -> ast.Expression:
        return self._parse_binary_level(("<", ">", "<=", ">="), self._parse_shift)

    def _parse_shift(self) -> ast.Expression:
        return self._parse_binary_level(("<<", ">>", "<<<", ">>>"),
                                        self._parse_additive)

    def _parse_additive(self) -> ast.Expression:
        return self._parse_binary_level(("+", "-"), self._parse_multiplicative)

    def _parse_multiplicative(self) -> ast.Expression:
        return self._parse_binary_level(("*", "/", "%"), self._parse_power)

    def _parse_power(self) -> ast.Expression:
        base = self._parse_unary()
        if self._accept("OP", "**"):
            # ``**`` is right-associative.
            exponent = self._parse_power()
            return ast.BinaryOp(op="**", left=base, right=exponent)
        return base

    def _parse_unary(self) -> ast.Expression:
        for op in ("~&", "~|", "~^", "^~", "!", "~", "-", "+", "&", "|", "^"):
            if self._check("OP", op):
                self._advance()
                operand = self._parse_unary()
                return ast.UnaryOp(op=op, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        tok = self._peek()
        if tok is None:
            raise VerilogSyntaxError("unexpected end of input in expression")

        if tok.kind == "NUMBER":
            self._advance()
            # Check for a sized literal split across tokens ("8" "'hFF" cannot
            # occur because the lexer merges them), so this is a plain integer.
            return ast.IntConst(value=int(tok.value.replace("_", "")))

        if tok.kind == "SIZED_NUMBER":
            self._advance()
            value, width, base = parse_sized_number(tok.value)
            return ast.IntConst(value=value, width=width, base=base)

        if tok.kind == "PUNCT" and tok.value == "(":
            self._advance()
            expr = self.parse_expression()
            self._expect("PUNCT", ")")
            return self._parse_postfix(expr)

        if tok.kind == "PUNCT" and tok.value == "{":
            return self._parse_concat_or_repeat()

        if tok.kind == "ID":
            self._advance()
            expr = ast.Identifier(name=tok.value)
            return self._parse_postfix(expr)

        raise VerilogSyntaxError(
            f"unexpected token {tok.value!r} at line {tok.line} in expression"
        )

    def _parse_postfix(self, expr: ast.Expression) -> ast.Expression:
        while self._check("PUNCT", "["):
            self._advance()
            first = self.parse_expression()
            if self._accept("PUNCT", ":"):
                lsb = self.parse_expression()
                self._expect("PUNCT", "]")
                expr = ast.PartSelect(target=expr, msb=first, lsb=lsb)
            else:
                self._expect("PUNCT", "]")
                expr = ast.BitSelect(target=expr, index=first)
        return expr

    def _parse_concat_or_repeat(self) -> ast.Expression:
        self._expect("PUNCT", "{")
        first = self.parse_expression()
        if self._check("PUNCT", "{"):
            # Replication: {N{expr}}
            self._advance()
            value = self.parse_expression()
            parts = [value]
            while self._accept("PUNCT", ","):
                parts.append(self.parse_expression())
            self._expect("PUNCT", "}")
            self._expect("PUNCT", "}")
            inner: ast.Expression
            if len(parts) == 1:
                inner = parts[0]
            else:
                inner = ast.Concat(parts=parts)
            return ast.Repeat(count=first, value=inner)
        parts = [first]
        while self._accept("PUNCT", ","):
            parts.append(self.parse_expression())
        self._expect("PUNCT", "}")
        return self._parse_postfix(ast.Concat(parts=parts))


def parse(text: str) -> ast.Source:
    """Parse Verilog source text and return the AST."""
    return Parser(tokenize(text)).parse_source()


def parse_module(text: str, name: Optional[str] = None) -> ast.Module:
    """Parse source text and return one module (by name, or the only one)."""
    source = parse(text)
    if name is not None:
        return source.module(name)
    if len(source.modules) != 1:
        raise VerilogSyntaxError(
            "parse_module expects exactly one module when no name is given"
        )
    return source.modules[0]
