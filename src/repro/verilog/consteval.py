"""Constant evaluation of Verilog expressions.

Parameter values, port ranges and part-select bounds must be reduced to
integers before elaboration.  :func:`evaluate` folds an expression given an
environment of parameter values; :func:`range_width` computes the bit width of
a declared range.
"""

from __future__ import annotations

from typing import Mapping, Optional

from . import ast


class ConstEvalError(Exception):
    """Raised when an expression cannot be reduced to a constant."""


#: Cap on the bit width of a constant ``**`` result; keeps a 40-character
#: expression like ``2 ** 2 ** 26`` from building multi-megabit bignums
#: (and the elaborator from bit-blasting them into millions of gates).
POW_RESULT_BIT_LIMIT = 65536


def evaluate(expr: ast.Expression, env: Optional[Mapping[str, int]] = None) -> int:
    """Evaluate ``expr`` to an integer using parameter environment ``env``."""
    env = env or {}

    if isinstance(expr, ast.IntConst):
        return expr.value
    if isinstance(expr, ast.Identifier):
        if expr.name in env:
            return env[expr.name]
        raise ConstEvalError(f"identifier '{expr.name}' is not a constant")
    if isinstance(expr, ast.UnaryOp):
        value = evaluate(expr.operand, env)
        return _apply_unary(expr.op, value)
    if isinstance(expr, ast.BinaryOp):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        return _apply_binary(expr.op, left, right)
    if isinstance(expr, ast.Ternary):
        cond = evaluate(expr.cond, env)
        return evaluate(expr.true_value if cond else expr.false_value, env)
    if isinstance(expr, ast.Concat):
        # Constant concatenation: requires each part to have a known width.
        value = 0
        for part in expr.parts:
            width = _const_width(part, env)
            value = (value << width) | (evaluate(part, env) & ((1 << width) - 1))
        return value
    if isinstance(expr, ast.Repeat):
        count = evaluate(expr.count, env)
        width = _const_width(expr.value, env)
        chunk = evaluate(expr.value, env) & ((1 << width) - 1)
        value = 0
        for _ in range(count):
            value = (value << width) | chunk
        return value
    raise ConstEvalError(
        f"expression node {type(expr).__name__} is not a compile-time constant"
    )


def _const_width(expr: ast.Expression, env: Mapping[str, int]) -> int:
    if isinstance(expr, ast.IntConst) and expr.width is not None:
        return expr.width
    value = evaluate(expr, env)
    return max(1, value.bit_length())


def _apply_unary(op: str, value: int) -> int:
    if op == "-":
        return -value
    if op == "+":
        return value
    if op == "~":
        return ~value
    if op == "!":
        return int(value == 0)
    if op == "&":
        return int(value != 0 and _all_ones(value))
    if op == "|":
        return int(value != 0)
    if op in ("^",):
        return bin(value if value >= 0 else ~value).count("1") % 2
    if op in ("~&", "~|", "~^", "^~"):
        base = {"~&": "&", "~|": "|", "~^": "^", "^~": "^"}[op]
        return int(not _apply_unary(base, value))
    raise ConstEvalError(f"unsupported unary operator {op!r} in constant expression")


def _all_ones(value: int) -> bool:
    return value & (value + 1) == 0


def _apply_binary(op: str, left: int, right: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ConstEvalError("division by zero in constant expression")
        return left // right
    if op == "%":
        if right == 0:
            raise ConstEvalError("modulo by zero in constant expression")
        return left % right
    if op in ("<<", "<<<"):
        return left << right
    if op in (">>", ">>>"):
        return left >> right
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    if op in ("==", "==="):
        return int(left == right)
    if op in ("!=", "!=="):
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op in ("^",):
        return left ^ right
    if op in ("~^", "^~"):
        return ~(left ^ right)
    if op == "**":
        if right < 0:
            raise ConstEvalError(
                "negative exponent in constant '**' expression"
            )
        if abs(left) > 1 and \
                right * max(1, abs(left).bit_length()) > POW_RESULT_BIT_LIMIT:
            raise ConstEvalError(
                f"constant '**' result exceeds {POW_RESULT_BIT_LIMIT} bits"
            )
        return left ** right
    raise ConstEvalError(f"unsupported binary operator {op!r} in constant expression")


def range_width(width: Optional[ast.Range],
                env: Optional[Mapping[str, int]] = None) -> int:
    """Return the bit width of a declared range (1 for scalar signals)."""
    if width is None:
        return 1
    msb = evaluate(width.msb, env)
    lsb = evaluate(width.lsb, env)
    return abs(msb - lsb) + 1


def module_parameters(module: ast.Module,
                      overrides: Optional[Mapping[str, int]] = None) -> dict[str, int]:
    """Resolve all parameter values for a module, applying ``overrides``.

    Parameters are evaluated in declaration order so later parameters may
    reference earlier ones.
    """
    env: dict[str, int] = {}
    overrides = overrides or {}
    for decl in module.param_decls:
        if not decl.local and decl.name in overrides:
            env[decl.name] = int(overrides[decl.name])
        else:
            env[decl.name] = evaluate(decl.value, env)
    return env
