"""Verilog code generation from the AST.

The generator is the inverse of the parser: it renders a :class:`Source`,
:class:`Module` or expression back into synthesizable Verilog text.  ALICE uses
it to emit the redacted top module, the per-cluster eFPGA wrapper modules, and
the fabric netlists.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "

# Binary operator precedence used to decide when parentheses are required.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "~^": 4, "^~": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

#: Parenthesization threshold for operands of unary operators and selects;
#: above every binary precedence so those contexts always parenthesize.
_PRIMARY_PREC = 12


def generate_expression(expr: ast.Expression) -> str:
    """Render an expression to Verilog text."""
    return _expr(expr, parent_prec=0)


def _expr(expr: ast.Expression, parent_prec: int) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.IntConst):
        return str(expr)
    if isinstance(expr, ast.UnaryOp):
        inner = _expr(expr.operand, parent_prec=_PRIMARY_PREC)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.BinaryOp):
        prec = _PRECEDENCE.get(expr.op, _PRIMARY_PREC)
        if expr.op == "**":
            # Right-associative: parenthesize an equal-precedence left child.
            left = _expr(expr.left, prec + 1)
            right = _expr(expr.right, prec)
        else:
            left = _expr(expr.left, prec)
            right = _expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Ternary):
        cond = _expr(expr.cond, 1)
        true_value = _expr(expr.true_value, 0)
        false_value = _expr(expr.false_value, 0)
        text = f"{cond} ? {true_value} : {false_value}"
        if parent_prec > 0:
            return f"({text})"
        return text
    if isinstance(expr, ast.Concat):
        parts = ", ".join(_expr(p, 0) for p in expr.parts)
        return f"{{{parts}}}"
    if isinstance(expr, ast.Repeat):
        count = _expr(expr.count, 0)
        value = _expr(expr.value, 0)
        return f"{{{count}{{{value}}}}}"
    if isinstance(expr, ast.BitSelect):
        target = _expr(expr.target, _PRIMARY_PREC)
        index = _expr(expr.index, 0)
        return f"{target}[{index}]"
    if isinstance(expr, ast.PartSelect):
        target = _expr(expr.target, _PRIMARY_PREC)
        msb = _expr(expr.msb, 0)
        lsb = _expr(expr.lsb, 0)
        return f"{target}[{msb}:{lsb}]"
    raise TypeError(f"cannot generate code for expression node {type(expr).__name__}")


def _range_text(width: ast.Range | None) -> str:
    if width is None:
        return ""
    return f"[{generate_expression(width.msb)}:{generate_expression(width.lsb)}] "


def _port_decl(port: ast.Port) -> str:
    kind = " reg" if port.is_reg else ""
    signed = " signed" if port.signed else ""
    width = _range_text(port.width)
    width_text = f" {width.rstrip()}" if width else ""
    return f"{port.direction}{kind}{signed}{width_text} {port.name}"


def generate_statement(stmt: ast.Statement | None, indent: int = 1) -> str:
    """Render a procedural statement (recursively)."""
    pad = _INDENT * indent
    if stmt is None:
        return f"{pad};"
    if isinstance(stmt, ast.Block):
        header = f"{pad}begin"
        if stmt.name:
            header += f" : {stmt.name}"
        lines = [header]
        for sub in stmt.statements:
            lines.append(generate_statement(sub, indent + 1))
        lines.append(f"{pad}end")
        return "\n".join(lines)
    if isinstance(stmt, ast.BlockingAssign):
        return (f"{pad}{generate_expression(stmt.lhs)} = "
                f"{generate_expression(stmt.rhs)};")
    if isinstance(stmt, ast.NonBlockingAssign):
        return (f"{pad}{generate_expression(stmt.lhs)} <= "
                f"{generate_expression(stmt.rhs)};")
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({generate_expression(stmt.cond)})"]
        lines.append(generate_statement(stmt.then_stmt, indent + 1))
        if stmt.else_stmt is not None:
            lines.append(f"{pad}else")
            lines.append(generate_statement(stmt.else_stmt, indent + 1))
        return "\n".join(lines)
    if isinstance(stmt, ast.For):
        init = generate_statement(stmt.init, 0).strip().rstrip(";")
        step = generate_statement(stmt.step, 0).strip().rstrip(";")
        header = (f"{pad}for ({init}; "
                  f"{generate_expression(stmt.cond)}; {step})")
        return header + "\n" + generate_statement(stmt.body, indent + 1)
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}{stmt.kind} ({generate_expression(stmt.expr)})"]
        for item in stmt.items:
            if item.conditions is None:
                label = "default"
            else:
                label = ", ".join(generate_expression(c) for c in item.conditions)
            lines.append(f"{pad}{_INDENT}{label}:")
            lines.append(generate_statement(item.statement, indent + 2))
        lines.append(f"{pad}endcase")
        return "\n".join(lines)
    raise TypeError(f"cannot generate code for statement node {type(stmt).__name__}")


def _sensitivity_text(items: list[ast.SensItem]) -> str:
    if any(item.star for item in items):
        return "@(*)"
    parts = []
    for item in items:
        prefix = f"{item.edge} " if item.edge else ""
        parts.append(f"{prefix}{generate_expression(item.signal)}")
    return "@(" + " or ".join(parts) + ")"


def _instance_text(inst: ast.Instance, indent: int = 1) -> str:
    pad = _INDENT * indent
    params = ""
    if inst.parameters:
        rendered = []
        for override in inst.parameters:
            if override.param is None:
                rendered.append(generate_expression(override.expr))
            else:
                rendered.append(
                    f".{override.param}({generate_expression(override.expr)})"
                )
        params = " #(" + ", ".join(rendered) + ")"
    connections = []
    for conn in inst.connections:
        expr_text = generate_expression(conn.expr) if conn.expr is not None else ""
        if conn.port is None:
            connections.append(expr_text)
        else:
            connections.append(f".{conn.port}({expr_text})")
    body = ",\n".join(f"{pad}{_INDENT}{c}" for c in connections)
    return (f"{pad}{inst.module_name}{params} {inst.instance_name} (\n"
            f"{body}\n{pad});")


def generate_module(module: ast.Module) -> str:
    """Render a module definition to Verilog text."""
    lines: list[str] = []
    port_names = ",\n".join(f"{_INDENT}{_port_decl(p)}" for p in module.ports)
    if module.ports:
        lines.append(f"module {module.name} (\n{port_names}\n);")
    else:
        lines.append(f"module {module.name};")

    for item in module.items:
        if isinstance(item, ast.ParamDecl):
            keyword = "localparam" if item.local else "parameter"
            lines.append(
                f"{_INDENT}{keyword} {item.name} = "
                f"{generate_expression(item.value)};"
            )
        elif isinstance(item, ast.NetDecl):
            width = _range_text(item.width)
            init = ""
            if item.init is not None:
                init = f" = {generate_expression(item.init)}"
            lines.append(f"{_INDENT}{item.kind} {width}{item.name}{init};")
        elif isinstance(item, ast.Assign):
            lines.append(
                f"{_INDENT}assign {generate_expression(item.lhs)} = "
                f"{generate_expression(item.rhs)};"
            )
        elif isinstance(item, ast.Always):
            lines.append(f"{_INDENT}always {_sensitivity_text(item.sensitivity)}")
            lines.append(generate_statement(item.statement, indent=2))
        elif isinstance(item, ast.Initial):
            lines.append(f"{_INDENT}initial")
            lines.append(generate_statement(item.statement, indent=2))
        elif isinstance(item, ast.Instance):
            lines.append(_instance_text(item, indent=1))
        else:
            raise TypeError(
                f"cannot generate code for module item {type(item).__name__}"
            )
    lines.append("endmodule")
    return "\n".join(lines)


def generate_source(source: ast.Source) -> str:
    """Render a full source (all modules) to Verilog text."""
    return "\n\n".join(generate_module(mod) for mod in source.modules) + "\n"
