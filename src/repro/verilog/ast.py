"""Abstract syntax tree for the synthesizable Verilog subset used by ALICE.

The node hierarchy intentionally mirrors the structure produced by PyVerilog
(the parser used by the original ALICE prototype): a :class:`Source` holds a
list of :class:`Module` definitions, each module holds declarations, continuous
assignments, procedural blocks and instances.  Expressions form a small
algebraic hierarchy rooted at :class:`Expression`.

All nodes are plain dataclasses so they can be constructed programmatically
(e.g. by the redaction engine when it rewrites the top module) as easily as by
the parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union


class Node:
    """Base class for every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used for generic traversals)."""
        return iter(())


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class for expression nodes."""


@dataclass
class Identifier(Expression):
    """A reference to a named signal, parameter or genvar."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class IntConst(Expression):
    """An integer literal, optionally sized (e.g. ``4'b1010``)."""

    value: int
    width: Optional[int] = None
    base: str = "d"

    def __str__(self) -> str:
        if self.width is None:
            return str(self.value)
        if self.base == "b":
            digits = format(self.value, "b")
        elif self.base == "h":
            digits = format(self.value, "x")
        elif self.base == "o":
            digits = format(self.value, "o")
        else:
            digits = str(self.value)
        return f"{self.width}'{self.base}{digits}"


@dataclass
class UnaryOp(Expression):
    """A unary operator applied to a single operand.

    ``op`` is one of ``~ ! - + & | ^ ~& ~| ~^`` (reduction operators
    included).
    """

    op: str
    operand: Expression

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class BinaryOp(Expression):
    """A binary operator with left and right operands."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class Ternary(Expression):
    """The conditional operator ``cond ? true_value : false_value``."""

    cond: Expression
    true_value: Expression
    false_value: Expression

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.true_value
        yield self.false_value


@dataclass
class Concat(Expression):
    """A concatenation ``{a, b, c}``."""

    parts: list[Expression]

    def children(self) -> Iterator[Node]:
        yield from self.parts


@dataclass
class Repeat(Expression):
    """A replication ``{N{expr}}``."""

    count: Expression
    value: Expression

    def children(self) -> Iterator[Node]:
        yield self.count
        yield self.value


@dataclass
class BitSelect(Expression):
    """A single-bit select ``sig[idx]``."""

    target: Expression
    index: Expression

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.index


@dataclass
class PartSelect(Expression):
    """A constant part select ``sig[msb:lsb]``."""

    target: Expression
    msb: Expression
    lsb: Expression

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.msb
        yield self.lsb


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Range(Node):
    """A packed range ``[msb:lsb]`` attached to a declaration."""

    msb: Expression
    lsb: Expression

    def children(self) -> Iterator[Node]:
        yield self.msb
        yield self.lsb


@dataclass
class Port(Node):
    """A port entry in a module header.

    ``direction`` is ``input``, ``output`` or ``inout``; ``width`` is the
    declared packed range (``None`` for scalar ports); ``is_reg`` records a
    combined ``output reg`` declaration.
    """

    name: str
    direction: str
    width: Optional[Range] = None
    is_reg: bool = False
    signed: bool = False

    def children(self) -> Iterator[Node]:
        if self.width is not None:
            yield self.width


@dataclass
class NetDecl(Node):
    """A ``wire`` or ``reg`` declaration inside a module body."""

    name: str
    kind: str  # "wire" or "reg"
    width: Optional[Range] = None
    signed: bool = False
    init: Optional[Expression] = None

    def children(self) -> Iterator[Node]:
        if self.width is not None:
            yield self.width
        if self.init is not None:
            yield self.init


@dataclass
class ParamDecl(Node):
    """A ``parameter`` or ``localparam`` declaration."""

    name: str
    value: Expression
    local: bool = False
    width: Optional[Range] = None

    def children(self) -> Iterator[Node]:
        yield self.value


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for procedural statements."""


@dataclass
class Assign(Node):
    """A continuous assignment ``assign lhs = rhs;``."""

    lhs: Expression
    rhs: Expression

    def children(self) -> Iterator[Node]:
        yield self.lhs
        yield self.rhs


@dataclass
class BlockingAssign(Statement):
    """A blocking procedural assignment ``lhs = rhs;``."""

    lhs: Expression
    rhs: Expression

    def children(self) -> Iterator[Node]:
        yield self.lhs
        yield self.rhs


@dataclass
class NonBlockingAssign(Statement):
    """A non-blocking procedural assignment ``lhs <= rhs;``."""

    lhs: Expression
    rhs: Expression

    def children(self) -> Iterator[Node]:
        yield self.lhs
        yield self.rhs


@dataclass
class If(Statement):
    """An ``if``/``else`` statement."""

    cond: Expression
    then_stmt: Optional[Statement]
    else_stmt: Optional[Statement] = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        if self.then_stmt is not None:
            yield self.then_stmt
        if self.else_stmt is not None:
            yield self.else_stmt


@dataclass
class CaseItem(Node):
    """A single arm of a ``case`` statement (``None`` conditions = default)."""

    conditions: Optional[list[Expression]]
    statement: Optional[Statement]

    def children(self) -> Iterator[Node]:
        if self.conditions:
            yield from self.conditions
        if self.statement is not None:
            yield self.statement


@dataclass
class Case(Statement):
    """A ``case``/``casez``/``casex`` statement."""

    expr: Expression
    items: list[CaseItem]
    kind: str = "case"

    def children(self) -> Iterator[Node]:
        yield self.expr
        yield from self.items


@dataclass
class For(Statement):
    """A procedural ``for`` loop.

    The synthesizable interpretation requires the init/cond/step to be
    compile-time evaluable so the elaborator can unroll the loop.
    """

    init: Statement
    cond: Expression
    step: Statement
    body: Optional[Statement]

    def children(self) -> Iterator[Node]:
        yield self.init
        yield self.cond
        yield self.step
        if self.body is not None:
            yield self.body


@dataclass
class Block(Statement):
    """A ``begin ... end`` block."""

    statements: list[Statement]
    name: Optional[str] = None

    def children(self) -> Iterator[Node]:
        yield from self.statements


@dataclass
class SensItem(Node):
    """A sensitivity-list entry (``posedge clk``, ``negedge rst`` or a level)."""

    signal: Optional[Expression]
    edge: Optional[str] = None  # "posedge", "negedge" or None
    star: bool = False

    def children(self) -> Iterator[Node]:
        if self.signal is not None:
            yield self.signal


@dataclass
class Always(Node):
    """An ``always @(...) ...`` procedural block."""

    sensitivity: list[SensItem]
    statement: Statement

    def children(self) -> Iterator[Node]:
        yield from self.sensitivity
        yield self.statement

    @property
    def is_sequential(self) -> bool:
        """True when any sensitivity item is edge-triggered."""
        return any(item.edge in ("posedge", "negedge") for item in self.sensitivity)


@dataclass
class Initial(Node):
    """An ``initial`` block (kept for completeness; ignored by synthesis)."""

    statement: Statement

    def children(self) -> Iterator[Node]:
        yield self.statement


# ---------------------------------------------------------------------------
# Instances and modules
# ---------------------------------------------------------------------------


@dataclass
class PortConnection(Node):
    """A port connection of an instance.

    ``port`` is ``None`` for positional connections; ``expr`` is ``None`` for
    unconnected ports (``.p()``).
    """

    port: Optional[str]
    expr: Optional[Expression]

    def children(self) -> Iterator[Node]:
        if self.expr is not None:
            yield self.expr


@dataclass
class ParamOverride(Node):
    """A parameter override in an instantiation (``#(.P(8))``)."""

    param: Optional[str]
    expr: Expression

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class Instance(Node):
    """A module instantiation."""

    module_name: str
    instance_name: str
    connections: list[PortConnection] = field(default_factory=list)
    parameters: list[ParamOverride] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.parameters
        yield from self.connections

    def connection_for(self, port: str) -> Optional[Expression]:
        """Return the expression connected to ``port``, if any (named only)."""
        for conn in self.connections:
            if conn.port == port:
                return conn.expr
        return None


ModuleItem = Union[NetDecl, ParamDecl, Assign, Always, Initial, Instance]


@dataclass
class Module(Node):
    """A Verilog module definition."""

    name: str
    ports: list[Port] = field(default_factory=list)
    items: list[ModuleItem] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.ports
        yield from self.items

    # -- convenience accessors ------------------------------------------------

    @property
    def inputs(self) -> list[Port]:
        return [p for p in self.ports if p.direction == "input"]

    @property
    def outputs(self) -> list[Port]:
        return [p for p in self.ports if p.direction == "output"]

    @property
    def inouts(self) -> list[Port]:
        return [p for p in self.ports if p.direction == "inout"]

    def port(self, name: str) -> Optional[Port]:
        for p in self.ports:
            if p.name == name:
                return p
        return None

    @property
    def instances(self) -> list[Instance]:
        return [item for item in self.items if isinstance(item, Instance)]

    @property
    def assigns(self) -> list[Assign]:
        return [item for item in self.items if isinstance(item, Assign)]

    @property
    def always_blocks(self) -> list[Always]:
        return [item for item in self.items if isinstance(item, Always)]

    @property
    def net_decls(self) -> list[NetDecl]:
        return [item for item in self.items if isinstance(item, NetDecl)]

    @property
    def param_decls(self) -> list[ParamDecl]:
        return [item for item in self.items if isinstance(item, ParamDecl)]


@dataclass
class Source(Node):
    """A parsed Verilog source: an ordered collection of modules."""

    modules: list[Module] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.modules

    def module(self, name: str) -> Module:
        """Return the module named ``name`` (raises ``KeyError`` if missing)."""
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"module '{name}' not found")

    def has_module(self, name: str) -> bool:
        return any(mod.name == name for mod in self.modules)

    def module_names(self) -> list[str]:
        return [mod.name for mod in self.modules]

    def merge(self, other: "Source") -> "Source":
        """Return a new Source with modules from both (other wins on clash)."""
        by_name = {mod.name: mod for mod in self.modules}
        for mod in other.modules:
            by_name[mod.name] = mod
        return Source(modules=list(by_name.values()))


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal of the AST rooted at ``node``."""
    yield node
    for child in node.children():
        yield from walk(child)


def iter_identifiers(node: Node) -> Iterator[Identifier]:
    """Yield every :class:`Identifier` in the subtree rooted at ``node``."""
    for sub in walk(node):
        if isinstance(sub, Identifier):
            yield sub


def expression_signals(expr: Expression) -> set[str]:
    """Return the set of signal names referenced by an expression."""
    return {ident.name for ident in iter_identifiers(expr)}


def lvalue_signals(expr: Expression) -> set[str]:
    """Return the signal names written by an lvalue expression.

    Handles identifiers, bit/part selects and concatenations of those.
    """
    if isinstance(expr, Identifier):
        return {expr.name}
    if isinstance(expr, (BitSelect, PartSelect)):
        return lvalue_signals(expr.target)
    if isinstance(expr, Concat):
        result: set[str] = set()
        for part in expr.parts:
            result |= lvalue_signals(part)
        return result
    return set()
