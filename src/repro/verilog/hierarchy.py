"""Design hierarchy analysis.

Builds the module/instance tree of a parsed design, computes per-module port
statistics (I/O pin counts) and provides the per-instance view that ALICE's
module-filtering phase consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from . import ast
from .consteval import ConstEvalError, evaluate, module_parameters, range_width


class HierarchyError(Exception):
    """Raised when the design hierarchy is inconsistent (e.g. missing module)."""


@dataclass
class PortInfo:
    """Resolved information about a single port of a module."""

    name: str
    direction: str
    width: int

    @property
    def is_input(self) -> bool:
        return self.direction == "input"

    @property
    def is_output(self) -> bool:
        return self.direction == "output"


@dataclass
class ModuleInfo:
    """Aggregate port statistics for one module definition."""

    name: str
    ports: list[PortInfo]
    parameters: dict[str, int] = field(default_factory=dict)

    @property
    def input_pins(self) -> int:
        return sum(p.width for p in self.ports if p.direction == "input")

    @property
    def output_pins(self) -> int:
        return sum(p.width for p in self.ports if p.direction == "output")

    @property
    def inout_pins(self) -> int:
        return sum(p.width for p in self.ports if p.direction == "inout")

    @property
    def io_pins(self) -> int:
        """Total bit-level I/O pin count (the metric used by ALICE filtering)."""
        return self.input_pins + self.output_pins + self.inout_pins

    def port(self, name: str) -> PortInfo:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"port '{name}' not found on module '{self.name}'")


@dataclass
class InstanceNode:
    """A node of the elaborated instance tree."""

    path: str
    instance_name: str
    module_name: str
    parent: Optional["InstanceNode"] = None
    children: list["InstanceNode"] = field(default_factory=list)
    ast_instance: Optional[ast.Instance] = None

    def walk(self) -> Iterator["InstanceNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth


def resolve_module_info(module: ast.Module,
                        overrides: Optional[Mapping[str, int]] = None) -> ModuleInfo:
    """Compute :class:`ModuleInfo` for a module, resolving parameterized widths."""
    params = module_parameters(module, overrides)
    ports: list[PortInfo] = []
    decl_widths = {
        decl.name: decl.width for decl in module.net_decls
    }
    for port in module.ports:
        width_range = port.width if port.width is not None else decl_widths.get(port.name)
        try:
            width = range_width(width_range, params)
        except ConstEvalError as exc:
            raise HierarchyError(
                f"cannot resolve width of port '{port.name}' on module "
                f"'{module.name}': {exc}"
            ) from exc
        ports.append(PortInfo(name=port.name, direction=port.direction, width=width))
    return ModuleInfo(name=module.name, ports=ports, parameters=params)


class DesignHierarchy:
    """The elaborated hierarchy of a design: modules, instances and statistics."""

    def __init__(self, source: ast.Source, top: str):
        if not source.has_module(top):
            raise HierarchyError(f"top module '{top}' not found in source")
        self.source = source
        self.top = top
        self._module_info: dict[str, ModuleInfo] = {}
        self.root = self._build_tree()

    # -- module-level queries ---------------------------------------------------

    def module_info(self, name: str) -> ModuleInfo:
        """Return (and cache) the resolved port statistics of a module."""
        if name not in self._module_info:
            self._module_info[name] = resolve_module_info(self.source.module(name))
        return self._module_info[name]

    def module_names(self, include_top: bool = True) -> list[str]:
        names = self.source.module_names()
        if not include_top:
            names = [n for n in names if n != self.top]
        return names

    def defined_module_count(self, include_top: bool = True) -> int:
        return len(self.module_names(include_top=include_top))

    # -- instance-level queries ---------------------------------------------------

    def _build_tree(self) -> InstanceNode:
        root = InstanceNode(path=self.top, instance_name=self.top,
                            module_name=self.top)
        self._expand(root, seen=(self.top,))
        return root

    def _expand(self, node: InstanceNode, seen: tuple[str, ...]) -> None:
        module = self.source.module(node.module_name)
        for inst in module.instances:
            if not self.source.has_module(inst.module_name):
                # Unresolved leaf (e.g. a technology cell); keep it as a leaf node.
                child = InstanceNode(
                    path=f"{node.path}.{inst.instance_name}",
                    instance_name=inst.instance_name,
                    module_name=inst.module_name,
                    parent=node,
                    ast_instance=inst,
                )
                node.children.append(child)
                continue
            if inst.module_name in seen:
                raise HierarchyError(
                    f"recursive instantiation of module '{inst.module_name}'"
                )
            child = InstanceNode(
                path=f"{node.path}.{inst.instance_name}",
                instance_name=inst.instance_name,
                module_name=inst.module_name,
                parent=node,
                ast_instance=inst,
            )
            node.children.append(child)
            self._expand(child, seen=seen + (inst.module_name,))

    def instances(self, include_top: bool = False) -> list[InstanceNode]:
        """All instance nodes in the design (optionally including the top)."""
        nodes = list(self.root.walk())
        if not include_top:
            nodes = [n for n in nodes if n is not self.root]
        return nodes

    def instances_of(self, module_name: str) -> list[InstanceNode]:
        return [n for n in self.instances() if n.module_name == module_name]

    def instance(self, path: str) -> InstanceNode:
        for node in self.root.walk():
            if node.path == path:
                return node
        raise KeyError(f"instance path '{path}' not found")

    def instance_count(self) -> int:
        return len(self.instances())

    # -- statistics used by Table 1 ----------------------------------------------

    def io_pin_range(self, include_top: bool = False) -> tuple[int, int]:
        """Return (min, max) I/O pin count over defined modules."""
        counts = [
            self.module_info(name).io_pins
            for name in self.module_names(include_top=include_top)
            if self.source.has_module(name)
        ]
        if not counts:
            return (0, 0)
        return (min(counts), max(counts))

    def statistics(self) -> dict[str, object]:
        """Summary statistics matching the columns of Table 1."""
        lo, hi = self.io_pin_range(include_top=False)
        return {
            "top": self.top,
            "modules": self.defined_module_count(include_top=False),
            "instances": self.instance_count(),
            "io_pins_min": lo,
            "io_pins_max": hi,
        }

    # -- dominator analysis (used when inserting multi-module eFPGA instances) ----

    def dominator_parent(self, paths: list[str]) -> InstanceNode:
        """Return the deepest common ancestor of the given instance paths.

        ALICE inserts a multi-module eFPGA instance at the deepest point of the
        hierarchy that dominates every redacted instance, which minimizes the
        wiring needed to re-route the original signals.
        """
        if not paths:
            return self.root
        ancestor_lists = []
        for path in paths:
            node = self.instance(path)
            chain = []
            current: Optional[InstanceNode] = node.parent
            while current is not None:
                chain.append(current)
                current = current.parent
            ancestor_lists.append(list(reversed(chain)))
        common: InstanceNode = self.root
        for level in zip(*ancestor_lists):
            first = level[0]
            if all(node is first for node in level):
                common = first
            else:
                break
        return common
