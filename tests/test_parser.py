"""Parser tests, including generator round-trips (parse → emit → reparse)."""

import pytest

from repro.verilog import ast
from repro.verilog.generator import generate_module, generate_source
from repro.verilog.parser import VerilogSyntaxError, parse, parse_module

ADDER = """
module adder #(parameter N = 4) (
  input [N-1:0] a,
  input [N-1:0] b,
  output [N:0] y
);
  assign y = a + b;
endmodule
"""

SEQ = """
module seq(input clk, input rst, input d, output reg q);
  always @(posedge clk) begin
    if (rst)
      q <= 1'b0;
    else
      q <= d;
  end
endmodule
"""

HIER = """
module leaf(input a, output y);
  assign y = ~a;
endmodule

module top(input x, output z);
  wire mid;
  leaf u0 (.a(x), .y(mid));
  leaf u1 (.a(mid), .y(z));
endmodule
"""


def test_module_header_and_ports():
    module = parse_module(ADDER)
    assert module.name == "adder"
    assert [p.name for p in module.ports] == ["a", "b", "y"]
    assert [p.direction for p in module.ports] == ["input", "input", "output"]
    assert module.param_decls[0].name == "N"


def test_non_ansi_ports():
    module = parse_module("""
    module m(a, b, y);
      input a, b;
      output y;
      assign y = a & b;
    endmodule
    """)
    assert [p.name for p in module.ports] == ["a", "b", "y"]
    assert module.port("y").direction == "output"


def test_always_block_structure():
    module = parse_module(SEQ)
    always = module.always_blocks[0]
    assert always.is_sequential
    stmt = always.statement
    assert isinstance(stmt, ast.Block)
    assert isinstance(stmt.statements[0], ast.If)


def test_case_statement():
    module = parse_module("""
    module m(input [1:0] s, output reg y);
      always @(*) begin
        case (s)
          2'd0, 2'd1: y = 1'b0;
          default: y = 1'b1;
        endcase
      end
    endmodule
    """)
    case = module.always_blocks[0].statement.statements[0]
    assert isinstance(case, ast.Case)
    assert len(case.items) == 2
    assert case.items[0].conditions is not None
    assert len(case.items[0].conditions) == 2
    assert case.items[1].conditions is None


def test_for_loop_parses_to_for_node():
    module = parse_module("""
    module m(input [3:0] a, output reg [3:0] y);
      integer i;
      always @(*) begin
        for (i = 0; i < 4; i = i + 1)
          y[i] = a[i];
      end
    endmodule
    """)
    loop = module.always_blocks[0].statement.statements[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.BlockingAssign)
    assert isinstance(loop.cond, ast.BinaryOp)
    assert isinstance(loop.step, ast.BlockingAssign)


def test_instances_and_parameter_overrides():
    module = parse_module("""
    module top(input a, output y);
      sub #(.W(8)) u0 (.x(a), .y(y));
    endmodule
    """)
    inst = module.instances[0]
    assert inst.module_name == "sub"
    assert inst.parameters[0].param == "W"
    assert inst.connection_for("x") is not None


def test_expression_precedence():
    module = parse_module("module m(output y); assign y = 1 + 2 * 3; endmodule")
    rhs = module.assigns[0].rhs
    assert isinstance(rhs, ast.BinaryOp) and rhs.op == "+"
    assert isinstance(rhs.right, ast.BinaryOp) and rhs.right.op == "*"


@pytest.mark.parametrize("source", [ADDER, SEQ, HIER])
def test_generator_roundtrip_is_stable(source):
    first = parse(source)
    text1 = generate_source(first)
    second = parse(text1)
    text2 = generate_source(second)
    assert text1 == text2
    assert first.module_names() == second.module_names()


def test_generator_roundtrip_for_loop():
    source = """
    module m(input [3:0] a, output reg [3:0] y);
      integer i;
      always @(*) begin
        for (i = 0; i < 4; i = i + 1)
          y[i] = a[3 - i];
      end
    endmodule
    """
    text1 = generate_module(parse_module(source))
    text2 = generate_module(parse_module(text1))
    assert text1 == text2
    assert "for (" in text1


def test_power_operator_precedence_and_roundtrip():
    from repro.verilog.consteval import evaluate
    from repro.verilog.generator import generate_expression

    # ``**`` is right-associative and binds tighter than ``*``.
    rhs = parse_module(
        "module m(output y); assign y = 2 * 2 ** 3 ** 2; endmodule"
    ).assigns[0].rhs
    assert evaluate(rhs) == 2 * 2 ** 9
    # Programmatic ASTs that differ from parse defaults must round-trip.
    neg_pow = ast.UnaryOp("-", ast.BinaryOp("**", ast.IntConst(2),
                                            ast.IntConst(2)))
    left_pow = ast.BinaryOp("**", ast.BinaryOp("**", ast.IntConst(2),
                                               ast.IntConst(3)),
                            ast.IntConst(2))
    for node, expected in ((neg_pow, -4), (left_pow, 64)):
        text = generate_expression(node)
        reparsed = parse_module(
            f"module m(output y); assign y = {text}; endmodule"
        ).assigns[0].rhs
        assert evaluate(reparsed) == expected


def test_syntax_error_reports_line():
    with pytest.raises(VerilogSyntaxError, match="line"):
        parse("module m(input a output y); endmodule")


def test_parse_module_requires_single_module():
    with pytest.raises(VerilogSyntaxError):
        parse_module(HIER)
