"""Pickle / content-hash round-trips for the picklable core.

The parallel engines (``check_equivalence(jobs=N)``, ``fraig_sweep``
shards) and the ``repro.server`` worker pool all depend on two
properties of :class:`Netlist` and :class:`AIG`:

* they survive pickling byte-exactly (same structure, same behaviour),
* :meth:`content_hash` is a *structural* identity — stable across
  re-elaboration and transport, changed by any semantic mutation —
  because it keys the service layer's result cache.

The designs under test are the benchmark generators themselves
(``scripts/bench.py``), so every shape the perf suite exercises is also
covered here.
"""

import importlib.util
import os
import pickle
import random

import pytest

from repro.netlist import (
    CompiledSim,
    compile_netlist,
    elaborate,
    from_netlist,
)
from repro.netlist.aig import AIG
from repro.netlist.logic import Netlist
from repro.netlist.sat import check_equivalence
from repro.netlist.sim import input_word_widths

_BENCH = os.path.join(os.path.dirname(__file__), os.pardir,
                      "scripts", "bench.py")
_spec = importlib.util.spec_from_file_location("_bench_designs", _BENCH)
_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_bench)

DESIGNS = _bench.DESIGNS
WIDTH = 4


def _elaborated(factory, width=WIDTH):
    name, src, _ = factory(width)
    return src, name, elaborate(src, top=name)


@pytest.fixture(params=DESIGNS, ids=lambda f: f.__name__)
def design(request):
    return _elaborated(request.param)


def test_netlist_pickle_round_trip(design):
    _, _, netlist = design
    clone = pickle.loads(pickle.dumps(netlist))
    assert isinstance(clone, Netlist)
    assert clone.content_hash() == netlist.content_hash()
    assert clone.input_names() == netlist.input_names()
    assert clone.output_names() == netlist.output_names()


def test_netlist_bytes_round_trip(design):
    _, _, netlist = design
    clone = Netlist.from_bytes(netlist.to_bytes())
    assert clone.content_hash() == netlist.content_hash()


def test_aig_round_trips(design):
    _, _, netlist = design
    aig = from_netlist(netlist)
    pickled = pickle.loads(pickle.dumps(aig))
    assert isinstance(pickled, AIG)
    assert pickled.content_hash() == aig.content_hash()
    assert pickled.num_ands == aig.num_ands
    assert AIG.from_bytes(aig.to_bytes()).content_hash() \
        == aig.content_hash()


def test_unpickled_netlist_passes_cec(design):
    # The transported design is not merely hash-equal: the full checker
    # proves it equivalent to the original (this is exactly what a
    # server worker does with a netlist it received over the pool).
    _, _, netlist = design
    clone = pickle.loads(pickle.dumps(netlist))
    assert check_equivalence(netlist, clone).equivalent


def test_unpickled_netlist_recompiles_in_sim(design):
    _, _, netlist = design
    clone = pickle.loads(pickle.dumps(netlist))
    rng = random.Random(2022)
    widths = input_word_widths(netlist)
    vectors = [{name: rng.getrandbits(width)
                for name, width in widths.items()} for _ in range(32)]
    original = CompiledSim(compile_netlist(netlist)).run_batch(vectors)
    transported = CompiledSim(compile_netlist(clone)).run_batch(vectors)
    assert transported == original


def test_content_hash_stable_under_reelaboration(design):
    src, name, netlist = design
    again = elaborate(src, top=name)
    assert again.content_hash() == netlist.content_hash()
    # Comment and whitespace churn is invisible to the structural hash —
    # the property the server's content-keyed result cache relies on.
    variant = elaborate("// tool banner\n" + src + "\n\n", top=name)
    assert variant.content_hash() == netlist.content_hash()


@pytest.mark.parametrize("factory", DESIGNS, ids=lambda f: f.__name__)
def test_content_hash_changes_on_width_mutation(factory):
    _, _, narrow = _elaborated(factory, WIDTH)
    _, _, wide = _elaborated(factory, WIDTH + 1)
    assert narrow.content_hash() != wide.content_hash()


def test_content_hash_changes_on_semantic_mutation():
    _, _, good = _elaborated(_bench.shift_add_multiplier_design)
    name, src, _ = _bench.shift_add_multiplier_design(WIDTH)
    broken = elaborate(src.replace("a * b", "a * b + 1"), top=name)
    assert broken.content_hash() != good.content_hash()
    # The AIG-level hash must split them too (it keys FRAIG-side reuse).
    assert from_netlist(broken).content_hash() \
        != from_netlist(good).content_hash()


def test_pickle_drops_caches(design):
    # The codec must not smuggle memoised solver/simulation state: a
    # clone starts cold but hashes identically after use.
    _, _, netlist = design
    netlist.content_hash()  # populate the hash cache
    clone = pickle.loads(pickle.dumps(netlist))
    assert clone.content_hash() == netlist.content_hash()
