"""Tests for the compiled bit-parallel simulation engine (repro.netlist.sim).

The compiled engine is property-tested against two independent oracles on
every design the elaborator suite exercises: the per-gate interpreter
(``logic.simulate`` via ``engine="interp"``) and the AST-level vector
``Interpreter``.  Packed (multi-lane) runs are additionally checked
lane-by-lane against sequential runs for the pack widths 1, 7, 64 and 256.
"""

import random

import pytest

from repro.netlist import (
    CompiledSim,
    GateType,
    Interpreter,
    Netlist,
    NetlistError,
    compile_netlist,
    elaborate,
    simulate,
    simulate_compiled,
    simulate_sequence,
    simulate_vectors,
)

from test_opt import DESIGN_IDS, DESIGNS, _random_vectors

PACK_WIDTHS = [1, 7, 64, 256]


# ---------------------------------------------------------------------------
# Oracle equivalence over all designs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_compiled_matches_both_oracles(name, source, top, params):
    """run_batch == per-gate interpreter == AST interpreter, cycle by cycle."""
    netlist = elaborate(source, top=top, params=params)
    vectors = _random_vectors(netlist, 48, seed=hash(name) & 0xFFFF)
    compiled_out = CompiledSim(netlist).run_batch(vectors)
    assert compiled_out == simulate_sequence(netlist, vectors,
                                             engine="interp")
    assert compiled_out == Interpreter(source, top=top, params=params) \
        .run(vectors)


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_compiled_matches_oracles_on_optimized_netlist(name, source, top,
                                                       params):
    optimized = elaborate(source, top=top, params=params, optimize=True)
    vectors = _random_vectors(optimized, 32, seed=len(name))
    compiled_out = CompiledSim(optimized).run_batch(vectors)
    assert compiled_out == simulate_sequence(optimized, vectors,
                                             engine="interp")
    assert compiled_out == Interpreter(source, top=top, params=params) \
        .run(vectors)


@pytest.mark.parametrize("lanes", PACK_WIDTHS)
@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_packed_lanes_match_sequential_runs(name, source, top, params,
                                            lanes):
    """Every packed lane reproduces a solo sequential run of its stimulus."""
    netlist = elaborate(source, top=top, params=params)
    sequences = [
        _random_vectors(netlist, 6, seed=(hash(name) ^ lanes ^ j) & 0xFFFF)
        for j in range(lanes)
    ]
    packed = CompiledSim(netlist).run_parallel(sequences)
    assert len(packed) == lanes
    for seq, lane_out in zip(sequences, packed):
        solo = CompiledSim(netlist)
        assert lane_out == solo.run_batch(seq)
    # Spot-check the first and last lane against the independent AST oracle.
    oracle = Interpreter(source, top=top, params=params)
    assert packed[0] == oracle.run(sequences[0])
    if lanes > 1:
        oracle = Interpreter(source, top=top, params=params)
        assert packed[-1] == oracle.run(sequences[-1])


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_simulate_compiled_is_dropin_for_simulate(name, source, top, params):
    """Bit-level single-cycle API: identical outputs and next state."""
    netlist = elaborate(source, top=top, params=params)
    rng = random.Random(len(name))
    registers = netlist.registers
    for _ in range(16):
        inputs = {bit: rng.getrandbits(1) for bit in netlist.input_names()}
        state = {gid: rng.getrandbits(1) for gid in registers}
        assert simulate_compiled(netlist, inputs, state) == \
            simulate(netlist, inputs, state)


def test_simulate_vectors_engines_agree():
    _, source, top, params = DESIGNS[3]  # counter: stateful
    netlist = elaborate(source, top=top, params=params)
    vectors = _random_vectors(netlist, 8, seed=3)
    state_c: dict = {}
    state_i: dict = {}
    for vector in vectors:
        out_c, state_c = simulate_vectors(netlist, vector, state_c)
        out_i, state_i = simulate_vectors(netlist, vector, state_i,
                                          engine="interp")
        assert out_c == out_i
        assert state_c == state_i


def test_unknown_engine_rejected():
    netlist = elaborate("module m(input a, output y); assign y = a; endmodule")
    # The diagnostic must name the valid engines, and fire before any
    # work happens (even an empty sequence validates its engine).
    with pytest.raises(ValueError,
                       match=r"unknown simulation engine 'verilator' "
                             r"\(valid engines: 'compiled', 'interp'\)"):
        simulate_vectors(netlist, {"a": 1}, engine="verilator")
    with pytest.raises(ValueError, match="'compiled', 'interp'"):
        simulate_sequence(netlist, [{"a": 1}], engine="verilator")
    with pytest.raises(ValueError, match="valid engines"):
        simulate_sequence(netlist, [], engine="")


# ---------------------------------------------------------------------------
# Stateful API (Interpreter mirror)
# ---------------------------------------------------------------------------

COUNTER = """
module counter #(parameter W = 4) (
  input clk, input rst, input en,
  output reg [W-1:0] q, output wrap
);
  assign wrap = q == {W{1'b1}};
  always @(posedge clk) begin
    if (rst) q <= 0;
    else if (en) q <= q + 1;
  end
endmodule
"""


def test_step_and_state_lockstep_with_interpreter():
    netlist = elaborate(COUNTER, top="counter")
    sim = CompiledSim(netlist)
    interp = Interpreter(COUNTER, top="counter")
    rng = random.Random(11)
    for cycle in range(40):
        if cycle == 20:  # mid-run state injection, both engines
            sim.load_state({"counter.q": 13})
            interp.load_state({"counter.q": 13})
        vector = {"clk": 0, "rst": int(rng.random() < 0.1),
                  "en": int(rng.random() < 0.7)}
        assert sim.step(vector) == interp.step(vector)
        assert sim.flat_state() == interp.flat_state()


def test_reset_clears_state():
    sim = CompiledSim(elaborate(COUNTER, top="counter"))
    sim.step({"clk": 0, "rst": 0, "en": 1})
    assert sim.flat_state() == {"counter.q": 1}
    sim.reset()
    assert sim.flat_state() == {"counter.q": 0}


def test_load_state_validates():
    sim = CompiledSim(elaborate(COUNTER, top="counter"))
    with pytest.raises(NetlistError, match="does not name a register"):
        sim.load_state({"counter.bogus": 1})
    with pytest.raises(NetlistError, match="does not fit"):
        sim.load_state({"counter.q": 16})
    sim.load_state({"counter.q": 9})
    assert sim.flat_state() == {"counter.q": 9}
    assert sim.step({"clk": 0, "rst": 0, "en": 1}) == {"q": 9, "wrap": 0}
    assert sim.flat_state() == {"counter.q": 10}


def test_missing_input_port_raises():
    sim = CompiledSim(elaborate(COUNTER, top="counter"))
    with pytest.raises(KeyError, match="missing value for input port 'en'"):
        sim.step({"clk": 0, "rst": 0})
    with pytest.raises(NetlistError, match="missing value for input"):
        simulate_compiled(elaborate(COUNTER, top="counter"), {})


def test_run_parallel_ragged_and_empty():
    netlist = elaborate(COUNTER, top="counter")
    sim = CompiledSim(netlist)
    assert sim.run_parallel([]) == []
    seqs = [
        [{"clk": 0, "rst": 0, "en": 1}] * length for length in (5, 2, 0)
    ]
    results = sim.run_parallel(seqs)
    assert [len(r) for r in results] == [5, 2, 0]
    assert [out["q"] for out in results[0]] == [0, 1, 2, 3, 4]
    # run_parallel leaves the simulator's own state untouched.
    assert sim.flat_state() == {"counter.q": 0}


def test_run_parallel_lanes_start_from_current_state():
    sim = CompiledSim(elaborate(COUNTER, top="counter"))
    sim.load_state({"counter.q": 5})
    step = {"clk": 0, "rst": 0, "en": 1}
    results = sim.run_parallel([[step, step], [step]])
    assert [out["q"] for out in results[0]] == [5, 6]
    assert [out["q"] for out in results[1]] == [5]
    assert sim.flat_state() == {"counter.q": 5}


# ---------------------------------------------------------------------------
# Compilation: folding, caching, generated source
# ---------------------------------------------------------------------------


def test_buf_chains_and_constants_fold_away():
    netlist = Netlist("fold")
    a = netlist.add_input("a")
    buf = netlist.add_gate(GateType.BUF, (a,))
    buf2 = netlist.add_gate(GateType.BUF, (buf,))
    netlist.add_output("y", buf2)                       # alias chain
    netlist.add_output("k1", netlist.make_and(a, netlist.const1()))  # = a
    netlist.add_output("k0", netlist.make_or(
        netlist.const0(), netlist.const0()))            # = 0
    netlist.add_output("n1", netlist.make_not(netlist.const0()))     # = 1
    m = netlist.make_mux(netlist.const1(), netlist.const0(), a)
    netlist.add_output("m", m)                          # select const -> a
    compiled = compile_netlist(netlist)
    # Everything folds to aliases/constants: no gate assignment is emitted.
    body = [line for line in compiled.source.splitlines()
            if line.strip().startswith("n")]
    assert body == []
    outputs, _ = compiled.run_words({"a": 1}, ())
    assert outputs == {"y": 1, "k1": 1, "k0": 0, "n1": 1, "m": 1}
    outputs, _ = compiled.run_words({"a": 0}, ())
    assert outputs == {"y": 0, "k1": 0, "k0": 0, "n1": 1, "m": 0}


def test_constant_dominated_gates_fold():
    netlist = Netlist("fold2")
    a = netlist.add_input("a")
    netlist.add_output("z", netlist.make_and(a, netlist.const0()))
    netlist.add_output("o", netlist.make_or(a, netlist.const1()))
    netlist.add_output("x", netlist.make_xor(a, netlist.const1()))  # = ~a
    compiled = compile_netlist(netlist)
    for value in (0, 1):
        outputs, _ = compiled.run_words({"a": value}, ())
        assert outputs == {"z": 0, "o": 1, "x": 1 - value}


def test_dead_cone_is_not_compiled():
    netlist = Netlist("dead")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.make_xor(a, b)  # dead: feeds no output or register
    netlist.add_output("y", netlist.make_and(a, b))
    compiled = compile_netlist(netlist)
    assert "^" not in compiled.source
    assert "&" in compiled.source


def test_compile_cache_hits_and_invalidation():
    netlist = Netlist("cache")
    a = netlist.add_input("a")
    netlist.add_output("y", netlist.make_not(a))
    first = compile_netlist(netlist)
    assert compile_netlist(netlist) is first
    netlist.add_output("raw", a)  # add_output alone must invalidate
    second = compile_netlist(netlist)
    assert second is not first
    outputs, _ = second.run_words({"a": 1}, ())
    assert outputs == {"y": 0, "raw": 1}
    netlist.set_fanins(netlist.output_net("y"), (netlist.const1(),))
    third = compile_netlist(netlist)
    assert third is not second
    outputs, _ = third.run_words({"a": 0}, ())
    assert outputs == {"y": 0, "raw": 0}


def test_packed_run_raw_interface():
    """run() evaluates all mask lanes of a combinational netlist at once."""
    netlist = Netlist("raw")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y", netlist.make_xor(a, b))
    compiled = compile_netlist(netlist)
    mask = (1 << 64) - 1
    rng = random.Random(5)
    pa, pb = rng.getrandbits(64), rng.getrandbits(64)
    (y,), () = compiled.run((pa, pb), (), mask)
    assert y == pa ^ pb
