"""End-to-end elaborator tests.

Each design is elaborated to a gate-level netlist, simulated, and checked
against both hand-computed expectations and the independent vector-level
reference interpreter (:class:`repro.netlist.Interpreter`).
"""

import itertools
import random

import pytest

from repro.netlist import (
    ElaborationError,
    GateType,
    Interpreter,
    elaborate,
    simulate_sequence,
    simulate_vectors,
)

RCA = """
module full_adder(input a, input b, input cin, output s, output cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule

module rca #(parameter N = 4) (
  input [N-1:0] a, input [N-1:0] b, input cin,
  output [N-1:0] sum, output cout
);
  wire [N:0] carry;
  assign carry[0] = cin;
  full_adder fa0 (.a(a[0]), .b(b[0]), .cin(carry[0]), .s(sum[0]), .cout(carry[1]));
  full_adder fa1 (.a(a[1]), .b(b[1]), .cin(carry[1]), .s(sum[1]), .cout(carry[2]));
  full_adder fa2 (.a(a[2]), .b(b[2]), .cin(carry[2]), .s(sum[2]), .cout(carry[3]));
  full_adder fa3 (.a(a[3]), .b(b[3]), .cin(carry[3]), .s(sum[3]), .cout(carry[4]));
  assign cout = carry[N];
endmodule
"""

ALU = """
module alu #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b, input [2:0] op,
  output reg [W-1:0] y, output zero
);
  assign zero = y == 0;
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = ~a;
      3'd6: y = {W{a < b}};
      default: y = a;
    endcase
  end
endmodule
"""

COUNTER = """
module counter #(parameter W = 4) (
  input clk, input rst, input en,
  output reg [W-1:0] q, output wrap
);
  assign wrap = q == {W{1'b1}};
  always @(posedge clk) begin
    if (rst) q <= 0;
    else if (en) q <= q + 1;
  end
endmodule
"""

FSM = """
module fsm(input clk, input rst, input x, output reg [1:0] state, output busy);
  localparam IDLE = 0, RUN = 1, DONE = 2;
  assign busy = state == RUN;
  always @(posedge clk) begin
    if (rst) state <= IDLE;
    else begin
      case (state)
        IDLE: if (x) state <= RUN;
        RUN: if (!x) state <= DONE;
        DONE: state <= IDLE;
        default: state <= IDLE;
      endcase
    end
  end
endmodule
"""

MUXTREE = """
module muxtree(input [7:0] d, input [2:0] sel, output y, output [3:0] hi);
  assign y = d[sel];
  assign hi = d[7:4];
endmodule
"""

SHIFTER = """
module shifty(input [7:0] a, input [2:0] s,
              output [7:0] l, output [7:0] r, output [15:0] p);
  assign l = a << s;
  assign r = a >> s;
  assign p = a * s;
endmodule
"""

FORLOOP = """
module rev #(parameter W = 8) (input [W-1:0] a, output reg [W-1:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < W; i = i + 1)
      y[i] = a[W - 1 - i];
  end
endmodule
"""

SHIFTREG = """
module shiftreg(input clk, input d, output reg [3:0] taps);
  always @(posedge clk)
    taps <= {taps[2:0], d};
endmodule
"""


def cross_check(source, top, params, vectors, sequential=False):
    """Elaborated-netlist simulation must match the reference interpreter."""
    netlist = elaborate(source, top=top, params=params)
    interp = Interpreter(source, top=top, params=params)
    got = simulate_sequence(netlist, vectors)
    ref = interp.run(vectors)
    assert got == ref
    return netlist, got


def test_parameterized_multi_module_adder_exhaustive():
    netlist = elaborate(RCA, top="rca")
    for a, b, cin in itertools.product(range(16), range(16), (0, 1)):
        out, _ = simulate_vectors(netlist, {"a": a, "b": b, "cin": cin})
        total = a + b + cin
        assert out["sum"] == total % 16
        assert out["cout"] == total // 16


def test_adder_matches_interpreter():
    vectors = [
        {"a": a, "b": b, "cin": cin}
        for a, b, cin in itertools.product(range(16), range(16), (0, 1))
    ]
    cross_check(RCA, "rca", None, vectors)


def test_top_level_parameter_override():
    # The rca module is written for N=4 instances; overriding N only widens
    # the ports, so check an independent single-module design instead.
    source = """
    module inc #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
      assign y = a + 1;
    endmodule
    """
    netlist = elaborate(source, params={"W": 8})
    assert netlist.num_inputs == 8
    out, _ = simulate_vectors(netlist, {"a": 255})
    assert out["y"] == 0


def test_alu_exhaustive_against_interpreter():
    vectors = [
        {"a": a, "b": b, "op": op}
        for a, b, op in itertools.product(range(16), range(16), range(8))
    ]
    netlist, got = cross_check(ALU, "alu", None, vectors)
    for vec, out in zip(vectors, got):
        a, b, op = vec["a"], vec["b"], vec["op"]
        expected = [
            (a + b) % 16, (a - b) % 16, a & b, a | b, a ^ b,
            (~a) % 16, 15 if a < b else 0, a,
        ][op]
        assert out["y"] == expected
        assert out["zero"] == int(expected == 0)


def test_counter_sequence():
    vectors = [{"clk": 0, "rst": 1, "en": 0}]
    vectors += [{"clk": 0, "rst": 0, "en": int(t % 3 != 0)}
                for t in range(40)]
    netlist, got = cross_check(COUNTER, "counter", None, vectors)
    assert netlist.num_registers == 4
    # The counter increments exactly when en was high on the previous edge.
    value = 0
    for vec, out in zip(vectors[1:], got[1:]):
        assert out["q"] == value
        if vec["en"]:
            value = (value + 1) % 16


def test_fsm_sequence():
    random.seed(7)
    vectors = [{"clk": 0, "rst": int(t == 0), "x": random.randint(0, 1)}
               for t in range(80)]
    netlist, got = cross_check(FSM, "fsm", None, vectors)
    assert netlist.num_registers == 2
    assert {out["state"] for out in got} <= {0, 1, 2}


def test_dynamic_bit_select_and_part_select():
    vectors = [{"d": d, "sel": sel}
               for d in range(0, 256, 7) for sel in range(8)]
    _, got = cross_check(MUXTREE, "muxtree", None, vectors)
    for vec, out in zip(vectors, got):
        assert out["y"] == (vec["d"] >> vec["sel"]) & 1
        assert out["hi"] == vec["d"] >> 4


def test_shifts_and_multiplier():
    vectors = [{"a": a, "s": s} for a in range(0, 256, 11) for s in range(8)]
    _, got = cross_check(SHIFTER, "shifty", None, vectors)
    for vec, out in zip(vectors, got):
        assert out["l"] == (vec["a"] << vec["s"]) & 0xFF
        assert out["r"] == vec["a"] >> vec["s"]
        assert out["p"] == vec["a"] * vec["s"]


def test_for_loop_unrolling():
    vectors = [{"a": a} for a in range(0, 256, 5)]
    _, got = cross_check(FORLOOP, "rev", None, vectors)
    for vec, out in zip(vectors, got):
        expected = int(format(vec["a"], "08b")[::-1], 2)
        assert out["y"] == expected


def test_sequential_concat_shift_register():
    bits = [1, 1, 0, 1, 0, 0, 1, 1, 1, 0]
    vectors = [{"clk": 0, "d": bit} for bit in bits]
    _, got = cross_check(SHIFTREG, "shiftreg", None, vectors)
    history = [0, 0, 0, 0]
    for bit, out in zip(bits, got):
        assert out["taps"] == int("".join(map(str, history[::-1])), 2)
        history = [bit] + history[:3]


def test_blocking_temporaries_in_sequential_block():
    source = """
    module acc(input clk, input [3:0] d, output reg [3:0] total);
      reg [3:0] nxt;
      always @(posedge clk) begin
        nxt = total + d;
        total <= nxt;
      end
    endmodule
    """
    vectors = [{"clk": 0, "d": d} for d in (1, 2, 3, 4, 5)]
    _, got = cross_check(source, "acc", None, vectors)
    assert [out["total"] for out in got] == [0, 1, 3, 6, 10]


def test_ternary_reduction_and_logical_ops():
    source = """
    module mix(input [3:0] a, input [3:0] b, output [3:0] y, output f);
      assign y = (&a) ? a : (a ^ b);
      assign f = (a != 0) && (|b) || !a[0];
    endmodule
    """
    vectors = [{"a": a, "b": b}
               for a, b in itertools.product(range(16), range(16))]
    cross_check(source, "mix", None, vectors)


def test_per_bit_feedback_through_vector_is_not_a_cycle():
    # a[1] depends on a[0]: bitwise resolution must not report a cycle,
    # in continuous or procedural form, and must match the interpreter.
    cont = """
    module t(input x, output [1:0] a);
      assign a[0] = x;
      assign a[1] = a[0];
    endmodule
    """
    proc = """
    module t(input x, output reg [1:0] a);
      always @(*) begin
        a[0] = x;
        a[1] = a[0];
      end
    endmodule
    """
    for source in (cont, proc):
        netlist = elaborate(source)
        out, _ = simulate_vectors(netlist, {"x": 1})
        assert out == Interpreter(source).step({"x": 1}) == {"a": 3}


def test_carry_preserved_into_wider_target():
    # Verilog context sizing: the add is computed at the 5-bit LHS width.
    source = """
    module wadd(input [3:0] a, input [3:0] b, output [4:0] s);
      assign s = a + b;
    endmodule
    """
    vectors = [{"a": a, "b": b}
               for a, b in itertools.product(range(16), range(16))]
    _, got = cross_check(source, "wadd", None, vectors)
    for vec, out in zip(vectors, got):
        assert out["s"] == vec["a"] + vec["b"]


def test_randomized_mixed_expression_cross_check():
    source = """
    module mixed #(parameter W = 6) (
      input [W-1:0] a, input [W-1:0] b, input [W-1:0] c, input s,
      output [W:0] y, output [W-1:0] z, output p
    );
      wire [W-1:0] t;
      assign t = s ? (a & ~b) : (a | (b ^ c));
      assign y = t + (c - a);
      assign z = {t[2:0], t[W-1:3]} ^ {W{s}};
      assign p = ^a ~^ &b;
    endmodule
    """
    random.seed(42)
    vectors = [
        {"a": random.randrange(64), "b": random.randrange(64),
         "c": random.randrange(64), "s": random.randint(0, 1)}
        for _ in range(300)
    ]
    cross_check(source, "mixed", None, vectors)


def test_unconnected_instance_input_reads_zero():
    source = """
    module leaf(input a, input b, output y);
      assign y = a | b;
    endmodule
    module top(input x, output y);
      leaf u (.a(x), .b(), .y(y));
    endmodule
    """
    netlist = elaborate(source, top="top")
    out, _ = simulate_vectors(netlist, {"x": 0})
    assert out["y"] == 0


def test_positional_connections_and_overrides():
    source = """
    module pass #(parameter W = 2) (input [W-1:0] d, output [W-1:0] q);
      assign q = d;
    endmodule
    module top(input [3:0] a, output [3:0] b);
      pass #(4) u (a, b);
    endmodule
    """
    netlist = elaborate(source, top="top")
    out, _ = simulate_vectors(netlist, {"a": 9})
    assert out["b"] == 9


def test_registered_feedback_through_instance():
    # A counter in a child module whose next value is computed by the parent:
    # combinational feedback through instance boundaries must not be
    # misreported as a cycle because a register breaks the loop.
    source = """
    module dffw #(parameter W = 4) (input clk, input [W-1:0] d,
                                    output reg [W-1:0] q);
      always @(posedge clk) q <= d;
    endmodule
    module top(input clk, output [3:0] count);
      wire [3:0] nxt;
      assign nxt = count + 1;
      dffw #(.W(4)) state (.clk(clk), .d(nxt), .q(count));
    endmodule
    """
    vectors = [{"clk": 0} for _ in range(10)]
    _, got = cross_check(source, "top", None, vectors)
    assert [out["count"] for out in got] == list(range(10))


# -- diagnostics --------------------------------------------------------------


def test_undriven_signal_diagnostic():
    with pytest.raises(ElaborationError, match="no driver"):
        elaborate("""
        module m(input a, output y);
          wire ghost;
          assign y = a & ghost;
        endmodule
        """)


def test_multiple_driver_diagnostic():
    with pytest.raises(ElaborationError, match="multiple drivers"):
        elaborate("""
        module m(input a, input b, output y);
          assign y = a;
          assign y = b;
        endmodule
        """)


def test_inferred_latch_diagnostic():
    with pytest.raises(ElaborationError, match="latch"):
        elaborate("""
        module m(input en, input d, output reg q);
          always @(*) begin
            if (en) q = d;
          end
        endmodule
        """)


def test_combinational_cycle_diagnostic():
    with pytest.raises(ElaborationError, match="cycle"):
        elaborate("""
        module m(input a, output y);
          wire u, v;
          assign u = v & a;
          assign v = u | a;
          assign y = v;
        endmodule
        """)


def test_unknown_module_diagnostic():
    with pytest.raises(ElaborationError, match="not defined"):
        elaborate("""
        module m(input a, output y);
          mystery u (.p(a), .q(y));
        endmodule
        """, top="m")


def test_inout_port_diagnostic():
    with pytest.raises(ElaborationError, match="inout"):
        elaborate("module m(inout a); endmodule")


def test_out_of_range_select_diagnostic():
    with pytest.raises(ElaborationError, match="out of range"):
        elaborate("""
        module m(input [3:0] a, output y);
          assign y = a[7];
        endmodule
        """)


def test_top_required_for_multi_module_source():
    with pytest.raises(ElaborationError, match="top module"):
        elaborate(RCA)


def test_elaborate_accepts_parsed_source():
    from repro.verilog.parser import parse

    netlist = elaborate(parse(RCA), top="rca")
    assert netlist.num_inputs == 9
    assert netlist.gate(netlist.output_net("cout")) is not None


def test_netlist_structure_of_sequential_design():
    netlist = elaborate(COUNTER, top="counter", params={"W": 6})
    assert netlist.num_registers == 6
    assert netlist.num_inputs == 3
    dffs = [g for g in netlist.gates.values()
            if g.gtype == GateType.DFF]
    assert all(g.name.startswith("counter.q") for g in dffs)
