"""Tests for the netlist -> Verilog emitter (repro.netlist.emit).

The contract under test is round-trip fidelity: the emitted text parses
with the project's own frontend, re-elaborates to the same interface, and
is SAT-provably equivalent to the netlist it was printed from — including
sequential designs, whose top-level register names survive the trip and
keep the register-correspondence check meaningful.
"""

import pytest

from repro.netlist import GateType, Netlist, elaborate
from repro.netlist.emit import EmitError, netlist_to_verilog
from repro.netlist.opt import optimize
from repro.netlist.sat import check_equivalence

from test_opt import DESIGN_IDS, DESIGNS, _random_vectors
from repro.netlist import simulate_sequence


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_emitted_verilog_reelaborates_equivalent(name, source, top, params):
    netlist = elaborate(source, top=top, params=params)
    text = netlist_to_verilog(netlist)
    reparsed = elaborate(text, top=top)
    verdict = check_equivalence(netlist, reparsed)
    assert verdict.equivalent, f"{name}: emitted Verilog is not equivalent"


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_optimized_netlists_round_trip(name, source, top, params):
    original = elaborate(source, top=top, params=params)
    optimized = optimize(original).netlist
    reparsed = elaborate(netlist_to_verilog(optimized), top=top)
    # Equivalence against the *unoptimized* original closes the loop:
    # elaborate -> optimize -> emit -> re-elaborate preserved the design.
    assert check_equivalence(original, reparsed).equivalent


def test_sequential_register_names_survive():
    source = DESIGNS[3][1]  # counter
    netlist = elaborate(source, top="counter")
    reparsed = elaborate(netlist_to_verilog(netlist), top="counter")
    assert reparsed.register_map().keys() == netlist.register_map().keys()
    verdict = check_equivalence(netlist, reparsed)
    assert verdict.equivalent
    # Name-matched registers mean every next-state function was compared.
    assert verdict.compared == \
        netlist.num_outputs + netlist.num_registers


def test_emitted_text_cosimulates():
    _, source, top, params = DESIGNS[3]
    netlist = elaborate(source, top=top, params=params)
    reparsed = elaborate(netlist_to_verilog(netlist), top=top)
    vectors = _random_vectors(netlist, 30, seed=11)
    assert simulate_sequence(reparsed, vectors) == \
        simulate_sequence(netlist, vectors)


def test_scalar_and_vector_ports():
    src = """
module m(input a, input [2:0] v, output y, output [1:0] w);
  assign y = a ^ v[0];
  assign w = {v[2], v[1] & a};
endmodule
"""
    netlist = elaborate(src, top="m")
    text = netlist_to_verilog(netlist)
    assert "input a," in text
    assert "input [2:0] v," in text
    assert "output y," in text
    assert "output [1:0] w" in text
    assert check_equivalence(netlist,
                             elaborate(text, top="m")).equivalent


def test_output_reg_declaration_restored():
    src = """
module m(input clk, input d, output reg [1:0] q);
  always @(posedge clk) q <= {q[0], d};
endmodule
"""
    netlist = elaborate(src, top="m")
    text = netlist_to_verilog(netlist)
    assert "output reg [1:0] q" in text
    assert check_equivalence(netlist,
                             elaborate(text, top="m")).equivalent


def test_added_clock_is_flagged():
    netlist = Netlist("m")
    a = netlist.add_input("a")
    q = netlist.add_dff(netlist.const0(), name="m.q")
    netlist.set_fanins(q, (a,))
    netlist.add_output("y", q)
    text = netlist_to_verilog(netlist)
    assert "input clk" in text
    assert "was added" in text
    reparsed = elaborate(text, top="m")
    assert "clk" in reparsed.input_names()


def test_every_gate_type_prints(tmp_path):
    netlist = Netlist("m")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    s = netlist.add_input("s")
    for gtype in (GateType.BUF, GateType.NOT, GateType.AND, GateType.OR,
                  GateType.XOR, GateType.NAND, GateType.NOR, GateType.XNOR):
        fanins = (a,) if gtype in (GateType.BUF, GateType.NOT) else (a, b)
        netlist.add_output(f"o_{gtype.value}",
                           netlist.add_gate(gtype, fanins))
    netlist.add_output("o_mux", netlist.make_mux(s, a, b))
    netlist.add_output("o_c0", netlist.const0())
    netlist.add_output("o_c1", netlist.const1())
    text = netlist_to_verilog(netlist)
    reparsed = elaborate(text, top="m")
    assert check_equivalence(netlist, reparsed).equivalent


def test_gapped_output_vector_rejected():
    netlist = Netlist("m")
    a = netlist.add_input("a")
    netlist.add_output("y[0]", a)
    netlist.add_output("y[2]", a)
    with pytest.raises(EmitError, match="gaps"):
        netlist_to_verilog(netlist)


def test_single_bit_vector_port_rejected():
    # 'a[0]' alone cannot round-trip: the frontend names width-1 ports
    # plain 'a', so the re-elaborated interface would not match.
    netlist = Netlist("m")
    a = netlist.add_input("a[0]")
    netlist.add_output("y", a)
    with pytest.raises(EmitError, match=r"single-bit vector"):
        netlist_to_verilog(netlist)


def test_single_bit_vector_register_round_trips():
    # A register word reduced to its [0] bit is declared with a padded
    # width so the '<base>[0]' correspondence name survives re-elaboration.
    netlist = Netlist("m")
    netlist.add_input("clk")  # reused by the emitted always block
    a = netlist.add_input("a")
    q = netlist.add_dff(netlist.const0(), name="m.q[0]")
    netlist.set_fanins(q, (netlist.make_xor(a, q),))
    netlist.add_output("y", q)
    text = netlist_to_verilog(netlist)
    assert "reg [1:0] q;" in text
    reparsed = elaborate(text, top="m")
    assert "m.q[0]" in reparsed.register_map()
    verdict = check_equivalence(netlist, reparsed)
    assert verdict.equivalent
    # The padded bit is free state on the re-elaborated side only; the
    # matched register's next-state function was still compared.
    assert verdict.compared == 2  # output y + next-state of m.q[0]


def test_wire_prefix_avoids_port_collisions():
    netlist = Netlist("m")
    w2 = netlist.add_input("w2")
    b = netlist.add_input("b")
    netlist.add_output("y", netlist.make_and(w2, b))
    text = netlist_to_verilog(netlist)
    reparsed = elaborate(text, top="m")
    assert check_equivalence(netlist, reparsed).equivalent


def test_wire_prefix_rescans_after_every_bump():
    # 'w3' forces the prefix to 'w_', which 'w_5' (seen earlier in the
    # name set) must in turn force to 'w__' — a single pass would emit a
    # wire colliding with the 'w_5' port.
    netlist = Netlist("m")
    a = netlist.add_input("w3")
    b = netlist.add_input("w_5")
    netlist.add_output("y", netlist.make_and(a, b))
    text = netlist_to_verilog(netlist)
    assert "wire w__" in text
    reparsed = elaborate(text, top="m")
    assert check_equivalence(netlist, reparsed).equivalent
