"""Tests for ``repro.server``: cache keys, worker jobs, daemon, client."""

import asyncio
import threading

import pytest

from repro.netlist import elaborate
from repro.server import (
    OPTION_DEFAULTS,
    ResultCache,
    ServerClient,
    ServerError,
    canonical_options,
    content_key,
    run_daemon,
    run_verify_job,
    source_key,
)

ADDER = """
module adder #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b, input cin,
  output [W:0] sum
);
  assign sum = a + b + cin;
endmodule
"""

# Same function, different association order: not byte-identical, not
# hash-identical pre-optimization at every node, but CEC-equivalent.
ADDER_B = """
module adder #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b, input cin,
  output [W:0] sum
);
  assign sum = (a + cin) + b;
endmodule
"""

ADDER_BAD = """
module adder #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b, input cin,
  output [W:0] sum
);
  assign sum = a + b;
endmodule
"""

BROKEN_SOURCE = "module oops (input a, output b)\n  this is not verilog\n"


# ---------------------------------------------------------------------------
# Option canonicalisation and cache keys
# ---------------------------------------------------------------------------

def test_canonical_options_defaults():
    assert canonical_options(None) == OPTION_DEFAULTS
    assert canonical_options({}) == OPTION_DEFAULTS


def test_canonical_options_drops_jobs():
    # Worker parallelism cannot change a verdict, so it must not split
    # the cache key space.
    assert canonical_options({"jobs": 8}) == OPTION_DEFAULTS


def test_canonical_options_rejects_unknown_keys():
    with pytest.raises(ValueError):
        canonical_options({"encodng": "aig"})


def test_canonical_options_coerces_and_orders():
    a = canonical_options({"certify": 1, "encoding": "aig"})
    b = canonical_options({"encoding": "aig", "certify": True})
    assert a == b
    assert a["certify"] is True


def test_content_key_tracks_hashes_and_options():
    netlist_a = elaborate(ADDER, top="adder")
    netlist_b = elaborate(ADDER_B, top="adder")
    options = canonical_options(None)
    key_aa = content_key(netlist_a.content_hash(),
                         netlist_a.content_hash(), options)
    key_ab = content_key(netlist_a.content_hash(),
                         netlist_b.content_hash(), options)
    assert key_aa != key_ab
    certified = content_key(netlist_a.content_hash(),
                            netlist_b.content_hash(),
                            canonical_options({"certify": True}))
    assert certified != key_ab
    # Deterministic across calls — it names on-disk cache files.
    assert key_ab == content_key(netlist_a.content_hash(),
                                 netlist_b.content_hash(), options)


def test_source_key_is_byte_sensitive():
    options = canonical_options(None)
    assert source_key(ADDER, ADDER_B, options) \
        != source_key(ADDER + " ", ADDER_B, options)


def test_result_cache_memory_and_disk(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get("k1") is None
    cache.put("k1", {"equivalent": True})
    assert cache.get("k1") == {"equivalent": True}
    # A fresh instance over the same directory sees the entry (the
    # cross-process sharing path the daemon workers use).
    other = ResultCache(cache_dir=str(tmp_path))
    assert other.get("k1") == {"equivalent": True}
    stats = other.stats()
    assert stats["disk_hits"] == 1 and stats["misses"] == 0


def test_result_cache_memory_only():
    cache = ResultCache(cache_dir=None)
    cache.put("k1", {"equivalent": False})
    assert cache.get("k1") == {"equivalent": False}
    assert ResultCache(cache_dir=None).get("k1") is None


# ---------------------------------------------------------------------------
# The worker-side job function (what the pool actually executes)
# ---------------------------------------------------------------------------

def _payload(before=ADDER, after=ADDER_B, options=None, cache_dir=None):
    return {
        "before": before,
        "after": after,
        "options": canonical_options(options),
        "cache_dir": cache_dir,
        "trace": False,
    }


def test_run_verify_job_proves_equivalence():
    reply = run_verify_job(_payload())
    assert reply["ok"] is True
    assert reply["cache_hit"] is False
    assert reply["report"]["equivalent"] is True
    assert reply["hashes"][0] != reply["hashes"][1]


def test_run_verify_job_refutes():
    reply = run_verify_job(_payload(after=ADDER_BAD))
    assert reply["ok"] is True
    report = reply["report"]
    assert report["equivalent"] is False
    assert report["counterexample"]["diff"]


def test_run_verify_job_disk_cache_round_trip(tmp_path):
    cold = run_verify_job(_payload(cache_dir=str(tmp_path)))
    assert cold["cache_hit"] is False
    # Comment-only variant: different source bytes, same content key.
    warm = run_verify_job(_payload(before="// v2\n" + ADDER,
                                   cache_dir=str(tmp_path)))
    assert warm["cache_hit"] is True
    assert warm["key"] == cold["key"]
    assert warm["report"] == cold["report"]


def test_run_verify_job_reports_errors():
    reply = run_verify_job(_payload(before=BROKEN_SOURCE))
    assert reply["ok"] is False
    assert reply["error"]
    assert reply["error_type"]


# ---------------------------------------------------------------------------
# Daemon end-to-end over HTTP
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def client(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("cec-cache"))
    box = {}
    started = threading.Event()

    def _serve():
        def _ready(daemon):
            box["daemon"] = daemon
            started.set()

        asyncio.run(run_daemon(port=0, workers=1, cache_dir=cache_dir,
                               ready=_ready))

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "daemon failed to start"
    client = ServerClient(port=box["daemon"].port)
    client.ping()
    yield client
    client.shutdown()
    thread.join(timeout=60)


def test_daemon_proves_equivalence(client):
    record = client.verify(ADDER, ADDER_B)
    assert record["status"] == "done"
    assert record["equivalence"]["equivalent"] is True
    assert record["cache_hit"] is False


def test_daemon_refutes_with_counterexample(client):
    record = client.verify(ADDER, ADDER_BAD)
    assert record["status"] == "done"
    eq = record["equivalence"]
    assert eq["equivalent"] is False
    assert eq["counterexample"]["diff"]


def test_daemon_alias_cache_hit(client):
    first = client.verify(ADDER, ADDER_B)
    submit = client.submit(ADDER, ADDER_B)
    assert submit["cache_hit"] is True
    record = client.wait(submit["id"])
    assert record["seconds"] == 0.0
    assert record["equivalence"] == first["equivalence"]


def test_daemon_content_hash_cache_hit(client):
    # New source bytes (alias miss) but identical structure: the worker
    # must answer from the shared on-disk content-hash cache.
    client.verify(ADDER, ADDER_B)
    record = client.verify("// resubmitted\n" + ADDER, ADDER_B)
    assert record["cache_hit"] is True
    assert record["equivalence"]["equivalent"] is True


def test_daemon_inflight_dedup(client):
    before = ADDER.replace("a + b + cin", "b + a + cin")
    first = client.submit(before, ADDER_B, {"certify": True})
    second = client.submit(before, ADDER_B, {"certify": True})
    if "deduplicated" in second:
        assert second["id"] == first["id"]
    else:
        # The first job can finish before the duplicate arrives; then
        # the resubmission must be an instant alias hit instead.
        assert second["cache_hit"] is True
    record = client.wait(first["id"])
    assert record["status"] == "done"
    assert record["equivalence"]["proof"]["checked"] is True


def test_daemon_survives_worker_errors(client):
    record = client.verify(BROKEN_SOURCE, ADDER)
    assert record["status"] == "error"
    assert record["error"]
    # The daemon and its pool are still healthy afterwards.
    assert client.verify(ADDER, ADDER_B)["status"] == "done"


def test_daemon_rejects_bad_submissions(client):
    with pytest.raises(ServerError) as exc:
        client.submit(ADDER, None)
    assert exc.value.status == 400
    with pytest.raises(ServerError) as exc:
        client.submit(ADDER, ADDER_B, {"no_such_option": 1})
    assert exc.value.status == 400


def test_daemon_unknown_job_and_route(client):
    with pytest.raises(ServerError) as exc:
        client.job("job-999999")
    assert exc.value.status == 404
    with pytest.raises(ServerError) as exc:
        client._request("GET", "/nope")
    assert exc.value.status == 404


def test_daemon_status_counters(client):
    status = client.status()
    assert status["workers"] == 1
    assert status["total_jobs"] > 0
    assert status["jobs"].get("done", 0) > 0
    assert status["alias_hits"] >= 1
    assert status["uptime_seconds"] > 0.0
