"""Tests for the shared cut/NPN kernel, DAG-aware rewriting and LUT mapping.

The NPN canonicalizer is checked against a brute-force oracle over the
*entire* 4-input function space (all 65536 truth tables), the structure
library is independently re-evaluated entry by entry, and the rewrite and
mapping passes are verified the same way every other pass in this repo is:
SAT-proven equivalence on every elaborator test design, plus emit ->
re-elaborate -> CEC round trips for the mapped netlists.
"""

import itertools
import random

import pytest

from repro.netlist import elaborate
from repro.netlist.aig import AIG, from_netlist, to_netlist
from repro.netlist.emit import netlist_to_verilog
from repro.netlist.opt import (
    build_truth,
    cut_truth,
    enumerate_cuts,
    map_aig,
    npn_canon,
    npn_canonical,
    optimize,
    rewrite_aig,
)
from repro.netlist.opt.cut import npn_transforms
from repro.netlist.opt.fraig import fraig_sweep_map
from repro.netlist.opt.map import MapStats
from repro.netlist.opt.npn4 import NPN4_LIBRARY
from repro.netlist.opt.rewrite import RewriteStats
from repro.netlist.sim import aig_signatures, elementary_words

from test_opt import DESIGNS, DESIGN_IDS, _assert_equivalent

_MASK16 = 0xFFFF

#: Truth tables of the four elementary variables over all 16 minterms
#: (bit ``x`` of variable ``i``'s table = bit ``i`` of the index ``x``).
_VARS4 = (0xAAAA, 0xCCCC, 0xF0F0, 0xFF00)


def _oracle_transform(tt: int, perm, neg: int, out: int) -> int:
    """Brute-force reference for the NPN transform semantics:
    ``result(x) = tt'`` such that ``result == canon`` iff
    ``tt(x) == canon(x_{perm[i]} ^ neg_i) ^ out`` for every minterm."""
    res = 0
    for x in range(16):
        y = 0
        for i in range(4):
            y |= (((x >> perm[i]) & 1) ^ ((neg >> i) & 1)) << i
        if ((tt >> x) & 1) ^ out:
            res |= 1 << y
    return res


# ---------------------------------------------------------------------------
# NPN canonicalization: brute-force oracle over all 2^16 functions
# ---------------------------------------------------------------------------


def test_npn_class_count_is_222_over_all_functions():
    """All 65536 4-input functions fall into exactly 222 NPN classes."""
    canons = {npn_canonical(tt) for tt in range(1 << 16)}
    assert len(canons) == 222
    # Every canon is itself a member of its own class.
    assert all(npn_canonical(c) == c for c in canons)
    # The canonical form is the class minimum, so no member is smaller.
    assert all(npn_canonical(tt) <= tt for tt in range(1 << 16))


def test_npn_canon_transform_is_sound_for_every_function():
    """The (perm, neg, out) returned for every function reproduces it."""
    for tt in range(1 << 16):
        canon, perm, neg, out = npn_canon(tt)
        y = 0
        for x in range(16):
            idx = 0
            for i in range(4):
                idx |= (((x >> perm[i]) & 1) ^ ((neg >> i) & 1)) << i
            y |= (((canon >> idx) & 1) ^ out) << x
        assert y == tt, f"transform for {tt:#06x} does not reproduce it"


def test_npn_canonical_invariant_under_random_transforms():
    rng = random.Random(2022)
    perms = list(itertools.permutations(range(4)))
    for _ in range(500):
        tt = rng.getrandbits(16)
        perm = perms[rng.randrange(24)]
        neg = rng.getrandbits(4)
        out = rng.getrandbits(1)
        other = _oracle_transform(tt, perm, neg, out)
        assert npn_canonical(other) == npn_canonical(tt)


def test_npn_transforms_all_sound():
    rng = random.Random(7)
    for _ in range(200):
        tt = rng.getrandbits(16)
        canon = npn_canonical(tt)
        alts = npn_transforms(tt)
        assert 1 <= len(alts) <= 4
        for perm, neg, out in alts:
            restored = 0
            for x in range(16):
                idx = 0
                for i in range(4):
                    idx |= (((x >> perm[i]) & 1) ^ ((neg >> i) & 1)) << i
                restored |= (((canon >> idx) & 1) ^ out) << x
            assert restored == tt


# ---------------------------------------------------------------------------
# The precomputed structure library
# ---------------------------------------------------------------------------


def _eval_structure(root: int, nodes) -> int:
    """Independently evaluate a library structure over the elementary
    variable truth tables (slot 0 = const false, slots 1-4 = v0..v3)."""
    vals = [0, *_VARS4]
    for l0, l1 in nodes:
        a = vals[l0 >> 1] ^ (-(l0 & 1) & _MASK16)
        b = vals[l1 >> 1] ^ (-(l1 & 1) & _MASK16)
        vals.append(a & b)
    return (vals[root >> 1] ^ (-(root & 1) & _MASK16)) & _MASK16


def test_npn4_library_covers_every_class_correctly():
    canons = {npn_canonical(tt) for tt in range(1 << 16)}
    assert set(NPN4_LIBRARY) == canons
    for canon, (root, nodes) in NPN4_LIBRARY.items():
        assert _eval_structure(root, nodes) == canon


# ---------------------------------------------------------------------------
# Cut enumeration and cut truth tables
# ---------------------------------------------------------------------------


def _aig_node_truth(aig: AIG, nid: int, var_of: dict) -> int:
    """Brute-force truth table of ``nid`` over the vars in ``var_of``."""
    n = len(var_of)
    words = [0] * aig.num_nodes
    elem = elementary_words(n)
    for leaf, var in var_of.items():
        words[leaf] = elem[var]
    mask = (1 << (1 << n)) - 1
    for node in sorted(aig.cone([nid << 1])):
        if node in var_of or not aig.is_and(node):
            continue
        f0, f1 = aig.fanins(node)
        a = words[f0 >> 1] ^ (-(f0 & 1) & mask)
        b = words[f1 >> 1] ^ (-(f1 & 1) & mask)
        words[node] = a & b
    return words[nid] & mask


def test_cut_enumeration_and_truths_on_small_design():
    source = """
    module f (input a, input b, input c, input d, output y);
      assign y = (a & b) | (c ^ d);
    endmodule
    """
    aig = from_netlist(elaborate(source, top="f"))
    cuts = enumerate_cuts(aig, k=4)
    for nid, node_cuts in cuts.items():
        assert node_cuts[0] == (nid,), "trivial cut must come first"
        for cut in node_cuts:
            assert len(cut) <= 4
            assert list(cut) == sorted(cut)
            tt = cut_truth(aig, nid, cut)
            var_of = {leaf: i for i, leaf in enumerate(cut)}
            assert tt == _aig_node_truth(aig, nid, var_of)


@pytest.mark.parametrize("num_vars", [2, 3, 4, 5, 6])
def test_build_truth_realizes_arbitrary_functions(num_vars):
    rng = random.Random(num_vars)
    span = 1 << num_vars
    mask = (1 << span) - 1
    for _ in range(20):
        tt = rng.getrandbits(span)
        aig = AIG("tt")
        lits = [aig.add_input(f"x{i}") for i in range(num_vars)]
        aig.add_output("y", build_truth(aig, tt, num_vars, lits))
        sigs = aig_signatures(aig, elementary_words(num_vars), [], mask)
        (_, out_lit), = aig.outputs
        got = sigs[out_lit >> 1] ^ (-(out_lit & 1) & mask)
        assert got & mask == tt


# ---------------------------------------------------------------------------
# DAG-aware rewriting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_rewrite_cec_round_trip(name, source, top, params):
    netlist = elaborate(source, top=top, params=params)
    aig = from_netlist(netlist)
    stats = RewriteStats()
    rewritten = rewrite_aig(aig, stats=stats)
    assert stats.ands_after <= stats.ands_before
    _assert_equivalent(netlist, to_netlist(rewritten))


def test_rewrite_reduces_wide_alu_beyond_strash_balance():
    """The acceptance floor: rewrite finds real savings the structural
    passes missed on the W=16 ALU datapath."""
    from test_elaborate import ALU

    netlist = elaborate(ALU, top="alu", params={"W": 16})
    base = optimize(netlist,
                    passes=("simplify", "strash", "balance")).netlist
    aig = from_netlist(base)
    rewritten = rewrite_aig(aig)
    assert rewritten.num_ands < aig.num_ands
    _assert_equivalent(base, to_netlist(rewritten))


# ---------------------------------------------------------------------------
# Priority-cut LUT mapping
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", [4, 6])
@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_map_emit_reelaborate_cec(name, source, top, params, k):
    """k-LUT mapping round-trips through Verilog emission and CEC."""
    netlist = elaborate(source, top=top, params=params)
    result = map_aig(from_netlist(netlist), k=k)
    assert result.lut_count == len(result.luts)
    for lut in result.luts:
        assert 0 < len(lut.inputs) <= k
    mapped = result.to_netlist()
    _assert_equivalent(netlist, mapped)
    # Emit -> re-elaborate -> CEC: the mapped netlist survives the
    # Verilog round trip.
    emitted = netlist_to_verilog(mapped)
    reloaded = elaborate(emitted, top=netlist.name)
    _assert_equivalent(netlist, reloaded)


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_map_depth_never_exceeds_depth_target(name, source, top, params):
    """Area recovery must never undo the depth pass's guarantee."""
    netlist = elaborate(source, top=top, params=params)
    for k in (4, 6):
        stats = MapStats()
        result = map_aig(from_netlist(netlist), k=k, stats=stats)
        assert result.depth <= stats.depth_target


def test_map_rejects_bad_lut_sizes():
    aig = AIG("x")
    aig.add_output("y", aig.add_input("a"))
    with pytest.raises(ValueError):
        map_aig(aig, k=1)
    with pytest.raises(ValueError):
        map_aig(aig, k=7)


# ---------------------------------------------------------------------------
# FRAIG reuses caller-provided signatures
# ---------------------------------------------------------------------------


def test_fraig_accepts_precomputed_signatures():
    """Handing stage-1 stimulus + signatures in changes nothing but the
    work: the sweep result is identical to computing them internally."""
    from test_elaborate import ALU

    netlist = elaborate(ALU, top="alu", params={"W": 8})
    aig = from_netlist(netlist)
    patterns = 64
    rng = random.Random(99)
    leaves = list(aig.inputs) + list(aig.latches)
    words = {nid: rng.getrandbits(patterns) for nid in leaves}
    mask = (1 << patterns) - 1
    sigs = aig_signatures(
        aig,
        [words[nid] for nid in aig.inputs],
        [words[nid] for nid in aig.latches],
        mask,
    )
    with_sigs = fraig_sweep_map(aig, patterns=patterns,
                                words=words, signatures=sigs)
    without = fraig_sweep_map(aig, patterns=patterns, words=words)
    assert with_sigs.aig.num_ands == without.aig.num_ands
    assert with_sigs.stats.proven == without.stats.proven
    _assert_equivalent(netlist, to_netlist(with_sigs.aig))
