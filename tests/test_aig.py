"""Tests for the canonical AIG core (repro.netlist.aig).

Unit tests pin the folding/hash-consing contract of ``aig_and``; property
tests check, on every elaborator test design, that the
``to_netlist(from_netlist(n))`` round trip is SAT-proven equivalent and
co-simulates bit-exact against the compiled engine — both via the raised
netlist and by compiling the AIG directly — at pack widths 1, 64 and 256.
"""

import random

import pytest

from repro.netlist import (
    AIG,
    AIGError,
    GateType,
    Netlist,
    elaborate,
    from_netlist,
    to_netlist,
)
from repro.netlist.aig import FALSE, TRUE, aig_not, lit_compl, lit_node
from repro.netlist.sat import check_equivalence
from repro.netlist.sim import CompiledSim, aig_signatures, compile_netlist

from test_opt import DESIGN_IDS, DESIGNS, _random_vectors

#: The four designs named by the benchmark suite (adder / muxtree /
#: counter / alu analogues from the elaborator fixtures): one pure
#: datapath, one mux tree, one sequential counter, one shared-operand ALU.
BENCH_LIKE = [row for row in DESIGNS
              if row[0] in ("rca", "muxtree", "counter", "alu")]
BENCH_IDS = [row[0] for row in BENCH_LIKE]


# ---------------------------------------------------------------------------
# aig_and: folding + hash consing
# ---------------------------------------------------------------------------


def test_constants_and_identities_fold():
    aig = AIG()
    a = aig.add_input("a")
    assert aig.aig_and(a, FALSE) == FALSE
    assert aig.aig_and(FALSE, a) == FALSE
    assert aig.aig_and(a, TRUE) == a
    assert aig.aig_and(TRUE, a) == a
    assert aig.aig_and(a, a) == a
    assert aig.aig_and(a, aig_not(a)) == FALSE
    assert aig.num_ands == 0  # nothing above created a node


def test_hash_consing_is_commutative():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    ab = aig.aig_and(a, b)
    assert aig.aig_and(b, a) == ab
    assert aig.aig_and(a, b) == ab
    assert aig.num_ands == 1
    # Complemented operands hash separately (different function).
    nab = aig.aig_and(aig_not(a), b)
    assert nab != ab
    assert aig.num_ands == 2


def test_derived_constructors_share_structure():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    x1 = aig.aig_xor(a, b)
    x2 = aig.aig_xor(b, a)
    assert x1 == x2
    # xor == mux(a, b, ~b) structurally.
    assert aig.aig_mux(a, b, aig_not(b)) == x1
    before = aig.num_ands
    aig.aig_or(a, b)
    aig.aig_or(b, a)
    assert aig.num_ands == before + 1


def test_literal_helpers():
    assert aig_not(6) == 7 and aig_not(7) == 6
    assert lit_node(7) == 3
    assert lit_compl(7) == 1 and lit_compl(6) == 0
    assert aig_not(FALSE) == TRUE


def test_duplicate_names_and_bad_literals_rejected():
    aig = AIG()
    aig.add_input("a")
    with pytest.raises(AIGError):
        aig.add_input("a")
    aig.add_latch("q")
    with pytest.raises(AIGError):
        aig.add_latch("q")
    with pytest.raises(AIGError):
        aig.aig_and(0, 999)
    with pytest.raises(AIGError):
        aig.add_output("y", 999)
    with pytest.raises(AIGError):
        aig.set_next(0, 0)  # constant node is not a latch


def test_stats_and_levels():
    aig = AIG("t")
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    aig.add_output("y", aig.aig_and(aig.aig_and(a, b), c))
    stats = aig.stats()
    assert stats == {"inputs": 3, "outputs": 1, "ands": 2, "latches": 0,
                     "levels": 2}


# ---------------------------------------------------------------------------
# from_netlist / to_netlist
# ---------------------------------------------------------------------------


def test_interface_names_round_trip():
    netlist = Netlist("top")
    a = netlist.add_input("a")
    b = netlist.add_input("b[0]")
    q = netlist.add_dff(netlist.const0(), name="top.q")
    netlist.set_fanins(q, (netlist.make_and(a, b),))
    netlist.add_output("y", netlist.make_xor(a, q))
    rt = to_netlist(from_netlist(netlist))
    assert rt.input_names() == ["a", "b[0]"]
    assert rt.output_names() == ["y"]
    assert rt.register_map().keys() == {"top.q"}


def test_round_trip_keeps_dead_inputs():
    netlist = Netlist("top")
    netlist.add_input("used")
    netlist.add_input("dead")
    netlist.add_output("y", netlist.input_net("used"))
    rt = to_netlist(from_netlist(netlist))
    assert rt.input_names() == ["used", "dead"]


def test_constant_outputs_round_trip():
    netlist = Netlist("top")
    a = netlist.add_input("a")
    netlist.add_output("zero", netlist.make_and(a, netlist.const0()))
    netlist.add_output("one", netlist.make_or(a, netlist.const1()))
    rt = to_netlist(from_netlist(netlist))
    assert rt.gate(rt.output_net("zero")).gtype == GateType.CONST0
    assert rt.gate(rt.output_net("one")).gtype == GateType.CONST1


def test_xor_and_mux_rederived_on_raising():
    netlist = Netlist("top")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    s = netlist.add_input("s")
    netlist.add_output("x", netlist.make_xor(a, b))
    netlist.add_output("m", netlist.make_mux(s, a, b))
    rt = to_netlist(from_netlist(netlist))
    gtypes = {rt.gate(net).gtype for _, net in rt.outputs}
    assert GateType.XOR in gtypes or GateType.XNOR in gtypes
    assert GateType.MUX in gtypes
    # No AND-tree explosion: one gate per re-derived operator (a NOT may
    # appear when a complement edge cannot be absorbed).
    assert rt.num_gates <= 3


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_round_trip_is_sat_equivalent(name, source, top, params):
    netlist = elaborate(source, top=top, params=params)
    rt = to_netlist(from_netlist(netlist))
    verdict = check_equivalence(netlist, rt)
    assert verdict.equivalent, f"{name}: AIG round trip not equivalent"
    # The shared-AIG miter must prove the round trip entirely by hashing:
    # both sides canonicalize to the same nodes.
    assert verdict.hash_proven == verdict.compared


@pytest.mark.parametrize("name,source,top,params", BENCH_LIKE,
                         ids=BENCH_IDS)
@pytest.mark.parametrize("lanes", [1, 64, 256])
def test_round_trip_cosimulates_packed(name, source, top, params, lanes):
    netlist = elaborate(source, top=top, params=params)
    aig = from_netlist(netlist)
    rt = to_netlist(aig)
    cycles = 5
    sequences = [
        _random_vectors(netlist, cycles, seed=1000 * lanes + lane)
        for lane in range(lanes)
    ]
    reference = CompiledSim(netlist).run_parallel(sequences)
    # Both the raised netlist and the directly-compiled AIG must match the
    # compiled engine bit for bit, lane for lane.
    assert CompiledSim(rt).run_parallel(sequences) == reference
    assert CompiledSim(compile_netlist(aig)).run_parallel(sequences) == \
        reference


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_aig_compiles_directly(name, source, top, params):
    netlist = elaborate(source, top=top, params=params)
    aig = from_netlist(netlist)
    vectors = _random_vectors(netlist, 20, seed=99)
    assert CompiledSim(aig).run_batch(vectors) == \
        CompiledSim(netlist).run_batch(vectors)


def test_aig_signatures_match_compiled_outputs():
    netlist = elaborate("""
module m(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = (a & b) ^ (a | b);
endmodule
""", top="m")
    aig = from_netlist(netlist)
    rng = random.Random(5)
    mask = (1 << 32) - 1
    words = [rng.getrandbits(32) for _ in aig.inputs]
    sigs = aig_signatures(aig, words, [], mask)
    assert len(sigs) == aig.num_nodes
    # Signatures of the output literals must agree with the compiled
    # engine run lane by lane.
    compiled = compile_netlist(aig)
    outs, _ = compiled.run(words, [], mask)
    for (name, lit), packed in zip(aig.outputs, outs):
        expected = sigs[lit_node(lit)] ^ (mask if lit_compl(lit) else 0)
        assert packed == expected, name
