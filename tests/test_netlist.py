"""Netlist IR tests: construction, indexes, topo-order caching, simulation."""

import pytest

from repro.netlist.logic import GateType, Netlist, NetlistError, simulate


def build_xor_netlist():
    netlist = Netlist("xor2")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y = netlist.make_xor(a, b)
    netlist.add_output("y", y)
    return netlist


def test_basic_construction_and_stats():
    netlist = build_xor_netlist()
    assert netlist.num_inputs == 2
    assert netlist.num_outputs == 1
    assert netlist.num_gates == 1
    assert netlist.stats()["levels"] == 1


def test_duplicate_input_name_rejected():
    netlist = Netlist()
    netlist.add_input("a")
    with pytest.raises(NetlistError, match="duplicate primary input"):
        netlist.add_input("a")


def test_duplicate_output_name_rejected():
    netlist = build_xor_netlist()
    with pytest.raises(NetlistError, match="duplicate primary output"):
        netlist.add_output("y", netlist.inputs[0])


def test_output_net_index():
    netlist = build_xor_netlist()
    assert netlist.gate(netlist.output_net("y")).gtype == GateType.XOR
    with pytest.raises(KeyError):
        netlist.output_net("nope")


def test_input_net_index():
    netlist = build_xor_netlist()
    assert netlist.gates[netlist.input_net("a")].name == "a"
    with pytest.raises(KeyError):
        netlist.input_net("zz")


def test_fanin_count_validation():
    netlist = Netlist()
    a = netlist.add_input("a")
    with pytest.raises(NetlistError):
        netlist.add_gate(GateType.NOT, (a, a))
    with pytest.raises(NetlistError):
        netlist.add_gate(GateType.MUX, (a,))
    with pytest.raises(NetlistError):
        netlist.add_gate(GateType.AND, (a, 999))


def test_topological_order_cached_and_invalidated():
    netlist = build_xor_netlist()
    first = netlist.topological_order()
    assert netlist._topo_cache is not None
    assert netlist.topological_order() == first
    # Returned lists are copies: caller mutation must not corrupt the cache.
    first.clear()
    assert netlist.topological_order() != []
    # Structural changes invalidate.
    netlist.make_not(netlist.inputs[0])
    assert netlist._topo_cache is None
    assert len(netlist.topological_order()) == len(netlist.gates)


def test_set_fanins_patches_and_invalidates():
    netlist = Netlist()
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    gate = netlist.add_gate(GateType.BUF, (a,))
    netlist.add_output("y", gate)
    netlist.topological_order()
    netlist.set_fanins(gate, (b,))
    assert netlist._topo_cache is None
    out, _ = simulate(netlist, {"a": 0, "b": 1})
    assert out["y"] == 1
    with pytest.raises(NetlistError):
        netlist.set_fanins(gate, (a, b))
    with pytest.raises(NetlistError):
        netlist.set_fanins(9999, (a,))


def test_combinational_cycle_detected():
    netlist = Netlist()
    a = netlist.add_input("a")
    g1 = netlist.add_gate(GateType.BUF, (a,))
    g2 = netlist.add_gate(GateType.AND, (a, g1))
    netlist.set_fanins(g1, (g2,))
    with pytest.raises(NetlistError, match="cycle"):
        netlist.topological_order()


def test_simulate_all_gate_types():
    netlist = Netlist()
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    s = netlist.add_input("s")
    netlist.add_output("and", netlist.make_and(a, b))
    netlist.add_output("or", netlist.make_or(a, b))
    netlist.add_output("xor", netlist.make_xor(a, b))
    netlist.add_output("nand", netlist.add_gate(GateType.NAND, (a, b)))
    netlist.add_output("nor", netlist.add_gate(GateType.NOR, (a, b)))
    netlist.add_output("xnor", netlist.add_gate(GateType.XNOR, (a, b)))
    netlist.add_output("not", netlist.make_not(a))
    netlist.add_output("mux", netlist.make_mux(s, a, b))
    for a_val in (0, 1):
        for b_val in (0, 1):
            for s_val in (0, 1):
                out, _ = simulate(netlist,
                                  {"a": a_val, "b": b_val, "s": s_val})
                assert out["and"] == (a_val & b_val)
                assert out["or"] == (a_val | b_val)
                assert out["xor"] == (a_val ^ b_val)
                assert out["nand"] == 1 - (a_val & b_val)
                assert out["nor"] == 1 - (a_val | b_val)
                assert out["xnor"] == 1 - (a_val ^ b_val)
                assert out["not"] == 1 - a_val
                assert out["mux"] == (b_val if s_val else a_val)


def test_simulate_with_precomputed_order():
    netlist = build_xor_netlist()
    order = netlist.topological_order()
    out, _ = simulate(netlist, {"a": 1, "b": 0}, order=order)
    assert out["y"] == 1


def test_simulate_missing_input_raises():
    netlist = build_xor_netlist()
    with pytest.raises(NetlistError, match="missing value"):
        simulate(netlist, {"a": 1})


def test_dff_state_progression():
    netlist = Netlist()
    d = netlist.add_input("d")
    q = netlist.add_dff(d, name="q")
    netlist.add_output("q", q)
    out, state = simulate(netlist, {"d": 1})
    assert out["q"] == 0          # registers power up at zero
    out, state = simulate(netlist, {"d": 0}, state)
    assert out["q"] == 1          # captured the previous cycle's d
    out, state = simulate(netlist, {"d": 0}, state)
    assert out["q"] == 0
