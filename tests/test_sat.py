"""Tests for the SAT subsystem (repro.netlist.sat): CNF encoding, the CDCL
solver, and miter-based equivalence checking with counterexample replay."""

import itertools
import random

import pytest

from repro.netlist import (
    AIG,
    GateType,
    Interpreter,
    InterpreterError,
    Netlist,
    elaborate,
    simulate,
)
from repro.netlist.aig import aig_not
from repro.netlist.opt import optimize
from repro.netlist.sat import (
    CECError,
    CNF,
    Solver,
    aig_lit_sat,
    check_equivalence,
    encode_aig_cone,
    encode_cone,
    solve,
)

from test_elaborate import ALU

# ---------------------------------------------------------------------------
# CNF / Tseitin encoding
# ---------------------------------------------------------------------------

_GATE_CASES = [
    (GateType.BUF, 1), (GateType.NOT, 1),
    (GateType.AND, 2), (GateType.AND, 3),
    (GateType.NAND, 2), (GateType.NAND, 3),
    (GateType.OR, 2), (GateType.OR, 3),
    (GateType.NOR, 2), (GateType.NOR, 3),
    (GateType.XOR, 2), (GateType.XOR, 3),
    (GateType.XNOR, 2), (GateType.XNOR, 3),
    (GateType.MUX, 3),
]


@pytest.mark.parametrize("gtype,arity", _GATE_CASES,
                         ids=[f"{g.value}{n}" for g, n in _GATE_CASES])
def test_gate_encoding_matches_simulator(gtype, arity):
    """Exhaustive truth-table check: the CNF of one gate admits exactly the
    assignments the bit-level simulator produces."""
    netlist = Netlist("g")
    inputs = [netlist.add_input(f"i{k}") for k in range(arity)]
    out = netlist.add_gate(gtype, inputs)
    netlist.add_output("y", out)

    for assignment in itertools.product((0, 1), repeat=arity):
        expected, _ = simulate(
            netlist, {f"i{k}": v for k, v in enumerate(assignment)})
        cnf = CNF()
        var_map = encode_cone(cnf, netlist, [out])
        units = [
            (var_map[gid] if value else -var_map[gid],)
            for gid, value in zip(inputs, assignment)
        ]
        # Forcing the correct output value must be satisfiable...
        y = var_map[out]
        ok = solve(cnf.num_vars,
                   cnf.clauses + units + [(y if expected["y"] else -y,)])
        assert ok.satisfiable
        # ...and forcing the wrong one must not.
        bad = solve(cnf.num_vars,
                    cnf.clauses + units + [(-y if expected["y"] else y,)])
        assert not bad.satisfiable


def test_encode_cone_shares_leaves_between_calls():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    y = netlist.make_not(a)
    netlist.add_output("y", y)
    cnf = CNF()
    shared = cnf.new_var()
    m1 = encode_cone(cnf, netlist, [y], lambda gate: shared)
    m2 = encode_cone(cnf, netlist, [y], lambda gate: shared)
    assert m1[a] == m2[a] == shared
    # The two encodings of NOT(a) over the same leaf must agree:
    diff = solve(cnf.num_vars, cnf.clauses + [(m1[y], m2[y]),
                                              (-m1[y], -m2[y])])
    assert not diff.satisfiable


def test_cnf_rejects_unknown_literals():
    cnf = CNF()
    cnf.new_var()
    with pytest.raises(ValueError):
        cnf.add_clause(2)
    with pytest.raises(ValueError):
        cnf.add_clause(0)


# ---------------------------------------------------------------------------
# CDCL solver
# ---------------------------------------------------------------------------


def test_solver_trivial_cases():
    assert solve(0, []).satisfiable
    assert not solve(0, [()]).satisfiable  # empty clause
    assert solve(1, [(1,)]).model == {1: True}
    assert not solve(1, [(1,), (-1,)]).satisfiable
    assert solve(2, [(1, -1)]).satisfiable  # tautology dropped


def test_solver_implication_chain():
    clauses = [(1,)] + [(-i, i + 1) for i in range(1, 50)]
    result = solve(50, clauses)
    assert result.satisfiable
    assert all(result.model[v] for v in range(1, 51))


def _pigeonhole(pigeons, holes):
    def var(p, h):
        return p * holes + h + 1
    clauses = [tuple(var(p, h) for h in range(holes))
               for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-var(p1, h), -var(p2, h)))
    return pigeons * holes, clauses


def test_solver_pigeonhole_unsat():
    """PHP forces real conflict analysis, learning and backjumping."""
    for pigeons in (3, 4, 5):
        num_vars, clauses = _pigeonhole(pigeons, pigeons - 1)
        result = solve(num_vars, clauses)
        assert not result.satisfiable
        assert result.stats.conflicts > 0
        assert result.stats.learned_clauses > 0


def test_solver_pigeonhole_sat_when_holes_suffice():
    num_vars, clauses = _pigeonhole(4, 4)
    result = solve(num_vars, clauses)
    assert result.satisfiable


def _eval_clauses(clauses, model):
    return all(
        any(model[abs(lit)] == (lit > 0) for lit in clause)
        for clause in clauses
    )


def test_solver_randomized_against_brute_force():
    rng = random.Random(7)
    for _ in range(30):
        num_vars = rng.randint(4, 9)
        clauses = [
            tuple(
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), 3)
            )
            for _ in range(rng.randint(5, 4 * num_vars))
        ]
        result = solve(num_vars, clauses)
        brute = any(
            _eval_clauses(clauses,
                          dict(enumerate(bits, start=1)))
            for bits in itertools.product((False, True), repeat=num_vars)
        )
        assert result.satisfiable == brute
        if result.satisfiable:
            assert _eval_clauses(clauses, result.model)


# ---------------------------------------------------------------------------
# Equivalence checking
# ---------------------------------------------------------------------------

COUNTER = """
module counter #(parameter W = 4) (
  input clk, input rst, input en,
  output reg [W-1:0] q, output wrap
);
  assign wrap = q == {W{1'b1}};
  always @(posedge clk) begin
    if (rst) q <= 0;
    else if (en) q <= q + 1;
  end
endmodule
"""


def test_identical_netlists_are_equivalent():
    a = elaborate(COUNTER, top="counter")
    b = elaborate(COUNTER, top="counter")
    verdict = check_equivalence(a, b)
    assert verdict.equivalent
    assert verdict.counterexample is None
    assert verdict.compared == a.num_outputs + a.num_registers


def test_inequivalent_combinational_netlists_refuted():
    before = elaborate(
        "module m(input a, input b, output y); assign y = a & b; endmodule")
    after = elaborate(
        "module m(input a, input b, output y); assign y = a | b; endmodule")
    verdict = check_equivalence(before, after)
    assert not verdict.equivalent
    cex = verdict.counterexample
    assert cex is not None and cex.diff
    kind, name, b_val, a_val = cex.diff[0]
    assert (kind, name) == ("output", "y")
    assert b_val != a_val
    # The counterexample must actually distinguish: exactly one input set.
    assert sorted(cex.inputs) == ["a", "b"]
    assert sum(cex.inputs.values()) == 1


def test_corrupted_next_state_function_refuted():
    before = elaborate(COUNTER, top="counter")
    after = elaborate(COUNTER, top="counter")
    regs = after.register_map()
    name, gid = sorted(regs.items())[0]
    data = after.gates[gid].fanins[0]
    after.set_fanins(gid, (after.make_not(data),))
    verdict = check_equivalence(before, after)
    assert not verdict.equivalent
    assert any(kind == "next_state" for kind, *_ in
               verdict.counterexample.diff)


def test_interface_mismatch_raises():
    a = elaborate("module m(input x, output y); assign y = x; endmodule")
    b = elaborate("module m(input z, output y); assign y = z; endmodule")
    with pytest.raises(CECError, match="primary inputs differ"):
        check_equivalence(a, b)
    c = elaborate("module m(input x, output w); assign w = x; endmodule")
    with pytest.raises(CECError, match="primary outputs differ"):
        check_equivalence(a, c)


def test_swept_dead_register_still_equivalent():
    source = """
    module m(input clk, input d, output y);
      reg live, dead;
      always @(posedge clk) begin
        live <= d;
        dead <= ~d;
      end
      assign y = live;
    endmodule
    """
    before = elaborate(source, top="m")
    after = optimize(before).netlist
    assert after.num_registers < before.num_registers
    assert check_equivalence(before, after).equivalent


def test_counterexample_replays_on_interpreter_oracle():
    """A refutation can be replayed word-level on the vector interpreter."""
    before = elaborate(COUNTER, top="counter")
    broken = optimize(before).netlist
    name, net = broken.outputs[0]
    assert name == "q[0]"
    broken.outputs[0] = (name, broken.make_not(net))
    verdict = check_equivalence(before, broken)
    assert not verdict.equivalent
    cex = verdict.counterexample

    interp = Interpreter(COUNTER, top="counter")
    interp.load_state(cex.packed_state())
    outputs = interp.step(cex.packed_inputs())
    # The interpreter (ground truth) agrees with the original netlist on
    # every differing output bit, not with the broken one.
    for kind, bit_name, before_val, _ in cex.diff:
        if kind != "output":
            continue
        base, _, index = bit_name.partition("[")
        index = int(index.rstrip("]")) if index else 0
        assert (outputs[base] >> index) & 1 == before_val


def test_interpreter_state_injection_validates():
    interp = Interpreter(COUNTER, top="counter")
    with pytest.raises(InterpreterError, match="does not name a register"):
        interp.load_state({"counter.bogus": 1})
    with pytest.raises(InterpreterError, match="does not fit"):
        interp.load_state({"counter.q": 16})
    interp.load_state({"counter.q": 9})
    assert interp.flat_state() == {"counter.q": 9}
    assert interp.step({"clk": 0, "rst": 0, "en": 1}) == {"q": 9, "wrap": 0}
    assert interp.flat_state() == {"counter.q": 10}


def test_solver_stats_surface_through_equivalence_result():
    before = elaborate(COUNTER, top="counter")
    after = optimize(before).netlist
    # The gate-level encoding always goes through the solver.
    verdict = check_equivalence(before, after, encoding="gate")
    assert verdict.equivalent
    assert verdict.encoding == "gate"
    stats = verdict.solver_stats.to_dict()
    assert stats["propagations"] > 0
    assert verdict.encode_seconds > 0
    assert verdict.solve_seconds > 0
    assert verdict.cnf_clauses > 0
    # The AIG miter proves what it can by hashing; whatever reaches the
    # solver is a strictly smaller CNF.
    aig_verdict = check_equivalence(before, after)
    assert aig_verdict.equivalent
    assert aig_verdict.encoding == "aig"
    assert 0 <= aig_verdict.hash_proven <= aig_verdict.compared
    assert aig_verdict.cnf_clauses < verdict.cnf_clauses


def test_encode_cone_var_map_reuse_skips_shared_cones():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    shared = netlist.make_and(a, b)
    y = netlist.make_not(shared)
    z = netlist.make_xor(shared, a)
    netlist.add_output("y", y)
    netlist.add_output("z", z)
    cnf = CNF()
    var_map = encode_cone(cnf, netlist, [y])
    clauses_after_first = len(cnf.clauses)
    shared_var = var_map[shared]
    # Second call over a root sharing the AND cone: only XOR clauses added,
    # and the shared gate keeps its variable.
    encode_cone(cnf, netlist, [z], var_map=var_map)
    assert var_map[shared] == shared_var
    assert len(cnf.clauses) == clauses_after_first + 4  # binary XOR only


def test_miter_of_gate_free_design():
    src = "module w(input [3:0] a, output [3:0] y); assign y = a; endmodule"
    a = elaborate(src)
    b = elaborate(src)
    assert check_equivalence(a, b).equivalent


# ---------------------------------------------------------------------------
# AIG-native encoding and miter
# ---------------------------------------------------------------------------


def _and_xor_netlist(swap=False):
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    ab = netlist.make_and(b, a) if swap else netlist.make_and(a, b)
    netlist.add_output("y", netlist.make_xor(ab, c))
    return netlist


def test_encode_aig_cone_three_clauses_per_node():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    root = aig.aig_and(aig.aig_and(a, b), c)
    cnf = CNF()
    var_map = encode_aig_cone(cnf, aig, [root])
    # 3 leaf vars + 2 AND nodes at 3 clauses each.
    assert cnf.num_vars == 5
    assert len(cnf.clauses) == 6
    # Complemented edges are pure literal negation: no extra clauses.
    assert aig_lit_sat(var_map, root ^ 1) == -aig_lit_sat(var_map, root)


def test_encode_aig_cone_var_map_reuse():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    shared = aig.aig_and(a, b)
    other = aig.aig_and(shared, aig_not(a))
    cnf = CNF()
    var_map = encode_aig_cone(cnf, aig, [shared])
    clauses_first = len(cnf.clauses)
    encode_aig_cone(cnf, aig, [other], var_map=var_map)
    # Only the new node's three clauses were appended.
    assert len(cnf.clauses) == clauses_first + 3


def test_aig_miter_hash_proves_commuted_operands():
    before = _and_xor_netlist(swap=False)
    after = _and_xor_netlist(swap=True)
    verdict = check_equivalence(before, after)
    assert verdict.equivalent
    assert verdict.hash_proven == verdict.compared == 1
    assert verdict.cnf_clauses == 0
    assert verdict.solve_seconds == 0.0


def test_aig_and_gate_encodings_agree_on_refutation():
    good = elaborate(ALU, top="alu")
    bad = elaborate(ALU.replace("a ^ b", "a ^ ~b"), top="alu")
    for encoding in ("aig", "gate"):
        verdict = check_equivalence(good, bad, encoding=encoding)
        assert not verdict.equivalent
        assert verdict.counterexample is not None
        assert verdict.counterexample.diff  # replay confirmed it
        assert verdict.encoding == encoding


def test_aig_miter_cnf_smaller_than_gate_miter():
    before = elaborate(ALU, top="alu")
    after = elaborate(ALU, top="alu")
    # Perturb `after` so the miter actually reaches the solver: re-express
    # one output bit through an inverter pair the AIG folds away.
    net = after.output_net("y[0]")
    doubled = after.make_not(after.make_not(net))
    after.outputs[after.output_names().index("y[0]")] = ("y[0]", doubled)
    after._output_index["y[0]"] = doubled
    gate = check_equivalence(before, after, encoding="gate")
    aig = check_equivalence(before, after, encoding="aig")
    assert gate.equivalent and aig.equivalent
    assert aig.cnf_clauses < gate.cnf_clauses


def test_unknown_encoding_rejected():
    netlist = _and_xor_netlist()
    with pytest.raises(ValueError, match="'aig', 'gate'"):
        check_equivalence(netlist, netlist, encoding="bdd")


# ---------------------------------------------------------------------------
# Incremental solver: assumptions, added clauses, reuse
# ---------------------------------------------------------------------------


def test_solver_assumptions_do_not_commit_the_instance():
    # (x | y) is satisfiable, UNSAT under (-x, -y), satisfiable again.
    solver = Solver(2, [(1, 2)])
    assert solver.solve(assumptions=(-1, -2)).satisfiable is False
    result = solver.solve()
    assert result.satisfiable
    assert result.model[1] or result.model[2]
    # Assumptions appear in the model when satisfiable with them.
    result = solver.solve(assumptions=(-1,))
    assert result.satisfiable
    assert result.model[1] is False and result.model[2] is True


def test_solver_incremental_clause_addition():
    solver = Solver(2, [(1, 2)])
    assert solver.solve().satisfiable
    solver.add_clause((-1,))
    assert solver.solve().satisfiable
    solver.add_clause((-2,))
    assert not solver.solve().satisfiable
    # Once the clause set itself is UNSAT, it stays UNSAT.
    assert not solver.solve().satisfiable


def test_solver_ensure_vars_extends_universe():
    solver = Solver(1, [(1,)])
    solver.ensure_vars(3)
    solver.add_clause((-2, 3))
    solver.add_clause((2,))
    result = solver.solve()
    assert result.satisfiable
    assert result.model[2] and result.model[3]
    with pytest.raises(ValueError):
        solver.add_clause((4,))
    with pytest.raises(ValueError):
        solver.solve(assumptions=(4,))


def test_solver_assumption_gated_miters():
    # Two selector-gated contradictions over one shared instance: each
    # selector is UNSAT alone, the instance stays reusable throughout —
    # the FRAIG query pattern.
    solver = Solver(3, [(1,)])
    solver.ensure_vars(4)
    solver.add_clause((-3, -1))        # t1 -> ~x
    solver.add_clause((-4, 1))         # t2 -> x (consistent)
    assert not solver.solve(assumptions=(3,)).satisfiable
    assert solver.solve(assumptions=(4,)).satisfiable
    assert not solver.solve(assumptions=(3,)).satisfiable
    assert solver.solve().satisfiable


# ---------------------------------------------------------------------------
# Solver-factory parity: the reference engine through the same workloads
# ---------------------------------------------------------------------------


def test_check_equivalence_accepts_a_solver_factory():
    from repro.netlist.sat import ReferenceSolver

    netlist = elaborate(ALU, top="alu")
    optimized = optimize(netlist).netlist
    production = check_equivalence(netlist, optimized, encoding="gate")
    reference = check_equivalence(netlist, optimized, encoding="gate",
                                  solver_factory=ReferenceSolver)
    assert production.equivalent and reference.equivalent
    # Both engines really solved (the gate encoding cannot hash-prove).
    assert production.solver_stats.propagations > 0
    assert reference.solver_stats.propagations > 0


def test_solver_factories_agree_on_a_refutation():
    from repro.netlist.sat import ReferenceSolver

    source = """
module tiny(input a, input b, output y);
  assign y = a & b;
endmodule
"""
    broken = """
module tiny(input a, input b, output y);
  assign y = a | b;
endmodule
"""
    before = elaborate(source, top="tiny")
    after = elaborate(broken, top="tiny")
    for factory in (Solver, ReferenceSolver):
        verdict = check_equivalence(before, after, solver_factory=factory)
        assert not verdict.equivalent
        assert verdict.counterexample is not None
        assert verdict.counterexample.diff


def test_fraig_sweep_accepts_a_solver_factory():
    from repro.netlist import from_netlist, to_netlist
    from repro.netlist.opt import fraig_sweep
    from repro.netlist.sat import ReferenceSolver

    netlist = elaborate(ALU, top="alu")
    for factory in (Solver, ReferenceSolver):
        swept = to_netlist(fraig_sweep(from_netlist(netlist), patterns=8,
                                       solver_factory=factory))
        assert check_equivalence(netlist, swept).equivalent


# ---------------------------------------------------------------------------
# Structure-aware AIG encoding: XOR / MUX / MAJ pattern matching
# ---------------------------------------------------------------------------


def _xor_cone(aig, a, b):
    # a ^ b == ~(~(a & ~b) & ~(~a & b))
    t0 = aig.aig_and(a, aig_not(b))
    t1 = aig.aig_and(aig_not(a), b)
    return aig_not(aig.aig_and(aig_not(t0), aig_not(t1)))


def _mux_cone(aig, s, t, e):
    # s ? t : e == ~(~(s & t) & ~(~s & e))
    return aig_not(aig.aig_and(aig_not(aig.aig_and(s, t)),
                               aig_not(aig.aig_and(aig_not(s), e))))


def _maj_cone(aig, a, b, c):
    # MAJ(a, b, c) == (a&b) | (a&c) | (b&c), OR tree by De Morgan.
    ab = aig.aig_and(a, b)
    ac = aig.aig_and(a, c)
    bc = aig.aig_and(b, c)
    return aig_not(aig.aig_and(aig.aig_and(aig_not(ab), aig_not(ac)),
                               aig_not(bc)))


_STRUCTURAL_CASES = [
    ("xor", _xor_cone, 2, lambda a, b: a ^ b),
    ("mux", _mux_cone, 3, lambda s, t, e: t if s else e),
    ("maj", _maj_cone, 3, lambda a, b, c: (a + b + c) >= 2),
]


@pytest.mark.parametrize("name,build,arity,truth", _STRUCTURAL_CASES,
                         ids=[c[0] for c in _STRUCTURAL_CASES])
def test_structural_aig_encoding_matches_truth_table(name, build, arity,
                                                     truth):
    """Exhaustive check that the pattern-matched compact encodings admit
    exactly the assignments the boolean function does, and that they are
    smaller than plain Tseitin over the same cone."""
    for structural in (False, True):
        aig = AIG()
        ins = [aig.add_input(f"i{k}") for k in range(arity)]
        root = build(aig, *ins)
        cnf = CNF()
        var_map = encode_aig_cone(cnf, aig, [root], structural=structural)
        if structural:
            structural_clauses = len(cnf.clauses)
        else:
            plain_clauses = len(cnf.clauses)
        root_lit = aig_lit_sat(var_map, root)
        for bits in itertools.product((False, True), repeat=arity):
            assume = [aig_lit_sat(var_map, lit) * (1 if val else -1)
                      for lit, val in zip(ins, bits)]
            expected = bool(truth(*bits))
            solver = Solver(cnf.num_vars, cnf.clauses)
            good = solver.solve(
                assumptions=assume + [root_lit if expected else -root_lit])
            assert good.satisfiable, (name, structural, bits)
            bad = solver.solve(
                assumptions=assume + [-root_lit if expected else root_lit])
            assert not bad.satisfiable, (name, structural, bits)
    assert structural_clauses < plain_clauses, name


def test_structural_encoding_verdict_parity_on_alu():
    """The compact encodings must not change any verdict: the ALU against
    its optimized self, with and without structural matching."""
    netlist = elaborate(ALU, top="alu")
    optimized = optimize(netlist).netlist
    for structural in (False, True):
        verdict = check_equivalence(netlist, optimized,
                                    structural=structural)
        assert verdict.equivalent, f"structural={structural}"


# ---------------------------------------------------------------------------
# Simulation refutation + miter sweeping stages of check_equivalence
# ---------------------------------------------------------------------------


def test_broken_design_refuted_by_simulation_without_search():
    """An always-wrong design must fall to the packed-simulation check:
    zero solver conflicts, a replay-confirmed counterexample."""
    good = """
module add(input [7:0] a, input [7:0] b, output [8:0] s);
  assign s = a + b;
endmodule
"""
    bad = """
module add(input [7:0] a, input [7:0] b, output [8:0] s);
  assign s = a + b + 1;
endmodule
"""
    verdict = check_equivalence(elaborate(good, top="add"),
                                elaborate(bad, top="add"))
    assert not verdict.equivalent
    assert verdict.refuted_by_simulation
    assert verdict.solver_stats.conflicts == 0
    assert verdict.counterexample is not None
    assert verdict.counterexample.diff  # replay confirmed it


def test_forced_sweep_is_certified():
    """sweep=True routes root pairs through the in-miter FRAIG sweep; with
    certify=True every merge proof is RUP-checked, and the verdict must
    still be clean."""
    netlist = elaborate(ALU, top="alu")
    optimized = optimize(netlist).netlist
    verdict = check_equivalence(netlist, optimized, sweep=True,
                                certify=True)
    assert verdict.equivalent
    # Everything either hash-proved, sweep-proved, or solver-proved; any
    # UNSAT evidence that existed was checked.
    if verdict.proof_checked is not None:
        assert verdict.proof_checked is True
    assert verdict.hash_proven + verdict.sweep_proven + verdict.compared > 0


def test_sweep_auto_skips_sparse_miters():
    """The density heuristic must leave small cross-implementation miters
    alone (sweep='auto' is the default): verdicts agree with sweep=True
    and sweep=False on a genuinely differing multiplier pair."""
    array = """
module mult(input [2:0] a, input [2:0] b, output [5:0] p);
  assign p = a * b;
endmodule
"""
    shift = """
module mult(input [2:0] a, input [2:0] b, output [5:0] p);
  assign p = (b[0] ? {3'b000, a} : 6'b000000)
           + (b[1] ? {2'b00, a, 1'b0} : 6'b000000)
           + (b[2] ? {1'b0, a, 2'b00} : 6'b000000);
endmodule
"""
    before = elaborate(array, top="mult")
    after = elaborate(shift, top="mult")
    for sweep in ("auto", True, False):
        verdict = check_equivalence(before, after, sweep=sweep)
        assert verdict.equivalent, f"sweep={sweep}"
