"""Tests for the CNF preprocessor (repro.netlist.sat.preprocess):
equisatisfiability against a brute-force oracle, model reconstruction
through variable elimination, frozen-variable protection, and DRAT
certification of preprocessed (and vivified) UNSAT proofs."""

import itertools
import random

from repro.netlist import elaborate
from repro.netlist.sat import (
    CNF,
    ProofLog,
    Solver,
    check_drat,
    check_equivalence,
    preprocess,
)

from test_sat import _pigeonhole


def _brute_force_model(num_vars, clauses):
    """Smallest-index-first exhaustive SAT oracle (<= 16 vars)."""
    assert num_vars <= 16
    for bits in itertools.product((False, True), repeat=num_vars):
        model = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(any((lit > 0) == model[abs(lit)] for lit in clause)
               for clause in clauses):
            return model
    return None


def _satisfies(clauses, model):
    return all(any((lit > 0) == model[abs(lit)] for lit in clause)
               for clause in clauses)


def _random_cnf(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 4)
        vs = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in vs))
    return clauses


def test_preprocess_equisatisfiable_against_brute_force():
    """Random formulas: preprocessing preserves satisfiability, and a
    model of the simplified formula reconstructs to a model of the
    original."""
    rng = random.Random(2022)
    for trial in range(120):
        num_vars = rng.randint(4, 9)
        clauses = _random_cnf(rng, num_vars, rng.randint(num_vars,
                                                         3 * num_vars))
        original = _brute_force_model(num_vars, clauses)
        pre = preprocess(num_vars, clauses)
        if pre.unsat:
            assert original is None, f"trial {trial}: wrongly unsat"
            continue
        simplified = _brute_force_model(num_vars, pre.clauses)
        assert (simplified is None) == (original is None), \
            f"trial {trial}: verdict changed"
        if simplified is not None:
            full = pre.reconstruct(simplified)
            assert _satisfies(clauses, full), \
                f"trial {trial}: reconstructed model violates original"


def test_preprocess_solver_models_reconstruct():
    """End to end with the real solver on the simplified clauses."""
    rng = random.Random(7)
    for trial in range(60):
        num_vars = rng.randint(6, 12)
        clauses = _random_cnf(rng, num_vars, 2 * num_vars)
        pre = preprocess(num_vars, clauses)
        if pre.unsat:
            assert _brute_force_model(num_vars, clauses) is None
            continue
        result = Solver(num_vars, pre.clauses).solve()
        if result.satisfiable:
            full = pre.reconstruct(result.model)
            assert _satisfies(clauses, full)
        else:
            assert _brute_force_model(num_vars, clauses) is None


def test_preprocess_respects_frozen_variables():
    rng = random.Random(11)
    for _ in range(40):
        num_vars = rng.randint(5, 10)
        clauses = _random_cnf(rng, num_vars, 2 * num_vars)
        frozen = set(rng.sample(range(1, num_vars + 1), 3))
        pre = preprocess(num_vars, clauses, frozen=frozen)
        eliminated = {var for var, _ in pre._elim_stack}
        assert not (eliminated & frozen)


def test_preprocess_derives_unsat_alone():
    # Unit propagation closes this without any search.
    pre = preprocess(2, [(1,), (-1, 2), (-2,)])
    assert pre.unsat
    assert () in pre.clauses


def test_preprocessed_pigeonhole_proof_certifies():
    """The classic satellite: preprocess a pigeonhole formula, solve the
    residue, and RUP-check the combined DRAT log against the *original*
    formula — subsumption deletions, strengthenings, and BVE resolvents
    must all check without RAT support."""
    for holes in (3, 4):
        num_vars, clauses = _pigeonhole(holes + 1, holes)
        proof = ProofLog()
        pre = preprocess(num_vars, clauses, proof=proof)
        assert not pre.unsat
        solver = Solver(num_vars, pre.clauses)
        solver.set_proof(proof)
        result = solver.solve()
        assert not result.satisfiable
        cnf = CNF()
        for _ in range(num_vars):
            cnf.new_var()
        for clause in clauses:
            cnf.add_clause(*clause)
        verdict = check_drat(cnf, proof)
        assert verdict.ok, f"php({holes + 1},{holes}): {verdict}"


def test_vivification_steps_stay_rup_checkable():
    """Force heavy clause-database reduction so the in-search vivifier
    runs, then verify every emitted DRAT step (verify_all) so the
    vivification adds/deletes themselves are checked, not just the
    final conflict."""
    num_vars, clauses = _pigeonhole(6, 5)
    proof = ProofLog()
    solver = Solver(num_vars, clauses)
    solver.set_proof(proof)
    solver.max_learnts = 12  # force frequent reductions -> vivification
    result = solver.solve()
    assert not result.satisfiable
    assert solver.stats.vivified > 0, "vivifier never fired"
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(*clause)
    verdict = check_drat(cnf, proof, verify_all=True)
    assert verdict.ok, str(verdict)


_NEEDLE_MULT = """
module mult (input [3:0] a, input [3:0] b, output [7:0] p);
  assign p = a * b + ((a == 5) & (b == 7));
endmodule
"""

_PLAIN_MULT = """
module mult (input [3:0] a, input [3:0] b, output [7:0] p);
  assign p = a * b;
endmodule
"""


def test_counterexample_reconstructs_through_preprocessing():
    """A single-assignment bug (a=5, b=7) with the simulation check
    disabled forces the solver + BVE path: the model of the simplified
    CNF must reconstruct, replay, and name the needle exactly."""
    before = elaborate(_PLAIN_MULT, top="mult")
    after = elaborate(_NEEDLE_MULT, top="mult")
    verdict = check_equivalence(before, after, sim_patterns=0)
    assert not verdict.equivalent
    assert not verdict.refuted_by_simulation
    assert verdict.preprocessor is not None
    cex = verdict.counterexample
    assert cex is not None and cex.diff
    assert cex.packed_inputs() == {"a": 5, "b": 7}


def test_no_preprocess_escape_hatch():
    before = elaborate(_PLAIN_MULT, top="mult")
    after = elaborate(_NEEDLE_MULT, top="mult")
    verdict = check_equivalence(before, after, sim_patterns=0,
                                preprocess=False)
    assert not verdict.equivalent
    assert verdict.preprocessor is None
    assert verdict.counterexample.packed_inputs() == {"a": 5, "b": 7}
