"""Tests for the optimization pass pipeline (repro.netlist.opt).

Every pass — and the full default pipeline — is verified on all the
elaborator test designs twice over: formally, by the SAT-based miter
(``check_equivalence`` must return UNSAT-proven equivalence), and
dynamically, by randomized co-simulation of the optimized netlist against
both the unoptimized netlist and the independent vector interpreter.
"""

import random

import pytest

from repro.netlist import (
    Interpreter,
    Netlist,
    GateType,
    elaborate,
    simulate_sequence,
)
from repro.netlist.opt import (
    BalancePass,
    ConstPropPass,
    DEFAULT_PIPELINE,
    FraigPass,
    OptimizationError,
    PASS_REGISTRY,
    PassManager,
    SimplifyPass,
    StrashPass,
    SweepPass,
    live_set,
    optimize,
)
from repro.netlist.sat import check_equivalence

from test_elaborate import (
    ALU,
    COUNTER,
    FORLOOP,
    FSM,
    MUXTREE,
    RCA,
    SHIFTER,
    SHIFTREG,
)

#: (name, source, top, params) — every design the elaborator suite exercises.
DESIGNS = [
    ("rca", RCA, "rca", None),
    ("alu", ALU, "alu", None),
    ("alu_w8", ALU, "alu", {"W": 8}),
    ("counter", COUNTER, "counter", None),
    ("fsm", FSM, "fsm", None),
    ("muxtree", MUXTREE, "muxtree", None),
    ("shifter", SHIFTER, "shifty", None),
    ("forloop", FORLOOP, "rev", None),
    ("shiftreg", SHIFTREG, "shiftreg", None),
]

DESIGN_IDS = [row[0] for row in DESIGNS]


def _word_widths(netlist):
    widths = {}
    for name in netlist.input_names():
        widths[name.split("[")[0]] = widths.get(name.split("[")[0], 0) + 1
    return widths


def _random_vectors(netlist, cycles, seed):
    rng = random.Random(seed)
    widths = _word_widths(netlist)
    return [
        {name: rng.getrandbits(width) for name, width in widths.items()}
        for _ in range(cycles)
    ]


def _assert_equivalent(before, after):
    verdict = check_equivalence(before, after)
    assert verdict.equivalent, (
        f"miter SAT: {verdict.counterexample.diff}"
    )


# ---------------------------------------------------------------------------
# Full pipeline, all designs, both oracles
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_pipeline_sat_equivalence(name, source, top, params):
    netlist = elaborate(source, top=top, params=params)
    result = optimize(netlist)
    assert result.gates_after <= result.gates_before
    assert result.levels_after <= result.levels_before
    _assert_equivalent(netlist, result.netlist)


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_pipeline_randomized_cosim(name, source, top, params):
    """Optimized netlist (compiled engine) vs the original netlist run by
    the per-gate interpreter, which stays on as the cross-check oracle."""
    netlist = elaborate(source, top=top, params=params)
    optimized = optimize(netlist).netlist
    vectors = _random_vectors(netlist, 64, seed=hash(name) & 0xFFFF)
    assert simulate_sequence(optimized, vectors) == \
        simulate_sequence(netlist, vectors, engine="interp")


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_pipeline_against_interpreter_oracle(name, source, top, params):
    """The optimized netlist must still match the independent interpreter."""
    optimized = elaborate(source, top=top, params=params, optimize=True)
    interp = Interpreter(source, top=top, params=params)
    vectors = _random_vectors(optimized, 32, seed=len(name))
    assert simulate_sequence(optimized, vectors) == interp.run(vectors)


@pytest.mark.parametrize("pass_name", sorted(PASS_REGISTRY))
@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_each_pass_individually_verified(name, source, top, params,
                                         pass_name):
    """Every single pass alone must preserve every design (SAT-proven)."""
    netlist = elaborate(source, top=top, params=params)
    transformed = PASS_REGISTRY[pass_name]().run(netlist)
    _assert_equivalent(netlist, transformed)


# ---------------------------------------------------------------------------
# Targeted per-pass unit tests
# ---------------------------------------------------------------------------


def test_constprop_folds_dominating_constants():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    dead = netlist.make_and(a, netlist.const0())
    keep = netlist.make_or(dead, a)
    netlist.add_output("y", keep)
    out = ConstPropPass().run(netlist)
    # AND(a, 0) -> 0, OR(0, a) -> a: no combinational gates survive.
    assert out.num_gates == 0
    assert out.output_net("y") == out.input_net("a")


def test_constprop_folds_mux_with_constant_select():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    m = netlist.make_mux(netlist.const1(), a, b)
    netlist.add_output("y", m)
    out = ConstPropPass().run(netlist)
    assert out.num_gates == 0
    assert out.output_net("y") == out.input_net("b")


def test_constprop_strength_reduces_mux_with_constant_data():
    netlist = Netlist("t")
    s = netlist.add_input("s")
    a = netlist.add_input("a")
    m = netlist.make_mux(s, netlist.const0(), a)  # s ? a : 0  ==  s & a
    netlist.add_output("y", m)
    out = ConstPropPass().run(netlist)
    [gate] = [g for g in out.gates.values()
              if not g.is_source and not g.is_register]
    assert gate.gtype == GateType.AND


def test_simplify_cancels_double_inverters():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    nn = netlist.make_not(netlist.make_not(a))
    netlist.add_output("y", nn)
    out = SimplifyPass().run(netlist)
    assert out.output_net("y") == out.input_net("a")
    # The orphaned inner inverter is dead, not simplify's job to remove:
    assert SweepPass().run(out).num_gates == 0


def test_simplify_complementary_operands():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    na = netlist.make_not(a)
    netlist.add_output("and0", netlist.make_and(a, na))
    netlist.add_output("or1", netlist.make_or(a, na))
    netlist.add_output("xor1", netlist.make_xor(a, na))
    out = SimplifyPass().run(netlist)
    assert out.num_gates == 1  # only the NOT survives (it feeds nothing
    # needed, but the pass keeps shared structure until sweep)
    assert out.gate(out.output_net("and0")).gtype == GateType.CONST0
    assert out.gate(out.output_net("or1")).gtype == GateType.CONST1
    assert out.gate(out.output_net("xor1")).gtype == GateType.CONST1


def test_simplify_rewrites_mux_of_complement_to_xor():
    netlist = Netlist("t")
    s = netlist.add_input("s")
    d = netlist.add_input("d")
    nd = netlist.make_not(d)
    netlist.add_output("y", netlist.make_mux(s, d, nd))  # s ? ~d : d
    out = SimplifyPass().run(netlist)
    assert out.gate(out.output_net("y")).gtype == GateType.XOR


def test_strash_merges_structurally_identical_cones():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    x1 = netlist.make_xor(a, b)
    x2 = netlist.make_xor(b, a)  # same function, swapped operands
    netlist.add_output("p", netlist.make_and(x1, a))
    netlist.add_output("q", netlist.make_and(x2, a))
    out = StrashPass().run(netlist)
    assert out.num_gates == 2  # one XOR + one AND shared by both outputs
    assert out.output_net("p") == out.output_net("q")


def test_strash_canonicalizes_inverted_gate_variants():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    nand = netlist.add_gate(GateType.NAND, (a, b))
    netlist.add_output("y", netlist.make_not(nand))  # ~(~(a&b)) == a&b
    out = StrashPass().run(netlist)
    assert out.gate(out.output_net("y")).gtype == GateType.AND
    assert SweepPass().run(out).num_gates == 1


def test_balance_reduces_reduction_chain_depth():
    source = """
    module r(input [31:0] a, output y);
      assign y = &a;
    endmodule
    """
    netlist = elaborate(source, top="r")
    assert netlist.logic_levels() == 31
    balanced = BalancePass().run(netlist)
    assert balanced.logic_levels() == 5  # ceil(log2(32))
    assert balanced.num_gates == netlist.num_gates
    _assert_equivalent(netlist, balanced)


def test_balance_does_not_duplicate_shared_nodes():
    netlist = Netlist("t")
    bits = [netlist.add_input(f"a{i}") for i in range(4)]
    shared = netlist.make_and(bits[0], bits[1])
    chain = netlist.make_and(netlist.make_and(shared, bits[2]), bits[3])
    netlist.add_output("y", chain)
    netlist.add_output("z", shared)  # 'shared' has fanout 2
    out = BalancePass().run(netlist)
    assert out.num_gates <= netlist.num_gates
    _assert_equivalent(netlist, out)


def test_sweep_drops_dead_gates_and_registers():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.make_and(a, b)                 # dead gate
    netlist.add_dff(netlist.make_xor(a, b), name="dead_ff")
    netlist.add_output("y", netlist.make_or(a, b))
    assert netlist.num_gates == 3 and netlist.num_registers == 1
    out = SweepPass().run(netlist)
    assert out.num_gates == 1
    assert out.num_registers == 0
    assert out.input_names() == ["a", "b"]  # dead inputs survive
    _assert_equivalent(netlist, out)


def test_constprop_keeps_inverted_gate_types_when_nothing_folds():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y", netlist.add_gate(GateType.NAND, (a, b)))
    out = ConstPropPass().run(netlist)
    assert out.num_gates == 1
    assert out.gate(out.output_net("y")).gtype == GateType.NAND


def test_unnamed_registers_survive_optimization_and_equivalence():
    """Gids renumber across rebuilds; unnamed flip-flops must still match."""
    netlist = Netlist("t")
    d = netlist.add_input("d")
    netlist.make_and(d, d)  # dead gate: forces gid renumbering in rebuild
    ff = netlist.add_dff(netlist.const0())  # deliberately unnamed
    netlist.set_fanins(ff, (netlist.make_xor(ff, d),))
    netlist.add_output("q", ff)
    result = optimize(netlist)
    assert result.netlist.num_registers == 1
    _assert_equivalent(netlist, result.netlist)


def test_balance_handles_very_long_chains_iteratively():
    netlist = Netlist("t")
    bits = [netlist.add_input(f"a{i}") for i in range(3000)]
    acc = bits[0]
    for bit in bits[1:]:
        acc = netlist.make_and(acc, bit)
    netlist.add_output("y", acc)
    out = BalancePass().run(netlist)  # must not hit the recursion limit
    assert out.logic_levels() == 12  # ceil(log2(3000))
    assert out.num_gates == netlist.num_gates


def test_live_set_traverses_register_data_cones():
    netlist = Netlist("t")
    d = netlist.add_input("d")
    ff = netlist.add_dff(netlist.const0(), name="ff")
    netlist.set_fanins(ff, (netlist.make_xor(ff, d),))
    netlist.add_output("q", ff)
    live = live_set(netlist)
    assert ff in live
    assert netlist.gate(ff).fanins[0] in live


# ---------------------------------------------------------------------------
# Pass manager / pipeline mechanics
# ---------------------------------------------------------------------------


def test_pass_manager_records_stats_per_pass():
    netlist = elaborate(ALU, top="alu")
    result = optimize(netlist, fixpoint=False)
    assert [row.name for row in result.stats] == list(DEFAULT_PIPELINE)
    for row in result.stats:
        assert row.iteration == 1
        assert row.seconds >= 0
        assert row.gates_after >= 0
    assert result.netlist.opt_stats is result.stats


def test_fixpoint_iterates_until_no_improvement():
    netlist = elaborate(ALU, top="alu")
    result = optimize(netlist)
    iterations = {row.iteration for row in result.stats}
    assert len(iterations) >= 2  # ran at least once more to confirm
    last = max(iterations)
    last_rows = [row for row in result.stats if row.iteration == last]
    assert all(row.gates_removed == 0 for row in last_rows)


def test_custom_pipeline_by_name_and_instance():
    netlist = elaborate(ALU, top="alu")
    manager = PassManager(["constprop", StrashPass()], fixpoint=False)
    out, stats = manager.run(netlist)
    assert [row.name for row in stats] == ["constprop", "strash"]
    _assert_equivalent(netlist, out)


def test_unknown_pass_name_rejected():
    with pytest.raises(OptimizationError, match="unknown pass 'frobnicate'"):
        PassManager(["frobnicate"])


def test_elaborate_optimize_hook_attaches_stats():
    plain = elaborate(ALU, top="alu")
    assert plain.opt_stats is None
    optimized = elaborate(ALU, top="alu", optimize=True)
    assert optimized.opt_stats
    assert optimized.num_gates <= plain.num_gates
    custom = elaborate(ALU, top="alu", optimize=["sweep"])
    assert {row.name for row in custom.opt_stats} == {"sweep"}


def test_alu_reaches_thirty_percent_reduction_without_depth_increase():
    """The acceptance benchmark: a redundant datapath sheds >= 30% gates."""
    source = """
    module alu #(parameter W = 8) (
      input [W-1:0] a, input [W-1:0] b, input [2:0] op,
      output reg [W-1:0] y
    );
      always @(*) begin
        case (op)
          3'd0: y = a + b;
          3'd1: y = (a + b) + 1;
          3'd2: y = a - b;
          3'd3: y = (a - b) - 1;
          3'd4: y = a & b;
          3'd5: y = a | b;
          3'd6: y = a ^ b;
          default: y = (a < b) ? a : b;
        endcase
      end
    endmodule
    """
    netlist = elaborate(source, top="alu")
    result = optimize(netlist)
    assert result.reduction >= 0.30
    assert result.levels_after <= result.levels_before
    _assert_equivalent(netlist, result.netlist)


# ---------------------------------------------------------------------------
# FRAIG (SAT sweeping)
# ---------------------------------------------------------------------------


def test_fraig_registered_in_pass_registry():
    assert "fraig" in PASS_REGISTRY
    assert PASS_REGISTRY["fraig"] is FraigPass


@pytest.mark.parametrize("name,source,top,params", DESIGNS, ids=DESIGN_IDS)
def test_fraig_preserves_equivalence_and_never_grows(name, source, top,
                                                     params):
    netlist = elaborate(source, top=top, params=params)
    fraig = FraigPass()
    out = fraig.run(netlist)
    assert out.num_gates <= netlist.num_gates, \
        f"{name}: fraig grew the netlist"
    _assert_equivalent(netlist, out)
    stats = fraig.fraig_stats
    assert stats is not None and stats.rounds >= 1
    assert stats.ands_after <= stats.ands_before or stats.proven == 0


def test_fraig_merges_beyond_structural_hashing():
    # y1 and y2 compute a & b through structurally different cones:
    # strash cannot merge them, SAT sweeping must.
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    direct = netlist.make_and(a, b)
    # a & b == mux(a, 0, b): different AIG structure for the same function.
    via_mux = netlist.make_mux(a, netlist.const0(), b)
    netlist.add_output("y1", direct)
    netlist.add_output("y2", via_mux)
    strashed = StrashPass().run(netlist)
    fraiged = FraigPass().run(netlist)
    assert fraiged.output_net("y1") == fraiged.output_net("y2")
    assert fraiged.num_gates <= strashed.num_gates
    _assert_equivalent(netlist, fraiged)


def test_fraig_proves_constant_cones():
    # xor(a, a) built around an opaque duplicated cone collapses to 0.
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    left = netlist.make_and(a, b)
    right = netlist.make_and(b, a)
    netlist.add_output("z", netlist.make_xor(left, right))
    out = FraigPass().run(netlist)
    assert out.gate(out.output_net("z")).gtype == GateType.CONST0
    _assert_equivalent(netlist, out)


def test_fraig_in_pipeline_via_name():
    netlist = elaborate(ALU, top="alu")
    result = optimize(netlist, passes=["fraig", "sweep"])
    assert result.gates_after <= result.gates_before
    _assert_equivalent(netlist, result.netlist)


def test_fraig_distinguishes_near_equivalent_cones():
    # y1 = a & b, y2 = a & (b | c): signatures often collide on few
    # patterns until a counterexample splits the classes — the pass must
    # never merge them.
    netlist = Netlist("t")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    netlist.add_output("y1", netlist.make_and(a, b))
    netlist.add_output("y2", netlist.make_and(a, netlist.make_or(b, c)))
    fraig = FraigPass(patterns=1, seed=0)
    out = fraig.run(netlist)
    assert out.output_net("y1") != out.output_net("y2")
    _assert_equivalent(netlist, out)
