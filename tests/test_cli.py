"""Tests for the ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import run

ALU = """
module alu #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b, input [1:0] op,
  output reg [W-1:0] y
);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = (a + b) + 1;
      2'd2: y = a & b;
      default: y = a | b;
    endcase
  end
endmodule
"""


@pytest.fixture
def alu_file(tmp_path):
    path = tmp_path / "alu.v"
    path.write_text(ALU)
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


def test_basic_stats(alu_file):
    code, text = _run([alu_file])
    assert code == 0
    assert "alu (elaborated):" in text
    assert "gates" in text and "registers" in text


def test_optimize_and_check(alu_file):
    code, text = _run([alu_file, "--optimize", "--check"])
    assert code == 0
    assert "alu (optimized):" in text
    assert "gates removed" in text
    assert "equivalence: PROVEN" in text


def test_json_report(alu_file):
    code, text = _run([alu_file, "--check", "--json"])
    assert code == 0
    report = json.loads(text)
    assert report["top"] == "alu"
    assert report["optimized_stats"]["gates"] <= report["stats"]["gates"]
    assert report["equivalence"]["equivalent"] is True
    assert report["optimization"]["passes"]


def test_param_override(alu_file):
    code, text = _run([alu_file, "--param", "W=8", "--json"])
    assert code == 0
    assert json.loads(text)["stats"]["outputs"] == 8


def test_custom_passes(alu_file):
    code, text = _run([alu_file, "--passes", "constprop,sweep",
                       "--no-fixpoint", "--json"])
    assert code == 0
    names = [row["name"] for row in
             json.loads(text)["optimization"]["passes"]]
    assert names == ["constprop", "sweep"]


def test_missing_file_diagnostic(capsys):
    assert run(["/nonexistent/x.v"]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_syntax_error_diagnostic(tmp_path, capsys):
    path = tmp_path / "bad.v"
    path.write_text("module m(input a output y); endmodule")
    assert run([str(path)]) == 1
    assert "syntax error" in capsys.readouterr().err


def test_elaboration_error_diagnostic(tmp_path, capsys):
    path = tmp_path / "undriven.v"
    path.write_text("module m(input a, output y); assign y = ghost; endmodule")
    assert run([str(path)]) == 1
    assert "elaboration error" in capsys.readouterr().err


def test_bad_param_diagnostic(alu_file, capsys):
    assert run([alu_file, "--param", "W"]) == 1
    assert "NAME=INTEGER" in capsys.readouterr().err


def test_unknown_pass_diagnostic(alu_file, capsys):
    assert run([alu_file, "--passes", "nosuch"]) == 1
    assert "unknown pass" in capsys.readouterr().err


def test_cycles_throughput_readout(alu_file):
    code, text = _run([alu_file, "--cycles", "50"])
    assert code == 0
    assert "simulation: 50 cycles" in text
    assert "cyc/s (compiled engine)" in text


def test_cycles_with_interp_engine(alu_file):
    code, text = _run([alu_file, "--cycles", "20", "--sim", "interp"])
    assert code == 0
    assert "cyc/s (interp engine)" in text


def test_cycles_json_report(alu_file):
    code, text = _run([alu_file, "--optimize", "--cycles", "30", "--json",
                       "--seed", "7"])
    assert code == 0
    report = json.loads(text)
    sim = report["simulation"]
    assert sim["engine"] == "compiled"
    assert sim["cycles"] == 30
    assert sim["cycles_per_second"] > 0


def test_check_reports_encode_and_solve_time(alu_file):
    code, text = _run([alu_file, "--check", "--json"])
    assert code == 0
    equivalence = json.loads(text)["equivalence"]
    assert equivalence["encoding"] == "aig"
    assert equivalence["encode_seconds"] > 0
    # The shared-AIG miter may prove every root pair by hashing, in which
    # case the solver never runs at all.
    if equivalence["hash_proven"] < equivalence["compared"]:
        assert equivalence["solve_seconds"] > 0
        assert equivalence["cnf_clauses"] > 0


def test_check_gate_encoding_always_solves(alu_file):
    code, text = _run([alu_file, "--check", "--encoding", "gate", "--json"])
    assert code == 0
    equivalence = json.loads(text)["equivalence"]
    assert equivalence["encoding"] == "gate"
    assert equivalence["hash_proven"] == 0
    assert equivalence["encode_seconds"] > 0
    assert equivalence["solve_seconds"] > 0
    assert equivalence["cnf_clauses"] > 0


def test_bad_cycles_diagnostic(alu_file, capsys):
    assert run([alu_file, "--cycles", "0"]) == 1
    assert "positive integer" in capsys.readouterr().err


def test_ir_aig_stats(alu_file):
    code, text = _run([alu_file, "--ir", "aig"])
    assert code == 0
    assert "alu (aig):" in text
    assert "ands" in text
    code, text = _run([alu_file, "--ir", "aig", "--optimize", "--json"])
    assert code == 0
    report = json.loads(text)
    assert report["aig_stats"]["ands"] > 0
    assert report["optimized_aig_stats"]["ands"] <= \
        report["aig_stats"]["ands"]


def test_passes_fraig(alu_file):
    code, text = _run([alu_file, "--passes", "fraig,sweep", "--check",
                       "--json"])
    assert code == 0
    report = json.loads(text)
    assert [row["name"] for row in report["optimization"]["passes"][:2]] \
        == ["fraig", "sweep"]
    assert report["equivalence"]["equivalent"]


def test_emit_round_trips_through_the_frontend(alu_file, tmp_path):
    emitted = tmp_path / "alu_emitted.v"
    code, text = _run([alu_file, "--optimize", "--emit", str(emitted),
                       "--json"])
    assert code == 0
    assert json.loads(text)["emitted"] == str(emitted)
    # The emitted file must parse, elaborate and prove equivalent to the
    # original elaboration.
    from repro.netlist import elaborate
    from repro.netlist.sat import check_equivalence
    original = elaborate(ALU, top="alu")
    reparsed = elaborate(emitted.read_text(), top="alu")
    assert check_equivalence(original, reparsed).equivalent


def test_emit_write_failure_is_diagnosed(alu_file, tmp_path, capsys):
    target = tmp_path / "no" / "such" / "dir" / "o.v"
    assert run([alu_file, "--emit", str(target)]) == 1
    assert "cannot write" in capsys.readouterr().err


def test_check_prints_solver_stats_when_solving(alu_file):
    # The gate encoding always reaches the solver, so the human-readable
    # output must carry the search statistics line.
    code, text = _run([alu_file, "--check", "--encoding", "gate"])
    assert code == 0
    assert "solver:" in text
    assert "conflicts" in text and "restarts" in text
    assert "reduced clauses" in text


def test_check_omits_solver_stats_when_hash_proven(alu_file):
    # The ALU self-CEC fully hash-merges in the shared AIG, so no solver
    # ran and no stats line should print.  Assert the precondition too:
    # if hash-proving ever stops covering this miter the test must flag
    # it rather than pass vacuously.
    code, text = _run([alu_file, "--check"])
    assert code == 0
    assert "hash-merged" in text
    assert "solver:" not in text


def test_check_json_carries_new_solver_counters(alu_file):
    code, text = _run([alu_file, "--check", "--encoding", "gate", "--json"])
    assert code == 0
    solver = json.loads(text)["equivalence"]["solver"]
    for key in ("conflicts", "restarts", "lbd_sum", "reduced_clauses",
                "gc_runs"):
        assert key in solver


# ---------------------------------------------------------------------------
# Certified equivalence: --certify, --solve-log, --check-against
# ---------------------------------------------------------------------------

MULT_A = """
module mult #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  assign p = a * b;
endmodule
"""

# Same function, different structure (re-associated partial sum), so the
# miter does not fully hash-merge and the solver actually runs.
MULT_B = """
module mult #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  wire [2*W-1:0] partial;
  assign partial = (b[0] ? {{W{1'b0}}, a} : {2*W{1'b0}});
  assign p = partial + ((b >> 1) * a << 1);
endmodule
"""

MULT_BAD = """
module mult #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  assign p = a * b + 1;
endmodule
"""


@pytest.fixture
def mult_pair(tmp_path):
    fa = tmp_path / "mult_a.v"
    fb = tmp_path / "mult_b.v"
    fa.write_text(MULT_A)
    fb.write_text(MULT_B)
    return str(fa), str(fb)


def test_check_against_cross_design(mult_pair):
    fa, fb = mult_pair
    code, text = _run([fa, "--check-against", fb])
    assert code == 0
    assert "equivalence: PROVEN" in text


def test_check_against_refuted_exits_2(mult_pair, tmp_path):
    fa, _ = mult_pair
    bad = tmp_path / "mult_bad.v"
    bad.write_text(MULT_BAD)
    code, text = _run([fa, "--check-against", str(bad)])
    assert code == 2
    assert "equivalence: REFUTED" in text


def test_check_against_missing_file_diagnostic(mult_pair, capsys):
    fa, _ = mult_pair
    assert run([fa, "--check-against", "no/such/file.v"]) == 1
    assert "no/such/file.v" in capsys.readouterr().err


def test_certify_checks_proof_and_reports_it(mult_pair):
    fa, fb = mult_pair
    code, text = _run([fa, "--check-against", fb, "--certify"])
    assert code == 0
    assert "independently checked" in text


def test_certify_json_proof_block(mult_pair):
    fa, fb = mult_pair
    code, text = _run([fa, "--check-against", fb, "--certify", "--json"])
    assert code == 0
    report = json.loads(text)
    eq = report["equivalence"]
    assert eq["against"].endswith("mult_b.v")
    proof = eq["proof"]
    assert proof["certified"] is True
    assert proof["checked"] is True
    assert proof["clauses"] > 0
    assert proof["bytes"] > 0
    assert proof["check_seconds"] >= 0.0


def test_certify_hash_proven_has_nothing_to_check(alu_file):
    # The self-CEC fully hash-merges: certification is requested but no
    # solver UNSAT verdict exists, so checked stays None and exit is 0.
    code, text = _run([alu_file, "--check", "--certify"])
    assert code == 0
    assert "nothing to check" in text


def test_solve_log_writes_parseable_drat(mult_pair, tmp_path):
    from repro.netlist.sat import parse_drat

    fa, fb = mult_pair
    log = tmp_path / "cec.drat"
    code, text = _run([fa, "--check-against", fb, "--certify", "--json",
                       "--solve-log", str(log)])
    assert code == 0
    report = json.loads(text)
    proof = report["equivalence"]["proof"]
    assert proof["log"] == str(log)
    steps = parse_drat(log.read_text())
    assert sum(1 for kind, _ in steps if kind == "a") == proof["clauses"]


def test_solve_log_implies_check(mult_pair, tmp_path):
    fa, fb = mult_pair
    code, text = _run([fa, "--solve-log", str(tmp_path / "p.drat")])
    assert code == 0
    assert "equivalence: PROVEN" in text


def test_solve_log_write_failure_is_diagnosed(mult_pair, tmp_path, capsys):
    fa, fb = mult_pair
    target = tmp_path / "no" / "such" / "dir" / "p.drat"
    assert run([fa, "--check-against", fb, "--solve-log", str(target)]) == 1
    assert "cannot write" in capsys.readouterr().err


def test_trace_json_carries_histogram_metrics(mult_pair, tmp_path):
    fa, fb = mult_pair
    code, text = _run([fa, "--check-against", fb, "--certify", "--json",
                       "--trace", str(tmp_path / "t.json")])
    assert code == 0
    metrics = json.loads(text)["trace"]["metrics"]
    hist = metrics["cec.solve_seconds"]
    assert hist["type"] == "histogram"
    assert hist["count"] == 1
    assert "p50" in hist and "p95" in hist


# ---------------------------------------------------------------------------
# Parallel verification (--jobs) and the result cache (--cache)
# ---------------------------------------------------------------------------

def test_jobs_json_parity_with_serial(mult_pair):
    fa, fb = mult_pair
    code_s, text_s = _run([fa, "--check-against", fb, "--json"])
    code_p, text_p = _run([fa, "--check-against", fb, "--jobs", "4",
                           "--json"])
    assert code_s == 0 and code_p == 0
    serial = json.loads(text_s)["equivalence"]
    parallel = json.loads(text_p)["equivalence"]
    # Same verdict, same report shape — only the partitioning metadata
    # may differ between the two paths.
    assert set(serial) == set(parallel)
    assert serial["equivalent"] is True
    assert parallel["equivalent"] is True
    assert serial["jobs"] == 1 and serial["partitions"] == 0
    assert parallel["jobs"] == 4
    assert parallel["partitions"] >= 2


def test_jobs_refuted_exits_2(mult_pair, tmp_path):
    fa, _ = mult_pair
    bad = tmp_path / "mult_bad.v"
    bad.write_text(MULT_BAD)
    code, text = _run([fa, "--check-against", str(bad), "--jobs", "4"])
    assert code == 2
    assert "equivalence: REFUTED" in text


def test_jobs_certified_parallel(mult_pair):
    # Every worker logs its own DRAT proof; the merged verdict is only
    # certified when all of them check out.
    fa, fb = mult_pair
    code, text = _run([fa, "--check-against", fb, "--certify",
                       "--jobs", "2", "--json"])
    assert code == 0
    eq = json.loads(text)["equivalence"]
    assert eq["equivalent"] is True
    assert eq["proof"]["certified"] is True
    assert eq["proof"]["checked"] is True


def test_cache_cold_then_warm(mult_pair, tmp_path):
    fa, fb = mult_pair
    cache = str(tmp_path / "cec-cache")
    code, text = _run([fa, "--check-against", fb, "--cache", cache,
                       "--json"])
    assert code == 0
    cold = json.loads(text)["equivalence"]
    assert cold["cache_hit"] is False
    code, text = _run([fa, "--check-against", fb, "--cache", cache,
                       "--json"])
    assert code == 0
    warm = json.loads(text)["equivalence"]
    assert warm["cache_hit"] is True
    assert warm["equivalent"] == cold["equivalent"]
    assert warm["compared"] == cold["compared"]


def test_cache_refuted_still_exits_2(mult_pair, tmp_path):
    fa, _ = mult_pair
    bad = tmp_path / "mult_bad.v"
    bad.write_text(MULT_BAD)
    cache = str(tmp_path / "cec-cache")
    assert run([fa, "--check-against", str(bad), "--cache", cache]) == 2
    # The cached replay must preserve the refuted exit code too.
    assert run([fa, "--check-against", str(bad), "--cache", cache]) == 2
