"""Lexer unit tests: tokens, literals, comments, directives."""

import pytest

from repro.verilog.lexer import (
    Token,
    VerilogLexError,
    parse_sized_number,
    tokenize,
)


def kinds(text):
    return [tok.kind for tok in tokenize(text)]


def values(text):
    return [tok.value for tok in tokenize(text)]


def test_keywords_and_identifiers():
    toks = tokenize("module foo; endmodule")
    assert [(t.kind, t.value) for t in toks] == [
        ("KEYWORD", "module"),
        ("ID", "foo"),
        ("PUNCT", ";"),
        ("KEYWORD", "endmodule"),
    ]


def test_comments_and_directives_are_skipped():
    text = """
    // line comment
    /* block
       comment */
    `timescale 1ns/1ps
    wire w;
    """
    assert values(text) == ["wire", "w", ";"]


def test_sized_number_tokens():
    toks = tokenize("8'hFF 4'b1010 3'o7 16'd42 'b1")
    assert all(t.kind == "SIZED_NUMBER" for t in toks)
    assert parse_sized_number("8'hFF") == (255, 8, "h")
    assert parse_sized_number("4'b1010") == (10, 4, "b")
    assert parse_sized_number("3'o7") == (7, 3, "o")
    assert parse_sized_number("16'd42") == (42, 16, "d")
    assert parse_sized_number("'b1") == (1, None, "b")


def test_sized_number_with_space_before_tick():
    toks = tokenize("4 'b0101")
    assert len(toks) == 1 and toks[0].kind == "SIZED_NUMBER"


def test_x_and_z_digits_read_as_zero():
    value, width, base = parse_sized_number("4'b1x0z")
    assert (value, width, base) == (0b1000, 4, "b")


def test_unsized_number_with_underscores():
    toks = tokenize("1_000")
    assert toks[0].kind == "NUMBER"
    assert int(toks[0].value.replace("_", "")) == 1000


def test_operators_maximal_munch():
    assert values("a <<< b <= c !== d") == ["a", "<<<", "b", "<=", "c",
                                            "!==", "d"]


def test_escaped_identifier():
    toks = tokenize(r"\bus[0] other")
    assert toks[0] == Token("ID", "bus[0]", 1, 1)
    assert toks[1].value == "other"


def test_line_numbers_tracked():
    toks = tokenize("a\nb\n  c")
    assert [t.line for t in toks] == [1, 2, 3]


def test_lex_error_on_bad_base():
    with pytest.raises(VerilogLexError):
        tokenize("4'q1010")
