"""Tests for DRAT proof logging (`Solver.set_proof`) and the independent
backward RUP checker (`repro.netlist.sat.proof.check_drat`).

The checker shares no code with either solver engine, so these tests are
the certification story's foundation: real proofs from both engines must
check, and corrupted/truncated/bogus proofs must be rejected.
"""

from itertools import combinations

import pytest

from repro.netlist import elaborate, from_netlist
from repro.netlist.opt import FraigStats, fraig_sweep
from repro.netlist.sat import (
    DratCheckResult,
    ProofLog,
    ReferenceSolver,
    Solver,
    check_drat,
    check_equivalence,
    format_drat_step,
    parse_drat,
)


def pigeonhole(holes):
    """holes+1 pigeons into `holes` holes: classically UNSAT."""
    def var(pigeon, hole):
        return pigeon * holes + hole + 1
    clauses = [tuple(var(p, h) for h in range(holes))
               for p in range(holes + 1)]
    for h in range(holes):
        for p1, p2 in combinations(range(holes + 1), 2):
            clauses.append((-var(p1, h), -var(p2, h)))
    return (holes + 1) * holes, clauses


MULT_A = """
module mult_a #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  assign p = a * b;
endmodule
"""

# Same function, different structure: operands swapped plus a re-association
# through an explicit partial sum, so the AIGs don't hash-merge at the roots.
MULT_B = """
module mult_a #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b,
  output [2*W-1:0] p
);
  wire [2*W-1:0] partial;
  assign partial = (b[0] ? {{W{1'b0}}, a} : {2*W{1'b0}});
  assign p = partial + ((b >> 1) * a << 1);
endmodule
"""


# ---------------------------------------------------------------------------
# ProofLog / DRAT text round trips
# ---------------------------------------------------------------------------


def test_prooflog_records_steps_and_counts():
    log = ProofLog()
    log.add((1, -2, 3))
    log.add((4,))
    log.delete((1, -2, 3))
    log.add(())
    assert log.steps == [("a", (1, -2, 3)), ("a", (4,)),
                         ("d", (1, -2, 3)), ("a", ())]
    assert log.num_added == 3 and log.num_deleted == 1
    assert len(log) == 4


def test_prooflog_drat_text_round_trip():
    log = ProofLog()
    log.add((1, -2, 3))
    log.delete((5, 6))
    log.add(())
    text = log.to_drat()
    assert text == "1 -2 3 0\nd 5 6 0\n0\n"
    assert parse_drat(text) == log.steps
    assert log.size_bytes() == len(text)


def test_prooflog_streams_live(tmp_path):
    path = tmp_path / "proof.drat"
    with open(path, "w", encoding="utf-8") as handle:
        log = ProofLog(stream=handle)
        log.add((1, 2))
        # Flushed per step: visible before the handle is closed.
        assert path.read_text() == "1 2 0\n"
        log.delete((1, 2))
    assert path.read_text() == "1 2 0\nd 1 2 0\n"
    assert log.bytes_written == log.size_bytes() == 14


def test_parse_drat_ignores_comments_and_rejects_garbage():
    assert parse_drat("c a comment\n\n1 2 0\n") == [("a", (1, 2))]
    with pytest.raises(ValueError):
        parse_drat("1 2\n")          # missing terminator
    with pytest.raises(ValueError):
        parse_drat("1 0 2 0\n")      # interior zero
    with pytest.raises(ValueError):
        parse_drat("1 x 0\n")


def test_format_drat_step_validates_kind():
    assert format_drat_step("a", ()) == "0"
    assert format_drat_step("d", (-1,)) == "d -1 0"
    with pytest.raises(ValueError):
        format_drat_step("x", (1,))


# ---------------------------------------------------------------------------
# Real proofs from both engines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", [Solver, ReferenceSolver])
@pytest.mark.parametrize("holes", [3, 4, 5])
def test_pigeonhole_proofs_check(engine, holes):
    num_vars, clauses = pigeonhole(holes)
    solver = engine(num_vars, clauses)
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve().satisfiable
    assert log.num_added > 0
    result = check_drat(clauses, log)
    assert result.ok and isinstance(result, DratCheckResult)
    assert result.lemmas == log.num_added
    # Backward core marking checks a subset; verify_all checks everything.
    full = check_drat(clauses, log, verify_all=True)
    assert full.ok and full.checked == full.lemmas
    assert result.checked <= full.checked


def test_proof_survives_text_round_trip():
    num_vars, clauses = pigeonhole(4)
    solver = Solver(num_vars, clauses)
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve().satisfiable
    assert check_drat(clauses, parse_drat(log.to_drat())).ok


def test_trivial_root_conflict_emits_empty_clause():
    solver = Solver(1, [(1,), (-1,)])
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve().satisfiable
    assert ("a", ()) in log.steps
    assert check_drat([(1,), (-1,)], log).ok


def test_incremental_solving_proof_checks_against_final_formula():
    # Clauses added between solve() calls: lemmas from the first solve are
    # checked against the final clause set — sound (supersets only
    # strengthen unit propagation) and exactly what certification needs.
    num_vars, clauses = pigeonhole(3)
    solver = Solver(num_vars)
    log = ProofLog()
    solver.set_proof(log)
    solver.add_clauses(clauses[:-2])
    solver.solve()                    # SAT or UNSAT, lemmas accumulate
    solver.add_clauses(clauses[-2:])
    assert not solver.solve().satisfiable
    assert check_drat(clauses, log).ok


def test_assumption_unsat_certified_with_assumption_units():
    clauses = [(-1, 2), (-2, 3)]
    solver = Solver(3, clauses)
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve(assumptions=(1, -3)).satisfiable
    assert check_drat(clauses, log, assumptions=(1, -3)).ok
    # The formula alone is satisfiable: without the assumptions the same
    # proof must be rejected.
    assert not check_drat(clauses, log)


def test_reference_solver_never_deletes():
    num_vars, clauses = pigeonhole(4)
    solver = ReferenceSolver(num_vars, clauses)
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve().satisfiable
    assert log.num_deleted == 0


def test_reduce_db_deletions_check():
    # A solve hard enough to trigger clause-DB reduction; force it by
    # shrinking the learned-clause budget rather than solving a monster.
    num_vars, clauses = pigeonhole(6)
    solver = Solver(num_vars, clauses)
    solver.max_learnts = 32
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve().satisfiable
    assert log.num_deleted > 0, "reduce-DB never fired; weaken the budget"
    result = check_drat(clauses, log)
    assert result.ok
    assert result.deletions > 0


# ---------------------------------------------------------------------------
# Rejections: the checker must not be a rubber stamp
# ---------------------------------------------------------------------------


def _unsat_proof(holes=4):
    num_vars, clauses = pigeonhole(holes)
    solver = Solver(num_vars, clauses)
    log = ProofLog()
    solver.set_proof(log)
    assert not solver.solve().satisfiable
    return clauses, list(log.steps)


def test_bogus_lemma_rejected():
    clauses, steps = _unsat_proof()
    # (x1 ∨ x2) is not implied by the pigeonhole formula.
    steps.insert(len(steps) // 2, ("a", (1, 2)))
    assert not check_drat(clauses, steps, verify_all=True)
    result = check_drat(clauses, steps, verify_all=True)
    assert "not RUP" in result.reason


def test_corrupted_lemma_literal_rejected():
    clauses, steps = _unsat_proof()
    # Flip a literal in every addition of some middle stretch: at least
    # one corrupted lemma is load-bearing under full verification.
    corrupted = []
    for kind, lits in steps:
        if kind == "a" and len(lits) >= 2:
            corrupted.append((kind, (-lits[0],) + lits[1:]))
        else:
            corrupted.append((kind, lits))
    assert not check_drat(clauses, corrupted, verify_all=True)


def test_truncated_proof_rejected():
    clauses, steps = _unsat_proof()
    result = check_drat(clauses, steps[: len(steps) // 4])
    assert not result
    assert "empty clause" in result.reason


def test_sat_formula_has_no_unsat_proof():
    clauses = [(1, 2), (-1, 2)]
    solver = Solver(2, clauses)
    log = ProofLog()
    solver.set_proof(log)
    assert solver.solve().satisfiable
    assert not check_drat(clauses, log)


def test_deleting_needed_clause_breaks_proof():
    clauses, steps = _unsat_proof()
    # Erase every input clause after all additions: the lemmas alone do
    # not derive the conflict once their support is gone... unless the
    # learned units happen to still conflict — so also drop additions of
    # width 1.  Either way the proof must not check as-is *plus* the
    # deletion of everything.
    steps = ([step for step in steps if step[0] != "a" or len(step[1]) > 1]
             + [("d", tuple(c)) for c in clauses])
    assert not check_drat(clauses, steps)


def test_checker_accepts_plain_iterables_and_text():
    clauses, steps = _unsat_proof(3)
    text = "".join(format_drat_step(kind, lits) + "\n"
                   for kind, lits in steps)
    assert check_drat(tuple(clauses), text).ok
    assert check_drat(iter(clauses), steps).ok


# ---------------------------------------------------------------------------
# Certified CEC and FRAIG
# ---------------------------------------------------------------------------


def test_check_equivalence_certify_unsat():
    before = elaborate(MULT_A)
    after = elaborate(MULT_B)
    result = check_equivalence(before, after, certify=True)
    assert result.equivalent
    assert result.proof_checked is True
    assert result.proof_clauses > 0
    assert result.proof_bytes > 0
    assert result.proof_check_seconds >= 0.0


def test_check_equivalence_uncertified_has_no_proof_fields():
    before = elaborate(MULT_A)
    after = elaborate(MULT_B)
    result = check_equivalence(before, after)
    assert result.equivalent
    assert result.proof_checked is None
    assert result.proof_clauses == 0 and result.proof_bytes == 0


def test_check_equivalence_certify_hash_proven_skips_checker():
    design = elaborate(MULT_A)
    result = check_equivalence(design, design, certify=True)
    assert result.equivalent and result.hash_proven == result.compared
    # Nothing was solved, so there is no proof to check.
    assert result.proof_checked is None


def test_check_equivalence_proof_stream(tmp_path):
    path = tmp_path / "cec.drat"
    before = elaborate(MULT_A)
    after = elaborate(MULT_B)
    with open(path, "w", encoding="utf-8") as handle:
        proof = ProofLog(stream=handle)
        result = check_equivalence(before, after, certify=True, proof=proof)
    assert result.equivalent and result.proof_checked is True
    steps = parse_drat(path.read_text())
    assert steps == proof.steps


def test_check_equivalence_certify_with_reference_engine():
    before = elaborate(MULT_A)
    after = elaborate(MULT_B)
    result = check_equivalence(before, after, certify=True,
                               solver_factory=ReferenceSolver)
    assert result.equivalent and result.proof_checked is True


def test_fraig_sweep_certify():
    # a - b and the comparator's borrow chain are equivalent but not
    # structurally identical, so fraig has real merges to SAT-prove.
    source = """
module alu #(parameter W = 8) (
  input [W-1:0] a, input [W-1:0] b, input [2:0] op,
  output reg [W-1:0] y
);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = (a + b) + 1;
      3'd2: y = a - b;
      3'd3: y = (a - b) - 1;
      3'd4: y = a & b;
      default: y = (a < b) ? a : b;
    endcase
  end
endmodule
"""
    aig = from_netlist(elaborate(source))
    stats = FraigStats()
    swept = fraig_sweep(aig, patterns=8, stats=stats, certify=True)
    assert swept.num_ands <= aig.num_ands
    assert stats.proven > 0
    assert stats.proofs_checked == stats.proven
    assert stats.proofs_failed == 0
    assert stats.proof_clauses >= 0 and stats.proof_bytes > 0
    snap = stats.to_dict()
    assert snap["proofs_checked"] == stats.proofs_checked
    assert snap["proofs_failed"] == 0


def test_fraig_sweep_uncertified_counts_stay_zero():
    source = "module t(input a, input b, output o); assign o = a & b; endmodule"
    aig = from_netlist(elaborate(source))
    stats = FraigStats()
    fraig_sweep(aig, patterns=4, stats=stats)
    assert stats.proofs_checked == 0 and stats.proofs_failed == 0
    assert stats.proof_clauses == 0 and stats.proof_bytes == 0
