"""Tests for :mod:`repro.obs` — tracing, metrics, exporters, CLI wiring."""

import io
import json
import threading
import time

import pytest

from repro.cli import run
from repro.netlist import elaborate, from_netlist
from repro.netlist.opt import FraigStats, fraig_sweep, optimize
from repro.netlist.sat import Solver, check_equivalence
from repro.netlist.sat.solver import SolverStats
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    attach_solver_progress,
    get_tracer,
    ndjson_sink,
    profile_tree,
    set_tracer,
    span_totals,
    to_chrome_trace,
    use_tracer,
    write_chrome_trace,
)

ALU = """
module alu #(parameter W = 4) (
  input [W-1:0] a, input [W-1:0] b, input [1:0] op,
  output reg [W-1:0] y
);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = (a + b) + 1;
      2'd2: y = a & b;
      default: y = a | b;
    endcase
  end
endmodule
"""


@pytest.fixture
def alu_file(tmp_path):
    path = tmp_path / "alu.v"
    path.write_text(ALU)
    return str(path)


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------


def test_span_nesting_paths():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
        with tracer.span("middle2"):
            pass
    by_name = {r.name: r for r in tracer.spans()}
    assert by_name["outer"].path == ()
    assert by_name["middle"].path == ("outer",)
    assert by_name["inner"].path == ("outer", "middle")
    assert by_name["middle2"].path == ("outer",)
    # Children close before their parent.
    names = [r.name for r in tracer.spans()]
    assert names.index("inner") < names.index("middle") < names.index("outer")


def test_span_args_and_set():
    tracer = Tracer()
    with tracer.span("work", kind="cec") as span:
        span.set(clauses=42)
        span.set(clauses=43, proven=True)  # overwrite + extend
    (record,) = tracer.spans()
    assert record.args == {"kind": "cec", "clauses": 43, "proven": True}
    assert record.duration >= 0.0


def test_span_name_is_positional_only():
    # Instrumentation sites pass free-form **args; "name" must be a legal
    # annotation key (cec.pair events use it for the output-pair name).
    tracer = Tracer()
    with tracer.span("pair", name="y[3]"):
        pass
    tracer.instant("pair.instant", name="y[0]")
    assert tracer.records[0].args["name"] == "y[3]"
    assert tracer.records[1].args["name"] == "y[0]"


def test_span_exception_safety():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    inner, outer = tracer.spans()
    assert inner.name == "inner" and outer.name == "outer"
    assert inner.args["exception"] == "ValueError"
    assert outer.args["exception"] == "ValueError"
    # The stack fully unwound: a new span is top-level again.
    with tracer.span("after"):
        pass
    assert tracer.spans()[-1].path == ()


def test_instants_carry_current_path():
    tracer = Tracer()
    with tracer.span("solve"):
        tracer.instant("progress", conflicts=100)
    instant = [r for r in tracer.records if r.duration is None][0]
    assert instant.path == ("solve",)
    assert instant.args["conflicts"] == 100
    # Instants are excluded from spans() and total_seconds().
    assert [r.name for r in tracer.spans()] == ["solve"]
    assert tracer.total_seconds("progress") == 0.0


def test_sink_receives_records_in_completion_order():
    seen = []
    tracer = Tracer(sink=seen.append)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert [r.name for r in seen] == ["b", "a"]


def test_total_seconds_filters():
    tracer = Tracer()
    with tracer.span("phase"):
        with tracer.span("phase"):
            pass
    assert tracer.total_seconds("phase", depth=0) < \
        tracer.total_seconds("phase")
    assert tracer.total_seconds("other") == 0.0


# ---------------------------------------------------------------------------
# The null tracer and the process-wide current tracer
# ---------------------------------------------------------------------------


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", gates=7)
    with span as inner:
        inner.set(more=1)
    NULL_TRACER.instant("event", name="n")
    # Metric writes vanish.
    NULL_TRACER.metrics.counter("c").inc(5)
    assert NULL_TRACER.metrics.to_dict() == {}


def test_null_tracer_shares_one_span_object():
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b", x=1)


def test_disabled_overhead_is_small():
    # A span through NULL_TRACER must cost no more than a few microseconds;
    # compare against a live tracer to catch accidental work on the
    # disabled path (generous 10x bound: wall clocks jitter under load).
    n = 20_000

    def cost(tracer):
        start = time.perf_counter()
        for _ in range(n):
            with tracer.span("x", k=1):
                pass
        return time.perf_counter() - start

    live = cost(Tracer())
    cost(NULL_TRACER)  # warm up
    disabled = cost(NULL_TRACER)
    assert disabled < live * 10
    assert disabled / n < 50e-6


def test_use_tracer_installs_and_restores():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    with use_tracer(tracer) as installed:
        assert installed is tracer
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_use_tracer_restores_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with use_tracer(tracer):
            raise RuntimeError
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_previous():
    previous = set_tracer(tracer := Tracer())
    try:
        assert previous is NULL_TRACER
        assert get_tracer() is tracer
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_metrics_counter_gauge_histogram():
    registry = MetricsRegistry()
    registry.counter("conflicts").inc()
    registry.counter("conflicts").inc(9)
    registry.gauge("trail").set(17.5)
    for value in (1.0, 2.0, 3.0):
        registry.histogram("lbd").observe(value)
    snap = registry.to_dict()
    assert snap["conflicts"] == {"type": "counter", "value": 10}
    assert snap["trail"] == {"type": "gauge", "value": 17.5}
    assert snap["lbd"]["count"] == 3
    assert snap["lbd"]["mean"] == 2.0
    assert snap["lbd"]["min"] == 1.0 and snap["lbd"]["max"] == 3.0
    assert len(registry) == 3 and "conflicts" in registry


def test_metrics_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_metrics_absorb():
    registry = MetricsRegistry()
    registry.absorb("cec.solver", {
        "conflicts": 3,
        "mean_lbd": 2.5,
        "equivalent": True,   # bools are not metrics
        "note": "skipped",    # nor strings
    })
    snap = registry.to_dict()
    # Ints land as counters, derived floats as gauges; bools and strings
    # are not metrics and are skipped.
    assert snap == {
        "cec.solver.conflicts": {"type": "counter", "value": 3},
        "cec.solver.mean_lbd": {"type": "gauge", "value": 2.5},
    }
    # Absorbing again accumulates counters and overwrites gauges.
    registry.absorb("cec.solver", {"conflicts": 2, "mean_lbd": 3.0})
    snap = registry.to_dict()
    assert snap["cec.solver.conflicts"]["value"] == 5
    assert snap["cec.solver.mean_lbd"]["value"] == 3.0


def test_histogram_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("latency")
    for value in range(1, 101):       # 1..100
        hist.observe(value)
    assert hist.percentile(50) == 50
    assert hist.percentile(95) == 95
    assert hist.percentile(0) == 1
    assert hist.percentile(100) == 100
    snap = hist.to_dict()
    assert snap["p50"] == 50 and snap["p95"] == 95
    assert snap["count"] == 100 and snap["mean"] == 50.5


def test_histogram_percentile_empty_and_single():
    hist = MetricsRegistry().histogram("x")
    assert hist.percentile(50) == 0
    assert hist.to_dict()["p95"] == 0
    hist.observe(7.5)
    assert hist.percentile(50) == 7.5 and hist.percentile(95) == 7.5


def test_timeseries_basics():
    from repro.obs import TimeSeries
    series = TimeSeries("solver.conflicts")
    assert len(series) == 0 and series.last() is None
    series.append(0.1, 100)
    series.append(0.2, 250)
    assert len(series) == 2
    assert series.last() == (0.2, 250)
    assert list(series) == [(0.1, 100), (0.2, 250)]
    doc = series.to_dict()
    assert doc["name"] == "solver.conflicts"
    assert doc["samples"] == [[0.1, 100], [0.2, 250]]


def test_tracer_counter_records_timeseries():
    tracer = Tracer()
    tracer.counter("solver.trail", 10)
    tracer.counter("solver.trail", 25)
    tracer.counter("solver.mean_lbd", 4.2)
    assert set(tracer.timeseries) == {"solver.trail", "solver.mean_lbd"}
    trail = tracer.timeseries["solver.trail"]
    assert trail.values == [10, 25]
    assert trail.times == sorted(trail.times)
    # NullTracer.counter is a no-op.
    NULL_TRACER.counter("solver.trail", 1)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _traced_run():
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("elaborate", gates=10):
            pass
        with tracer.span("optimize"):
            tracer.instant("progress", conflicts=2000)
    return tracer


def test_chrome_trace_schema():
    tracer = _traced_run()
    doc = to_chrome_trace(tracer)
    events = doc["traceEvents"]
    phases = [e["ph"] for e in events]
    # Metadata: process_name plus thread_name/thread_sort_index for the
    # one (main) thread that recorded spans.
    assert phases.count("M") == 3
    assert phases.count("X") == 3          # complete spans
    assert phases.count("i") == 1          # instant
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0 and event["ts"] >= 0
    # Chronology: ts in microseconds, children start no earlier than parent.
    by_name = {e["name"]: e for e in events if e["ph"] == "X"}
    assert by_name["run"]["ts"] <= by_name["elaborate"]["ts"]


def test_chrome_trace_thread_metadata():
    tracer = Tracer()
    with tracer.span("main_work"):
        pass
    worker = threading.Thread(target=lambda: tracer.span("w").__enter__()
                              .__exit__(None, None, None))
    worker.start()
    worker.join()
    doc = to_chrome_trace(tracer)
    names = {e["tid"]: e["args"]["name"]
             for e in doc["traceEvents"] if e["name"] == "thread_name"}
    sorts = {e["tid"]: e["args"]["sort_index"]
             for e in doc["traceEvents"] if e["name"] == "thread_sort_index"}
    assert names[tracer.main_tid] == "main"
    assert sorts[tracer.main_tid] == 0
    worker_tids = [tid for tid in names if tid != tracer.main_tid]
    assert worker_tids and names[worker_tids[0]] == "worker-1"
    assert sorts[worker_tids[0]] == 1


def test_chrome_trace_counter_tracks():
    tracer = Tracer()
    with tracer.span("solve"):
        tracer.counter("solver.conflicts", 100)
        tracer.counter("solver.conflicts", 250)
        tracer.counter("solver.mean_lbd", 3.4)
    doc = to_chrome_trace(tracer)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 3
    conflicts = [e for e in counters if e["name"] == "solver.conflicts"]
    assert [e["args"]["value"] for e in conflicts] == [100, 250]
    assert conflicts[0]["ts"] <= conflicts[1]["ts"]
    assert all(e["pid"] == tracer.pid for e in counters)


def test_write_chrome_trace_round_trip(tmp_path):
    tracer = _traced_run()
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, str(path))
    doc = json.loads(path.read_text())
    # 3 spans + 1 instant + 3 metadata events.
    assert len(doc["traceEvents"]) == 7


def test_ndjson_sink_streams_and_filters_depth():
    stream = io.StringIO()
    tracer = Tracer(sink=ndjson_sink(stream, max_depth=1))
    with tracer.span("top"):
        with tracer.span("mid"):
            with tracer.span("deep"):   # depth 2: filtered out
                pass
    lines = [json.loads(line) for line in
             stream.getvalue().splitlines()]
    assert [entry["name"] for entry in lines] == ["mid", "top"]
    for entry in lines:
        assert {"ev", "name", "t_ms", "dur_ms"} <= set(entry)


class _BufferedStream(io.StringIO):
    """A non-tty stream that only exposes data after an explicit flush —
    the behavior of a block-buffered file or piped stderr."""

    def __init__(self):
        super().__init__()
        self.pending = ""
        self.visible = ""

    def write(self, text):
        self.pending += text
        return len(text)

    def flush(self):
        self.visible += self.pending
        self.pending = ""

    def isatty(self):
        return False


def test_ndjson_sink_flushes_each_line():
    stream = _BufferedStream()
    tracer = Tracer(sink=ndjson_sink(stream))
    with tracer.span("phase1"):
        pass
    # Live without any further flush: the line is already visible.
    assert json.loads(stream.visible)["name"] == "phase1"
    with tracer.span("phase2"):
        pass
    assert len(stream.visible.splitlines()) == 2


def test_ndjson_sink_flush_opt_out():
    stream = _BufferedStream()
    tracer = Tracer(sink=ndjson_sink(stream, flush=False))
    with tracer.span("phase"):
        pass
    assert stream.visible == "" and stream.pending != ""


def test_span_totals_top_level():
    tracer = _traced_run()
    totals = span_totals(tracer, depth=1)
    assert set(totals) == {"elaborate", "optimize"}
    assert all(seconds >= 0.0 for seconds in totals.values())


def test_profile_tree_structure():
    tracer = _traced_run()
    text = profile_tree(tracer)
    lines = text.splitlines()
    assert "span" in lines[0] and "self" in lines[0]
    # Indentation mirrors nesting; each aggregated span appears once.
    assert any(line.startswith("run") for line in lines)
    assert any(line.startswith("  elaborate") for line in lines)
    assert sum("elaborate" in line for line in lines) == 1
    assert "calls" in lines[0]


# ---------------------------------------------------------------------------
# Solver progress events
# ---------------------------------------------------------------------------


def _pigeonhole_clauses(holes):
    """PHP(holes+1, holes): UNSAT and conflict-rich."""
    pigeons = holes + 1

    def var(pigeon, hole):
        return pigeon * holes + hole + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


def test_progress_callback_cadence():
    num_vars, clauses = _pigeonhole_clauses(6)
    solver = Solver(num_vars)
    solver.add_clauses(clauses)
    reports = []
    solver.set_progress(reports.append, interval=50)
    result = solver.solve()
    assert not result.satisfiable
    assert solver.stats.conflicts >= 100
    assert len(reports) == solver.stats.conflicts // 50
    conflict_counts = [r["conflicts"] for r in reports]
    assert conflict_counts == sorted(conflict_counts)
    assert all(c % 50 == 0 for c in conflict_counts)
    for report in reports:
        assert {"conflicts", "restarts", "decisions", "propagations",
                "trail", "learned", "mean_lbd",
                "props_per_second"} <= set(report)


def test_progress_interval_validation():
    solver = Solver(2)
    with pytest.raises(ValueError):
        solver.set_progress(lambda report: None, interval=0)


def test_attach_solver_progress_emits_instants():
    num_vars, clauses = _pigeonhole_clauses(6)
    solver = Solver(num_vars)
    solver.add_clauses(clauses)
    tracer = Tracer()
    attach_solver_progress(solver, tracer, interval=50)
    with tracer.span("solve"):
        solver.solve()
    instants = [r for r in tracer.records
                if r.name == "solver.progress"]
    assert instants and all(r.path == ("solve",) for r in instants)
    # The same snapshots land as time-resolved counter channels.
    for key in ("conflicts", "conflicts_per_second", "trail", "learned",
                "mean_lbd", "props_per_second"):
        series = tracer.timeseries[f"solver.{key}"]
        assert len(series) == len(instants)
    conflicts = tracer.timeseries["solver.conflicts"]
    assert conflicts.values == [r.args["conflicts"] for r in instants]


def test_attach_solver_progress_noop_when_disabled():
    solver = Solver(2)
    attach_solver_progress(solver, NULL_TRACER)
    assert solver._progress_cb is None


# ---------------------------------------------------------------------------
# Solver stats satellites
# ---------------------------------------------------------------------------


def test_solver_stats_to_dict_mean_lbd():
    stats = SolverStats()
    assert stats.mean_lbd == 0.0
    stats.learned_clauses = 4
    stats.lbd_sum = 10
    snap = stats.to_dict()
    assert snap["mean_lbd"] == 2.5
    for key in ("conflicts", "decisions", "propagations", "restarts",
                "learned_clauses", "learned_literals", "lbd_sum",
                "reduced_clauses", "gc_runs"):
        assert key in snap


def test_solver_stats_accumulate():
    a = SolverStats()
    a.conflicts, a.lbd_sum, a.learned_clauses = 5, 12, 3
    b = SolverStats()
    b.conflicts, b.lbd_sum, b.learned_clauses = 2, 4, 1
    a.accumulate(b)
    assert (a.conflicts, a.lbd_sum, a.learned_clauses) == (7, 16, 4)


def test_fraig_sweep_aggregates_solver_stats():
    netlist = elaborate(ALU, top="alu")
    stats = FraigStats()
    fraig_sweep(from_netlist(netlist), patterns=4, stats=stats)
    assert stats.sat_checks > 0
    # The per-proof solver counters are rolled up, not discarded.
    assert stats.solver.propagations > 0
    snap = stats.to_dict()
    assert snap["sat_checks"] == stats.sat_checks
    assert snap["solver"]["propagations"] == stats.solver.propagations
    assert "mean_lbd" in snap["solver"]


# ---------------------------------------------------------------------------
# Engine instrumentation (spans land where the ISSUE says they do)
# ---------------------------------------------------------------------------


def test_pipeline_spans_cover_elaborate_opt_cec():
    tracer = Tracer()
    with use_tracer(tracer):
        netlist = elaborate(ALU, top="alu")
        result = optimize(netlist)
        verdict = check_equivalence(netlist, result.netlist)
        # The AIG miter hash-proves this workload without ever invoking
        # the solver; the gate-level encoding has to solve, so it also
        # exercises the solver-stats absorb path.
        gate_verdict = check_equivalence(netlist, result.netlist,
                                         encoding="gate")
    assert verdict.equivalent and gate_verdict.equivalent
    names = {r.name for r in tracer.spans()}
    assert {"elaborate", "elaborate.parse", "elaborate.lower",
            "optimize", "cec", "cec.lower", "cec.encode",
            "cec.solve"} <= names
    assert any(name.startswith("opt.") for name in names)
    # Top-level phases nest their internals.
    top = span_totals(tracer, depth=0)
    assert {"elaborate", "optimize", "cec"} <= set(top)
    # Hash-proven pairs surfaced as instants.
    pairs = [r for r in tracer.records if r.name == "cec.pair"]
    assert pairs and all("name" in r.args for r in pairs)
    # Solver stats absorbed into the metrics registry.
    assert "cec.solver.propagations" in tracer.metrics.to_dict()


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------


def _run(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


def test_cli_trace_writes_chrome_json(alu_file, tmp_path):
    trace = tmp_path / "out.json"
    code, _ = _run([alu_file, "--check", "--trace", str(trace)])
    assert code == 0
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    names = {e["name"] for e in events}
    assert {"run", "elaborate", "optimize", "cec"} <= names
    spans = [e for e in events if e["ph"] == "X"]
    # The run span covers (almost) the whole timeline.
    run_span = next(e for e in spans if e["name"] == "run")
    horizon = max(e["ts"] + e["dur"] for e in spans)
    assert run_span["dur"] >= 0.95 * horizon


def test_cli_profile_prints_tree(alu_file):
    code, text = _run([alu_file, "--check", "--profile"])
    assert code == 0
    assert "self" in text and "calls" in text
    assert "run" in text and "  elaborate" in text and "  cec" in text


def test_cli_json_report_includes_trace(alu_file, tmp_path):
    trace = tmp_path / "out.json"
    code, text = _run([alu_file, "--check", "--json",
                       "--trace", str(trace)])
    assert code == 0
    report = json.loads(text)
    spans = report["trace"]["spans"]
    assert {"elaborate", "optimize", "cec"} <= set(spans)
    assert report["trace"]["file"] == str(trace)
    assert trace.exists()


def test_cli_profile_with_json_keeps_stdout_parseable(alu_file, capsys):
    code, text = _run([alu_file, "--profile", "--json"])
    assert code == 0
    json.loads(text)  # profile went to stderr, stdout stays machine-readable
    assert "self" in capsys.readouterr().err


def test_cli_verbose_streams_ndjson(alu_file, capsys):
    code, _ = _run([alu_file, "--check", "-v"])
    assert code == 0
    err_lines = [line for line in capsys.readouterr().err.splitlines()
                 if line.strip()]
    entries = [json.loads(line) for line in err_lines]
    names = {entry["name"] for entry in entries}
    assert {"elaborate", "cec"} <= names
    # Info level truncates below depth 2 — deep fraig internals stay
    # quiet ("in" is the slash-joined enclosing-span path).
    assert all(entry.get("in", "").count("/") <= 1 for entry in entries)


def test_cli_without_flags_leaves_tracing_disabled(alu_file, capsys):
    code, _ = _run([alu_file, "--check"])
    assert code == 0
    assert capsys.readouterr().err == ""
    assert get_tracer() is NULL_TRACER


def test_cli_trace_unwritable_path_diagnosed(alu_file, tmp_path, capsys):
    target = tmp_path / "missing-dir" / "out.json"
    code, _ = _run([alu_file, "--trace", str(target)])
    assert code == 1
    assert "cannot write" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Adopting worker-recorded spans (the multiprocessing stitch path)
# ---------------------------------------------------------------------------

def test_adopt_stitches_foreign_spans():
    worker = Tracer()
    with worker.span("solve"):
        with worker.span("encode"):
            pass
    parent = Tracer()
    parent.adopt(worker.records, tid=10_000_042)
    assert [r.name for r in parent.records] == ["encode", "solve"]
    assert all(r.tid == 10_000_042 for r in parent.records)
    # Nesting paths survive the move.
    assert parent.records[0].path == ("solve",)
    # Default alignment: the foreign trace ends "now" on the parent's
    # clock, so no adopted span finishes in the parent's future.
    now = parent.clock() - parent.epoch
    for record in parent.records:
        assert record.start + (record.duration or 0.0) <= now + 1e-6


def test_adopt_pickled_records_round_trip():
    import pickle

    worker = Tracer()
    with worker.span("cec.partition", pairs=3):
        pass
    shipped = pickle.loads(pickle.dumps(worker.records))
    parent = Tracer()
    parent.adopt(shipped)
    assert parent.records[0].name == "cec.partition"
    assert parent.records[0].args["pairs"] == 3


def test_adopt_empty_and_explicit_offset():
    parent = Tracer()
    parent.adopt([])  # no-op
    assert parent.records == []
    worker = Tracer()
    with worker.span("job"):
        pass
    start = worker.records[0].start
    parent.adopt(worker.records, offset=5.0)
    assert parent.records[0].start == pytest.approx(start + 5.0)
