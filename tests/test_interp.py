"""Reference-interpreter tests: semantics and diagnostics of its own."""

import pytest

from repro.netlist import Interpreter, InterpreterError


def test_combinational_outputs_word_level():
    interp = Interpreter("""
    module m(input [3:0] a, input [3:0] b, output [4:0] s, output eq);
      assign s = a + b;
      assign eq = a == b;
    endmodule
    """)
    out = interp.step({"a": 9, "b": 9})
    assert out == {"s": 18, "eq": 1}


def test_state_advances_and_reset():
    interp = Interpreter("""
    module t(input clk, output reg [2:0] q);
      always @(posedge clk) q <= q + 1;
    endmodule
    """)
    values = [interp.step({"clk": 0})["q"] for _ in range(10)]
    assert values == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
    interp.reset()
    assert interp.step({"clk": 0})["q"] == 0


def test_hierarchy_with_parameter_overrides():
    interp = Interpreter("""
    module scale #(parameter K = 1) (input [3:0] x, output [7:0] y);
      assign y = x * K;
    endmodule
    module top(input [3:0] v, output [7:0] twice, output [7:0] triple);
      scale #(.K(2)) s2 (.x(v), .y(twice));
      scale #(.K(3)) s3 (.x(v), .y(triple));
    endmodule
    """, top="top")
    out = interp.step({"v": 5})
    assert out == {"twice": 10, "triple": 15}


def test_missing_input_diagnostic():
    interp = Interpreter("module m(input a, output y); assign y = a; endmodule")
    with pytest.raises(InterpreterError, match="missing value"):
        interp.step({})


def test_undriven_signal_diagnostic():
    interp = Interpreter("""
    module m(input a, output y);
      wire ghost;
      assign y = a ^ ghost;
    endmodule
    """)
    with pytest.raises(InterpreterError, match="no driver"):
        interp.step({"a": 1})


def test_multiple_driver_diagnostic():
    interp = Interpreter("""
    module m(input a, input b, output y);
      assign y = a;
      assign y = b;
    endmodule
    """)
    with pytest.raises(InterpreterError, match="multiple drivers"):
        interp.step({"a": 0, "b": 1})


def test_latch_diagnostic():
    interp = Interpreter("""
    module m(input en, input d, output reg q);
      always @(*) begin
        if (en) q = d;
      end
    endmodule
    """)
    with pytest.raises(InterpreterError, match="partially assigned"):
        interp.step({"en": 0, "d": 1})


def test_combinational_cycle_diagnostic():
    interp = Interpreter("""
    module m(input a, output y);
      wire u, v;
      assign u = v & a;
      assign v = u | a;
      assign y = v;
    endmodule
    """)
    with pytest.raises(InterpreterError, match="cycle"):
        interp.step({"a": 1})


def test_seq_and_comb_drive_conflict_detected_statically():
    with pytest.raises(InterpreterError, match="sequentially"):
        Interpreter("""
        module m(input clk, input a, output reg q);
          assign q = a;
          always @(posedge clk) q <= ~q;
        endmodule
        """)


def test_bitwise_feedback_not_a_false_cycle():
    # carry[0] is an assign, carry[1] comes from an instance reading
    # carry[0]; per-bit reads must keep this from looking like a cycle.
    interp = Interpreter("""
    module ha(input a, input b, output s, output c);
      assign s = a ^ b;
      assign c = a & b;
    endmodule
    module add2(input [1:0] a, input [1:0] b, output [1:0] s, output co);
      wire [2:0] carry;
      assign carry[0] = 1'b0;
      wire s0x, s1x;
      ha h0 (.a(a[0]), .b(b[0]), .s(s[0]), .c(carry[1]));
      ha h1 (.a(a[1] ^ carry[1]), .b(b[1]), .s(s[1]), .c(carry[2]));
      assign co = carry[2] | (a[1] & carry[1]);
    endmodule
    """, top="add2")
    out = interp.step({"a": 3, "b": 1})
    assert out["s"] == 0 and out["co"] == 1
