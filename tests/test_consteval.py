"""Constant-evaluation tests: operators, parameters, range widths."""

import pytest

from repro.verilog import ast
from repro.verilog.consteval import (
    ConstEvalError,
    evaluate,
    module_parameters,
    range_width,
)
from repro.verilog.parser import parse_module


def expr(text):
    module = parse_module(f"module m(output y); assign y = {text}; endmodule")
    return module.assigns[0].rhs


@pytest.mark.parametrize("text,value", [
    ("1 + 2 * 3", 7),
    ("(10 - 4) / 3", 2),
    ("7 % 4", 3),
    ("2 ** 5", 32),
    ("1 << 4", 16),
    ("32 >> 2", 8),
    ("3 < 5", 1),
    ("5 <= 5", 1),
    ("4 == 4", 1),
    ("4 != 4", 0),
    ("1 && 0", 0),
    ("1 || 0", 1),
    ("12 & 10", 8),
    ("12 | 10", 14),
    ("12 ^ 10", 6),
    ("-3 + 5", 2),
    ("!0", 1),
    ("8'hFF", 255),
    ("4'b1010", 10),
    ("3 ? 10 : 20", 10),
    ("0 ? 10 : 20", 20),
    ("{2'b10, 2'b01}", 9),
    ("{2{2'b01}}", 5),
])
def test_operator_evaluation(text, value):
    assert evaluate(expr(text)) == value


def test_identifier_lookup_uses_env():
    assert evaluate(expr("N + 1"), {"N": 7}) == 8


def test_unknown_identifier_raises():
    with pytest.raises(ConstEvalError):
        evaluate(expr("N + 1"))


def test_division_by_zero_raises():
    with pytest.raises(ConstEvalError):
        evaluate(expr("1 / 0"))


def test_negative_exponent_raises():
    with pytest.raises(ConstEvalError, match="negative exponent"):
        evaluate(expr("2 ** -1"))


def test_range_width():
    assert range_width(None) == 1
    rng = ast.Range(msb=ast.IntConst(7), lsb=ast.IntConst(0))
    assert range_width(rng) == 8
    param_rng = ast.Range(
        msb=ast.BinaryOp("-", ast.Identifier("N"), ast.IntConst(1)),
        lsb=ast.IntConst(0),
    )
    assert range_width(param_rng, {"N": 16}) == 16


def test_module_parameters_in_declaration_order():
    module = parse_module("""
    module m;
      parameter A = 4;
      parameter B = A * 2;
      localparam C = B + 1;
    endmodule
    """)
    assert module_parameters(module) == {"A": 4, "B": 8, "C": 9}


def test_module_parameters_overrides():
    module = parse_module("""
    module m;
      parameter A = 4;
      parameter B = A * 2;
      localparam C = B + 1;
    endmodule
    """)
    params = module_parameters(module, {"A": 10})
    assert params == {"A": 10, "B": 20, "C": 21}


def test_local_params_ignore_overrides():
    module = parse_module("""
    module m;
      localparam L = 3;
    endmodule
    """)
    assert module_parameters(module, {"L": 99}) == {"L": 3}
