"""Design-hierarchy tests: instance tree, port stats, dominators."""

import pytest

from repro.verilog.hierarchy import (
    DesignHierarchy,
    HierarchyError,
    resolve_module_info,
)
from repro.verilog.parser import parse

DESIGN = """
module leaf(input [3:0] a, output [3:0] y);
  assign y = ~a;
endmodule

module mid(input [3:0] x, output [3:0] z);
  wire [3:0] t;
  leaf inner0 (.a(x), .y(t));
  leaf inner1 (.a(t), .y(z));
endmodule

module top(input [3:0] p, output [3:0] q);
  wire [3:0] m;
  mid stage0 (.x(p), .z(m));
  leaf solo (.a(m), .y(q));
endmodule
"""


@pytest.fixture
def hierarchy():
    return DesignHierarchy(parse(DESIGN), top="top")


def test_missing_top_module():
    with pytest.raises(HierarchyError):
        DesignHierarchy(parse(DESIGN), top="nope")


def test_instance_tree(hierarchy):
    paths = sorted(node.path for node in hierarchy.instances())
    assert paths == [
        "top.solo",
        "top.stage0",
        "top.stage0.inner0",
        "top.stage0.inner1",
    ]
    assert hierarchy.instance_count() == 4
    assert hierarchy.instance("top.stage0.inner1").depth == 2


def test_instances_of(hierarchy):
    assert len(hierarchy.instances_of("leaf")) == 3
    assert len(hierarchy.instances_of("mid")) == 1


def test_module_info_pin_counts(hierarchy):
    info = hierarchy.module_info("leaf")
    assert info.input_pins == 4
    assert info.output_pins == 4
    assert info.io_pins == 8


def test_parameterized_module_info():
    source = parse("""
    module wide #(parameter W = 8) (input [W-1:0] d, output [W-1:0] q);
      assign q = d;
    endmodule
    """)
    info = resolve_module_info(source.module("wide"), {"W": 16})
    assert info.port("d").width == 16
    assert info.io_pins == 32


def test_statistics(hierarchy):
    stats = hierarchy.statistics()
    assert stats["top"] == "top"
    assert stats["modules"] == 2
    assert stats["instances"] == 4


def test_recursion_detected():
    source = parse("""
    module a(input x, output y);
      b u (.x(x), .y(y));
    endmodule
    module b(input x, output y);
      a u (.x(x), .y(y));
    endmodule
    """)
    with pytest.raises(HierarchyError, match="recursive"):
        DesignHierarchy(source, top="a")


def test_unknown_leaf_module_kept(hierarchy_source=DESIGN):
    source = parse("""
    module top(input a, output y);
      blackbox u0 (.p(a), .q(y));
    endmodule
    """)
    hierarchy = DesignHierarchy(source, top="top")
    node = hierarchy.instance("top.u0")
    assert node.module_name == "blackbox"
    assert node.children == []


def test_dominator_parent(hierarchy):
    common = hierarchy.dominator_parent(
        ["top.stage0.inner0", "top.stage0.inner1"])
    assert common.path == "top.stage0"
    mixed = hierarchy.dominator_parent(["top.stage0.inner0", "top.solo"])
    assert mixed.path == "top"
