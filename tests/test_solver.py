"""Tests for the flat-array CDCL engine (`repro.netlist.sat.solver`).

The production solver is cross-checked three ways: against a brute-force
enumerator on randomized 3-SAT instances, against the retained reference
implementation (`repro.netlist.sat.reference`) on instances too large to
enumerate, and against fresh-solver oracles for incremental
assumption-and-add sequences.  The engine's internals get direct
coverage too: the Luby sequence, the lazy VSIDS heap's invariants, and
the guarantee that clause-database reduction never drops a clause that
is the reason of a current-trail assignment.
"""

from __future__ import annotations

import random

import pytest

from repro.netlist.sat.reference import ReferenceSolver, reference_solve
from repro.netlist.sat.solver import Model, Solver, luby, solve


# ---------------------------------------------------------------------------
# Instance helpers
# ---------------------------------------------------------------------------


def random_instance(rng: random.Random, num_vars: int,
                    num_clauses: int) -> list[tuple[int, ...]]:
    """A random <=3-SAT instance over ``num_vars`` variables."""
    clauses = []
    for _ in range(num_clauses):
        k = rng.randint(1, 3)
        chosen = rng.sample(range(1, num_vars + 1), min(k, num_vars))
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in chosen))
    return clauses


def brute_force_sat(num_vars: int, clauses) -> bool:
    """Exhaustive satisfiability check via bit-mask enumeration."""
    masked = []
    for clause in clauses:
        pos = neg = 0
        for lit in clause:
            if lit > 0:
                pos |= 1 << (lit - 1)
            else:
                neg |= 1 << (-lit - 1)
        masked.append((pos, neg))
    full = (1 << num_vars) - 1
    for assignment in range(1 << num_vars):
        inverse = assignment ^ full
        if all(assignment & pos or inverse & neg for pos, neg in masked):
            return True
    return False


def check_model(model, clauses) -> None:
    for clause in clauses:
        assert any(model[abs(lit)] == (lit > 0) for lit in clause), \
            f"model violates clause {clause}"


def pigeonhole(pigeons: int, holes: int) -> tuple[int, list[tuple[int, ...]]]:
    """PHP(p, h): UNSAT when p > h, and conflict-heavy to prove."""
    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [tuple(var(p, h) for h in range(holes))
               for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-var(p1, h), -var(p2, h)))
    return pigeons * holes, clauses


# ---------------------------------------------------------------------------
# Randomized cross-checks
# ---------------------------------------------------------------------------


def test_random_3sat_vs_brute_force():
    rng = random.Random(2022)
    for _ in range(150):
        num_vars = rng.randint(1, 12)
        clauses = random_instance(rng, num_vars, rng.randint(1, 5 * num_vars))
        expected = brute_force_sat(num_vars, clauses)
        result = solve(num_vars, clauses)
        assert result.satisfiable == expected, clauses
        if result.satisfiable:
            check_model(result.model, clauses)


def test_random_3sat_larger_instances_vs_brute_force():
    rng = random.Random(7)
    for num_vars in (14, 16):
        clauses = random_instance(rng, num_vars, 4 * num_vars)
        expected = brute_force_sat(num_vars, clauses)
        result = solve(num_vars, clauses)
        assert result.satisfiable == expected
        if result.satisfiable:
            check_model(result.model, clauses)


def test_random_3sat_vs_reference_solver():
    rng = random.Random(99)
    for _ in range(60):
        num_vars = rng.randint(5, 30)
        clauses = random_instance(rng, num_vars, rng.randint(1, 4 * num_vars))
        result = solve(num_vars, clauses)
        reference = reference_solve(num_vars, clauses)
        assert result.satisfiable == reference.satisfiable, clauses
        if result.satisfiable:
            check_model(result.model, clauses)
            check_model(reference.model, clauses)


def test_incremental_assumption_sequences_vs_fresh_oracles():
    rng = random.Random(5)
    for _ in range(25):
        num_vars = rng.randint(4, 16)
        clauses = random_instance(rng, num_vars, 2 * num_vars)
        incremental = Solver(num_vars, clauses)
        mirror = ReferenceSolver(num_vars, clauses)
        accumulated = list(clauses)
        dead = False
        for _ in range(6):
            if not dead and rng.random() < 0.5:
                extra = random_instance(rng, num_vars, 1)[0]
                incremental.add_clause(extra)
                mirror.add_clause(extra)
                accumulated.append(extra)
            assumptions = tuple(
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1),
                                    rng.randint(0, min(3, num_vars))))
            got = incremental.solve(assumptions=assumptions).satisfiable
            # Fresh oracle: assumptions become unit clauses.
            units = [(lit,) for lit in assumptions]
            fresh = Solver(num_vars, accumulated + units)
            assert got == fresh.solve().satisfiable, \
                (accumulated, assumptions)
            assert got == mirror.solve(assumptions=assumptions).satisfiable
            if not got and not assumptions:
                dead = True  # clause set itself is UNSAT: stays UNSAT


# ---------------------------------------------------------------------------
# Luby sequence
# ---------------------------------------------------------------------------


def test_luby_prefix():
    assert [luby(i) for i in range(1, 16)] == \
        [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def test_luby_peaks_at_power_boundaries():
    for k in range(1, 12):
        assert luby((1 << k) - 1) == 1 << (k - 1)
        assert luby(1 << k) == 1


def test_luby_rejects_non_positive():
    with pytest.raises(ValueError):
        luby(0)


# ---------------------------------------------------------------------------
# VSIDS heap invariants
# ---------------------------------------------------------------------------


def _check_vsids_invariants(solver: Solver) -> None:
    heap = solver.heap
    # Binary min-heap property over (-activity, var) entries.
    for i in range(1, len(heap)):
        assert heap[(i - 1) // 2] <= heap[i]
    # Entries are well-formed: known var, recorded activity no fresher
    # than the variable's current one (bumps only grow activity).
    for neg_act, var in heap:
        assert 1 <= var <= solver.num_vars
        assert -neg_act <= solver.activity[var] + 1e-12
    # Coverage: at the root level, every non-root-assigned variable is
    # reachable by future decisions — through a current-activity heap
    # entry when bumped, through the pool otherwise.
    assert not solver.trail_lim
    root_assigned = {enc >> 1 for enc in solver.trail}
    fresh = {var for neg_act, var in heap
             if -neg_act == solver.activity[var]}
    pooled = set(solver.pool)
    for var in range(1, solver.num_vars + 1):
        if var in root_assigned:
            continue
        if solver.activity[var] == 0.0:
            assert var in pooled, f"zero-activity var {var} unpooled"
        else:
            assert var in fresh, f"bumped var {var} lost by the heap"


def test_vsids_heap_invariants_after_conflicts():
    num_vars, clauses = pigeonhole(6, 5)
    solver = Solver(num_vars, clauses)
    assert not solver.solve().satisfiable
    assert solver.stats.conflicts > 0
    _check_vsids_invariants(solver)


def test_vsids_heap_invariants_through_incremental_use():
    rng = random.Random(11)
    num_vars = 20
    solver = Solver(num_vars, random_instance(rng, num_vars, 40))
    for _ in range(5):
        solver.solve(assumptions=tuple(
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 2)))
        _check_vsids_invariants(solver)


# ---------------------------------------------------------------------------
# Clause-database reduction and arena GC
# ---------------------------------------------------------------------------


class _ReduceAuditingSolver(Solver):
    """Asserts after every reduction that no current reason clause died."""

    audits = 0

    def _reduce_db(self):
        super()._reduce_db()
        self.audits += 1
        for enc in self.trail:
            reason = self.reason[enc >> 1]
            if reason >= 0:
                assert self.c_len[reason] > 0, \
                    f"reduction dropped the reason clause of literal {enc}"
                # The implied literal must still head the clause.
                assert self.lits[self.c_off[reason]] == enc


def test_reduce_db_keeps_reason_clauses_of_the_trail():
    num_vars, clauses = pigeonhole(7, 6)
    solver = _ReduceAuditingSolver(num_vars, clauses)
    solver.max_learnts = 12  # force frequent reductions
    assert not solver.solve().satisfiable
    assert solver.audits > 0
    assert solver.stats.reduced_clauses > 0


def test_reduce_db_and_gc_preserve_verdicts():
    rng = random.Random(31)
    for _ in range(20):
        num_vars = rng.randint(8, 14)
        clauses = random_instance(rng, num_vars, 5 * num_vars)
        solver = Solver(num_vars, clauses)
        solver.max_learnts = 8
        result = solver.solve()
        assert result.satisfiable == brute_force_sat(num_vars, clauses)
        if result.satisfiable:
            check_model(result.model, clauses)


def test_arena_gc_compacts_dead_clauses():
    num_vars, clauses = pigeonhole(7, 6)
    solver = Solver(num_vars, clauses)
    solver.max_learnts = 12
    assert not solver.solve().satisfiable
    assert solver.stats.gc_runs > 0
    # After compaction every live clause's arena slice is intact.
    for cref in range(len(solver.c_off)):
        length = solver.c_len[cref]
        if length:
            assert solver.c_off[cref] + length <= len(solver.lits)


def test_glue_clauses_survive_reduction():
    num_vars, clauses = pigeonhole(7, 6)
    solver = Solver(num_vars, clauses)
    solver.max_learnts = 12
    assert not solver.solve().satisfiable
    for cref in solver.learnts:
        assert solver.c_len[cref] > 0


# ---------------------------------------------------------------------------
# Streaming ingestion and the lazy model
# ---------------------------------------------------------------------------


def test_init_streams_clauses_from_a_generator():
    def generated():
        yield (1, 2)
        yield [-1, 2]
        yield iter((1, -2))

    result = Solver(2, generated()).solve()
    assert result.satisfiable
    assert result.model[1] is True and result.model[2] is True


def test_add_clauses_bulk_entry_point():
    solver = Solver(3, [(1, 2, 3)])
    solver.add_clauses([(-1,), (-2,)])
    result = solver.solve()
    assert result.satisfiable
    assert result.model[3] is True
    solver.add_clauses(((-3,),))
    assert not solver.solve().satisfiable


def test_problem_clause_simplification():
    # Tautologies vanish, duplicate literals collapse.
    assert solve(2, [(1, -1)]).satisfiable
    result = solve(2, [(1, 1, 2), (-2, -2)])
    assert result.satisfiable
    assert result.model[2] is False


def test_clauses_simplify_against_root_assignments():
    solver = Solver(3, [(1,)])
    assert solver.solve().satisfiable
    # Satisfied at root: vanishes.  False at root: literal dropped.
    solver.add_clause((1, 2))
    solver.add_clause((-1, 3))
    result = solver.solve()
    assert result.satisfiable
    assert result.model[3] is True


def test_model_is_mapping_like():
    result = solve(3, [(1,), (-2,), (3,)])
    model = result.model
    assert isinstance(model, Model)
    assert model == {1: True, 2: False, 3: True}
    assert model[2] is False
    assert model.get(3) is True
    assert model.get(99, False) is False
    assert 3 in model and 4 not in model
    assert len(model) == 3
    assert list(model) == [1, 2, 3]
    assert dict(model.items()) == {1: True, 2: False, 3: True}
    with pytest.raises(KeyError):
        model[4]


def test_model_survives_further_solving():
    # The snapshot must not alias live solver state.
    solver = Solver(2, [(1, 2)])
    first = solver.solve(assumptions=(1, -2)).model
    assert first[1] is True and first[2] is False
    second = solver.solve(assumptions=(-1, 2)).model
    assert first[1] is True and first[2] is False
    assert second[1] is False and second[2] is True


# ---------------------------------------------------------------------------
# Stats surface
# ---------------------------------------------------------------------------


def test_stats_expose_lbd_reduction_and_gc_counters():
    num_vars, clauses = pigeonhole(6, 5)
    solver = Solver(num_vars, clauses)
    assert not solver.solve().satisfiable
    stats = solver.stats.to_dict()
    for key in ("decisions", "conflicts", "propagations", "learned_clauses",
                "learned_literals", "restarts", "lbd_sum", "reduced_clauses",
                "gc_runs"):
        assert key in stats
    assert stats["lbd_sum"] > 0
    assert stats["conflicts"] > 0


def test_reference_solver_package_surface():
    result = reference_solve(2, [(1, 2), (-1,)])
    assert result.satisfiable
    assert result.model == {1: False, 2: True}


# ---------------------------------------------------------------------------
# Search seeding (phase + activity) and in-search vivification
# ---------------------------------------------------------------------------


def test_seed_phases_steers_unconstrained_decisions():
    # One clause over three free variables.  All-True phases: the first
    # decision already satisfies the clause and every later decision
    # follows its seeded phase, so the model is all-True.  All-False
    # phases: decisions go False until the clause becomes unit, so
    # exactly one variable ends up True.
    solver = Solver(3, [(1, 2, 3)])
    solver.seed_phases({1: True, 2: True, 3: True})
    model = solver.solve().model
    assert model[1] and model[2] and model[3]

    solver = Solver(3, [(1, 2, 3)])
    solver.seed_phases({1: False, 2: False, 3: False})
    model = solver.solve().model
    assert sum(model[v] for v in (1, 2, 3)) == 1


def test_seed_activity_controls_decision_order():
    # (1 or 2) with all-False phases: whichever variable is decided
    # first goes False and forces the other True.  The activity seed
    # picks the victim.
    for boosted, forced in ((1, 2), (2, 1)):
        solver = Solver(2, [(1, 2)])
        solver.seed_phases({1: False, 2: False})
        solver.seed_activity({boosted: 1.0})
        model = solver.solve().model
        assert model[boosted] is False
        assert model[forced] is True


def test_seeding_ignores_unknown_and_nonpositive_entries():
    solver = Solver(2, [(1, 2)])
    solver.seed_phases({0: True, 99: False})
    solver.seed_activity({0: 1.0, 99: 1.0, 1: -3.0, 2: 0.0})
    assert solver.solve().satisfiable


def test_vivification_fires_under_reduction_pressure():
    # A tiny learned-clause budget forces frequent reduce-DB runs; the
    # vivifier piggybacks on every second one.  The verdict must stay
    # correct and the counter must move.
    num_vars, clauses = pigeonhole(6, 5)
    solver = Solver(num_vars, clauses)
    solver.max_learnts = 12  # force frequent reductions
    result = solver.solve()
    assert not result.satisfiable
    assert solver.stats.vivified > 0
    assert solver.stats.to_dict()["vivified"] == solver.stats.vivified
